"""Setup shim for environments without the `wheel` package.

`pip install -e .` falls back to `setup.py develop` through this file when
PEP 660 editable wheels cannot be built (offline environments).
"""
from setuptools import setup

setup()
