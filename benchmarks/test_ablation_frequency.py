"""Ablation: how chatty can the viewer get before feedback overhead shows?

Figure 7 varies the switch interval between 2 and 6 minutes and sees no
discernible overhead.  This ablation pushes scheme F3 down to 30-second
switching (with non-zero control costs) and checks that per-message
overhead stays negligible relative to the savings -- the reason the
paper's observation holds with margin.
"""

from __future__ import annotations

from repro.experiments import (
    Exp2Config,
    run_cell,
    run_frequency_overhead_ablation,
)

from conftest import run_once


def test_frequency_overhead(benchmark, report):
    config = Exp2Config.from_env()
    cells = run_once(
        benchmark,
        lambda: run_frequency_overhead_ablation(
            config, frequencies=(0.5, 2.0, 6.0)
        ),
    )
    baseline = run_cell(config, "F0", 2.0).execution_time
    for frequency, cell in sorted(cells.items()):
        reduction = 1 - cell.execution_time / baseline
        report.append(
            f"F3 switching every {frequency:g} min: "
            f"exec={cell.execution_time:.1f}s "
            f"({cell.feedback_messages} messages, reduction {reduction:.1%})"
        )
    # Within the paper's 2-6 minute range: no discernible difference.
    in_paper_range = [cells[2.0].execution_time, cells[6.0].execution_time]
    spread = (max(in_paper_range) - min(in_paper_range)) / min(in_paper_range)
    assert spread < 0.02, in_paper_range
    # At 30-second switching the cost rises modestly -- not from message
    # overhead but from *coverage*: windows straddling a switch boundary
    # can no longer be declared unneeded for a full interval.  The rise
    # stays bounded even with 12x the feedback traffic.
    assert cells[0.5].execution_time < 1.20 * cells[6.0].execution_time
    # More switches send more messages -- the overhead is real, just small.
    assert cells[0.5].feedback_messages > cells[6.0].feedback_messages
