"""Elastic autoscaling benchmark: rebalancing a key-skewed shard region.

The tentpole claim of the elasticity subsystem: when a shard region's
key distribution concentrates the load on one lane, the elastic
controller's runtime re-partitioning recovers most of the parallelism a
static hash layout loses -- while preserving semantics exactly (same
result multiset, region punctuation exactly once).

The workload is adversarial by construction: four hot keys whose
digests all land on lane 0 of a fanout-4 region under the identity
routing table, so static hashing runs the region at 1/4 of its
capacity.  Tuples arrive paced in virtual time (``DT`` apart) while a
``GreedySlotPolicy(imbalance=1.1, max_moves=1)`` controller samples
per-slot loads every ``INTERVAL`` virtual seconds: each tick migrates
one hot slot to the coolest lane, so the region converges to one hot
key per lane after exactly three rebalances and the remaining ~97% of
the stream is processed in parallel.

Both measurements are **simulated virtual-time makespans** -- the
deterministic, host-independent figure (the simulator gives every
operator its own busy horizon, so lane overlap is modeled, not raced).

Scale knobs: ``REPRO_BENCH_ELASTIC_TUPLES`` (default 4000; below the
default the timing/rebalance-count assertions are skipped -- the CI
``bench-smoke`` job runs exactly that way) and
``REPRO_BENCH_ELASTIC_COST`` (default 0.004, the modeled per-tuple
cost of the lane predicate).  Rewrite the artifact with
``REPRO_BENCH_RECORD=1``.
"""

from __future__ import annotations

import os

from repro.api import Flow, count
from repro.elasticity import ElasticConfig, GreedySlotPolicy
from repro.elasticity.rebalance import key_digest
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("k", "int"), ("v", "float")])
N_TUPLES = int(os.environ.get("REPRO_BENCH_ELASTIC_TUPLES", "4000"))
TUPLE_COST = float(os.environ.get("REPRO_BENCH_ELASTIC_COST", "0.004"))
FULL_SCALE = N_TUPLES >= 4000
FANOUT = 4
SLOTS_PER_LANE = 4
INTERVAL = 0.05
WINDOW = 1.0
DT = 0.001
# Four keys whose digests land on slots 0/4/8/12 of the 16-slot table:
# all of lane 0's slots under the identity layout, none of any other's.
HOT_KEYS = (28, 6, 4, 35)


def timeline():
    return [
        (i * DT, StreamTuple(
            SCHEMA, (i * DT, HOT_KEYS[i % len(HOT_KEYS)], float(i % 97))
        ))
        for i in range(N_TUPLES)
    ]


def bench_flow():
    flow = Flow("elastic-bench", page_size=1)
    (flow.source(SCHEMA, timeline(), name="src")
         .punctuate(on="ts", every=WINDOW)
         .shard(FANOUT, key="k", name="region",
                pipeline=lambda lane: lane
                .where(lambda t: True, tuple_cost=TUPLE_COST)
                .window(count(), by="k", on="ts", width=WINDOW))
         .collect("sink", keep_punctuation=True))
    return flow


def sink_multiset(result):
    return sorted(
        tuple(t.values)
        for t in result.sink("sink").results
        if not t.is_punctuation
    )


class TestElasticSpeedup:
    def test_skewed_makespan_recovers(self, report, record_artifact):
        # The adversarial layout really is adversarial: every hot key
        # hashes to lane 0 under the identity table.
        num_slots = FANOUT * SLOTS_PER_LANE
        assert sorted(
            key_digest((k,)) % num_slots for k in HOT_KEYS
        ) == [0, 4, 8, 12]

        static = bench_flow().run("simulated")
        elastic = bench_flow().run(
            "simulated",
            elastic=ElasticConfig(
                interval=INTERVAL,
                slots_per_lane=SLOTS_PER_LANE,
                policy=GreedySlotPolicy(imbalance=1.1, max_moves=1),
            ),
        )

        # Zero lost or duplicated tuples, and region punctuation
        # crosses the merge exactly once -- rebalances are invisible
        # to the sink.
        multiset_equal = sink_multiset(elastic) == sink_multiset(static)
        assert multiset_equal
        static_patterns = [
            p.pattern for p in static.sink("sink").punctuations
        ]
        elastic_patterns = [
            p.pattern for p in elastic.sink("sink").punctuations
        ]
        punct_exactly_once = (
            len(elastic_patterns) == len(set(elastic_patterns))
            and set(elastic_patterns) == set(static_patterns)
        )
        assert punct_exactly_once

        group = elastic.metrics.shard_metrics["region"]
        static_skew = static.metrics.shard_metrics["region"].skew()
        improvement = static.makespan / max(elastic.makespan, 1e-9)
        if FULL_SCALE:
            # The headline claims: one hot slot migrates per tick until
            # one hot key sits on each lane (three rebalances), and the
            # rebalanced region beats the static layout by >= 1.5x in
            # virtual time (measured ~3x: a quarter of the stream's
            # span is arrival-bound, so the ideal 4x is not reachable).
            assert group.rebalances >= 3
            assert group.keys_migrated >= 3
            assert improvement >= 1.5

        payload = {
            "benchmark": "elastic_rebalance_key_skewed_shard",
            "tuples": N_TUPLES,
            "tuple_cost_s": TUPLE_COST,
            "arrival_dt_s": DT,
            "fanout": FANOUT,
            "slots_per_lane": SLOTS_PER_LANE,
            "controller_interval_s": INTERVAL,
            "hot_keys": list(HOT_KEYS),
            "static": {
                "makespan_s": round(static.makespan, 6),
                "skew": round(static_skew, 4),
            },
            "elastic": {
                "makespan_s": round(elastic.makespan, 6),
                "skew": round(group.skew(), 4),
                "rebalances": group.rebalances,
                "keys_migrated": group.keys_migrated,
            },
            "improvement": round(improvement, 3),
            "correctness": {
                "multiset_equal": multiset_equal,
                "region_punctuation_exactly_once": punct_exactly_once,
            },
        }
        record_artifact("BENCH_elastic.json", payload)

        report.append(
            f"  static:  makespan {static.makespan:.3f}s "
            f"(skew {static_skew:.2f})"
        )
        report.append(
            f"  elastic: makespan {elastic.makespan:.3f}s "
            f"(skew {group.skew():.2f}, {group.rebalances} rebalances, "
            f"{group.keys_migrated} keys migrated)"
        )
        report.append(
            f"  improvement {improvement:.2f}x; full_scale={FULL_SCALE}"
        )
