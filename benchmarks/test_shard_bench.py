"""Shard speedup benchmark: key-partitioned replicas of a CPU-bound stage.

The tentpole claim of the sharding subsystem: replicating a CPU-bound
``where``/``window`` pipeline behind ``flow.shard(n, key=...)`` speeds
the plan up near-linearly in ``n`` while preserving semantics exactly --
sharded and unsharded runs produce the same result multiset, region
punctuation crosses the merge exactly once, and ``n=1`` is byte-identical
to the unsharded plan.

Three measurements per fanout N in {1, 2, 4, 8}:

* **simulated** -- virtual-time makespan with a modeled per-tuple cost.
  The simulator gives every operator its own busy horizon (one virtual
  CPU per operator, NiagaraST's thread-per-operator architecture), so
  this is the deterministic, host-independent speedup figure;
* **threaded, modeled cost** -- wall clock on the threaded engine with
  ``emulate_costs=True``: the modeled cost is slept outside the plan
  lock, so replicas overlap on any machine.  This is the enforced >= 2x
  at n=4 headline of ``BENCH_shard.json``;
* **threaded, real hash work** -- wall clock with a genuinely CPU-bound
  predicate (sha256 over a 32 KiB payload releases the GIL), recorded
  together with ``cpu_count``: on a multi-core host this shows real
  parallel speedup; on a single core it honestly records ~1x;
* **multiprocess, real hash work** -- the same CPU-bound predicate on
  the multiprocess engine, where each shard lane is its own worker
  *process*: parallelism does not depend on the predicate releasing the
  GIL.  Recorded, never asserted -- the speedup is bounded by the host's
  ``cpu_count`` (a single-core container honestly records ~1x plus
  serialization overhead).

Scale knobs: ``REPRO_BENCH_SHARD_TUPLES`` (default 2400; below the
default the timing assertions are skipped -- the CI ``bench-smoke`` job
runs exactly that way), ``REPRO_BENCH_SHARD_COST`` (default 0.0005),
``REPRO_BENCH_SHARD_HASH_REPEAT`` (default 6).  Rewrite the artifact
with ``REPRO_BENCH_RECORD=1``.
"""

from __future__ import annotations

import hashlib
import os
import time

from repro.api import Flow, avg
from repro.engine import fork_available
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("k", "int"), ("v", "float")])
N_TUPLES = int(os.environ.get("REPRO_BENCH_SHARD_TUPLES", "2400"))
TUPLE_COST = float(os.environ.get("REPRO_BENCH_SHARD_COST", "0.0005"))
HASH_REPEAT = int(os.environ.get("REPRO_BENCH_SHARD_HASH_REPEAT", "6"))
FULL_SCALE = N_TUPLES >= 2400
FANOUTS = (1, 2, 4, 8)
KEYS = 64
PAGE_SIZE = 64
WINDOW = 100.0

_PAYLOAD = b"\x5a" * 32768  # > 2047 bytes: hashlib releases the GIL


def _hash_work(tup) -> bool:
    digest = _PAYLOAD
    for _ in range(HASH_REPEAT):
        digest = hashlib.sha256(digest).digest() + _PAYLOAD
    return digest is not None


def timeline():
    return [
        (0.0, StreamTuple(SCHEMA, (float(i), i % KEYS, float(i % 97))))
        for i in range(N_TUPLES)
    ]


def shard_flow(n, *, predicate=None, tuple_cost=0.0):
    pred = predicate if predicate is not None else (lambda t: True)
    flow = Flow(f"shard-bench-{n}", page_size=PAGE_SIZE)

    def pipeline(lane):
        return (lane
                .where(pred, tuple_cost=tuple_cost)
                .window(avg("v"), by="k", on="ts", width=WINDOW))

    (flow.source(SCHEMA, timeline(), name="src")
         .punctuate(on="ts", every=WINDOW)
         .shard(n, key="k", pipeline=pipeline)
         .collect("sink", keep_punctuation=True))
    return flow


def sink_multiset(result):
    return sorted(tuple(t.values) for t in result.sink("sink").results)


def wall_run(
    n, *, engine="threaded", engine_options=None, predicate=None,
    tuple_cost=0.0,
):
    flow = shard_flow(n, predicate=predicate, tuple_cost=tuple_cost)
    start = time.perf_counter()
    result = flow.run(engine, timeout=300.0, **(engine_options or {}))
    return result, time.perf_counter() - start


class TestShardSpeedup:
    def test_speedup_and_semantics(self, report, record_artifact):
        base = shard_flow(1).run("simulated")
        base_multiset = sink_multiset(base)
        base_patterns = [
            p.pattern for p in base.sink("sink").punctuations
        ]

        simulated: dict[int, dict] = {}
        model: dict[int, dict] = {}
        hashed: dict[int, dict] = {}
        multiproc: dict[int, dict] = {}
        skew: dict[int, float] = {}
        punct_ok = True
        for n in FANOUTS:
            sim = shard_flow(n, tuple_cost=TUPLE_COST).run("simulated")
            assert sink_multiset(sim) == base_multiset
            patterns = [
                p.pattern for p in sim.sink("sink").punctuations
            ]
            punct_ok = punct_ok and (
                len(patterns) == len(set(patterns))
                and set(patterns) == set(base_patterns)
            )
            assert punct_ok
            simulated[n] = {"makespan_s": round(sim.makespan, 6)}
            if n > 1:
                skew[n] = round(
                    sim.metrics.shard_metrics["shard"].skew(), 4
                )

            modeled, modeled_wall = wall_run(
                n,
                engine_options={"emulate_costs": True},
                tuple_cost=TUPLE_COST,
            )
            assert sink_multiset(modeled) == base_multiset
            model[n] = {"wall_s": round(modeled_wall, 6)}

            real, real_wall = wall_run(n, predicate=_hash_work)
            assert sink_multiset(real) == base_multiset
            hashed[n] = {"wall_s": round(real_wall, 6)}

            if fork_available():
                mp_run, mp_wall = wall_run(
                    n, engine="multiprocess", predicate=_hash_work
                )
                assert sink_multiset(mp_run) == base_multiset
                multiproc[n] = {"wall_s": round(mp_wall, 6)}

        for series, field in (
            (simulated, "makespan_s"),
            (model, "wall_s"),
            (hashed, "wall_s"),
            *(((multiproc, "wall_s"),) if multiproc else ()),
        ):
            for n in FANOUTS:
                series[n]["speedup"] = round(
                    series[1][field] / max(series[n][field], 1e-9), 3
                )

        # n=1 is byte-identical to the unsharded plan: same topology
        # text, same ordered output on the deterministic engine.
        unsharded = Flow("shard-bench-1", page_size=PAGE_SIZE)
        (unsharded.source(SCHEMA, timeline(), name="src")
                  .punctuate(on="ts", every=WINDOW)
                  .where(lambda t: True, tuple_cost=0.0)
                  .window(avg("v"), by="k", on="ts", width=WINDOW)
                  .collect("sink", keep_punctuation=True))
        byte_identical = (
            shard_flow(1).describe() == unsharded.describe()
            and [tuple(t.values) for t in base.sink("sink").results]
            == [tuple(t.values)
                for t in unsharded.run("simulated").sink("sink").results]
        )
        assert byte_identical

        if FULL_SCALE:
            # The headline claims: near-linear virtual-time scaling and
            # >= 2x wall-clock at n=4 with modeled cost on the threaded
            # engine.  (Real-hash speedup depends on the host's cores
            # and is recorded, not asserted.)
            assert simulated[4]["speedup"] >= 2.0
            assert model[4]["speedup"] >= 2.0
            assert simulated[8]["speedup"] > simulated[2]["speedup"]

        payload = {
            "benchmark": "shard_speedup_cpu_bound_where_window",
            "tuples": N_TUPLES,
            "keys": KEYS,
            "page_size": PAGE_SIZE,
            "window_width": WINDOW,
            "tuple_cost_s": TUPLE_COST,
            "hash_repeat": HASH_REPEAT,
            "cpu_count": os.cpu_count(),
            "fanouts": list(FANOUTS),
            "simulated_virtual_time": {
                str(n): simulated[n] for n in FANOUTS
            },
            "threaded_modeled_cost": {str(n): model[n] for n in FANOUTS},
            "threaded_real_hash": {str(n): hashed[n] for n in FANOUTS},
            "multiprocess_real_hash": {
                str(n): multiproc[n] for n in sorted(multiproc)
            },
            "partition_skew": {str(n): skew[n] for n in sorted(skew)},
            "correctness": {
                "multiset_equal_all_fanouts": True,
                "region_punctuation_exactly_once": punct_ok,
                "n1_byte_identical_to_unsharded": byte_identical,
            },
        }
        record_artifact("BENCH_shard.json", payload)

        for n in FANOUTS:
            line = (
                f"  n={n}: simulated {simulated[n]['makespan_s']:.3f}s "
                f"({simulated[n]['speedup']:.2f}x), threaded modeled "
                f"{model[n]['wall_s']:.3f}s ({model[n]['speedup']:.2f}x), "
                f"threaded hash {hashed[n]['wall_s']:.3f}s "
                f"({hashed[n]['speedup']:.2f}x)"
            )
            if n in multiproc:
                line += (
                    f", multiprocess hash {multiproc[n]['wall_s']:.3f}s "
                    f"({multiproc[n]['speedup']:.2f}x)"
                )
            report.append(line)
        report.append(
            f"  skew: {skew}; cpus={os.cpu_count()}; "
            f"full_scale={FULL_SCALE}"
        )
