"""Serving-layer benchmark: multiplexed websocket clients vs the bare engine.

The serving tentpole's measurable claim: pushing a plan behind sockets,
admission control and a supervisor must not cost the plan its
throughput.  Two runs over the *same* logical plan
(``ingest -> where -> deliver``) and the same paced workload:

* **served** -- :func:`repro.serving.loadgen.run_load` drives a
  :class:`~repro.serving.server.StreamServer` with ``CLIENTS`` paced
  websocket ingest connections plus one subscriber draining the push
  hub; latency is measured end-to-end from send-side timestamps.
* **floor** -- the identical tuple schedule replayed through a bare
  :class:`~repro.engine.async_engine.AsyncioEngine` via
  ``Flow.from_async_iterable`` (no sockets, no JSON, no admission):
  the throughput ceiling the serving stack is held to.

Asserted at full scale (and recorded in ``BENCH_serving.json`` under
``REPRO_BENCH_RECORD=1``):

* zero drops and zero duplicates across every client (checked inside
  ``run_load``: each (client, seq) must be delivered exactly once);
* served throughput >= 0.8x the bare-engine floor;
* bounded server buffers: the ingest channel and push hub peaks stay at
  their configured bounds however many clients multiplex.

Scale knobs: ``REPRO_BENCH_SERVING_CLIENTS`` (default 32; the CI
``bench-smoke`` job sets it small, which skips the timing assertions),
``REPRO_BENCH_SERVING_MESSAGES`` (default 30 per client),
``REPRO_BENCH_SERVING_RATE`` (default 15 msg/s per client).
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.api import Flow
from repro.serving import FlowSupervisor, StreamServer, TenantPolicy
from repro.serving.loadgen import run_load
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([
    ("client", "str"), ("seq", "int"), ("sent_at", "float"),
])
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVING_CLIENTS", "32"))
MESSAGES = int(os.environ.get("REPRO_BENCH_SERVING_MESSAGES", "30"))
RATE = float(os.environ.get("REPRO_BENCH_SERVING_RATE", "15.0"))
FULL_SCALE = CLIENTS >= 32
CHANNEL_CAPACITY = 64
HIGH_WATER = 64
QUEUE_CAPACITY = 64


def keep(tup: StreamTuple) -> bool:
    return tup["seq"] >= 0


def served_run() -> dict:
    async def main() -> dict:
        flow = Flow("bench")
        flow.ingest(
            SCHEMA, name="in", capacity=CHANNEL_CAPACITY
        ).where(keep).push("out", high_water=HIGH_WATER)
        supervisor = FlowSupervisor(queue_capacity=QUEUE_CAPACITY)
        supervisor.admit(
            flow,
            policy=TenantPolicy(
                rate=max(1e6, 10 * CLIENTS * RATE),
                burst=1e6,
                max_flows=1,
            ),
        )
        server = StreamServer(supervisor)
        host, port = await server.start()
        try:
            report = await run_load(
                host, port, "bench",
                clients=CLIENTS,
                rate_per_client=RATE,
                messages_per_client=MESSAGES,
            )
        finally:
            await server.aclose(drain=True)
        payload = report.as_dict()
        payload["channel_peak_backlog"] = flow.channel().peak_backlog
        payload["hub_peak_backlog"] = flow.hub().peak_backlog
        payload["per_client_p99_ms"] = report.per_client_p99_ms
        return payload

    return asyncio.run(main())


def floor_run() -> dict:
    """The bare asyncio engine on the same plan and the same pacing.

    One async source replays the aggregate schedule -- CLIENTS x
    MESSAGES tuples at the combined offered rate -- straight into
    ``where -> collect``; no sockets, no JSON codec, no admission.
    """
    total = CLIENTS * MESSAGES
    interval = 1.0 / (CLIENTS * RATE)

    async def paced():
        next_at = time.perf_counter()
        for index in range(total):
            next_at += interval
            delay = next_at - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            yield float(index), StreamTuple(
                SCHEMA,
                (f"c{index % CLIENTS:03d}", index // CLIENTS,
                 time.perf_counter()),
            )

    flow = Flow("floor")
    flow.from_async_iterable(
        SCHEMA, paced, name="in"
    ).where(keep).collect_awaitable("sink")

    start = time.perf_counter()
    result = flow.run("asyncio", queue_capacity=QUEUE_CAPACITY,
                      timeout=max(60.0, 10.0 * total * interval))
    wall = time.perf_counter() - start
    delivered = len(result.sink("sink").results)
    return {
        "delivered": delivered,
        "duration_s": round(wall, 4),
        "throughput_per_s": round(delivered / wall, 2),
    }


class TestServingBench:
    def test_serving_throughput_tracks_bare_engine(
        self, benchmark, record_artifact, report
    ):
        served = benchmark.pedantic(
            served_run, rounds=1, iterations=1, warmup_rounds=0
        )
        floor = floor_run()

        # zero drops / zero duplicates at every scale -- run_load raised
        # on duplicates already, the counter seals the other side
        assert served["dropped"] == 0
        assert served["received"] == CLIENTS * MESSAGES
        assert floor["delivered"] == CLIENTS * MESSAGES

        # bounded server buffers regardless of client count
        assert served["channel_peak_backlog"] <= CHANNEL_CAPACITY
        assert served["hub_peak_backlog"] <= (
            HIGH_WATER + CHANNEL_CAPACITY + QUEUE_CAPACITY
        )

        ratio = served["throughput_per_s"] / floor["throughput_per_s"]
        report.append(
            f"serving: {CLIENTS} clients x {MESSAGES} msgs @ {RATE}/s -> "
            f"{served['throughput_per_s']:.0f}/s served vs "
            f"{floor['throughput_per_s']:.0f}/s bare engine "
            f"(ratio {ratio:.2f}); p50 {served['latency_p50_ms']:.1f} ms, "
            f"p99 {served['latency_p99_ms']:.1f} ms"
        )
        if FULL_SCALE:
            assert ratio >= 0.8, (
                f"serving throughput {served['throughput_per_s']:.0f}/s "
                f"fell below 0.8x the bare-engine floor "
                f"{floor['throughput_per_s']:.0f}/s"
            )
            assert served["latency_p99_ms"] < 5_000.0

        record_artifact(
            "BENCH_serving.json",
            {
                "description": (
                    "Network serving layer vs bare asyncio engine on the "
                    "same ingest->where->deliver plan and paced workload"
                ),
                "workload": {
                    "clients": CLIENTS,
                    "messages_per_client": MESSAGES,
                    "rate_per_client": RATE,
                    "offered_rate": CLIENTS * RATE,
                },
                "served": served,
                "bare_engine_floor": floor,
                "throughput_ratio": round(ratio, 4),
            },
        )
