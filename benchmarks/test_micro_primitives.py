"""Microbenchmarks of the substrate primitives.

Not figures from the paper -- these quantify the building blocks the
feedback mechanism's economics rest on: guard checks must be much cheaper
than the work they avoid, propagation planning must be cheap enough to run
per feedback message, and queue/page throughput bounds the engine.
"""

from __future__ import annotations

import random

from repro.core import FeedbackPunctuation, GuardSet, PropagationPlanner
from repro.engine.plan import QueryPlan
from repro.engine.simulator import Simulator
from repro.operators import CollectSink, ListSource, Select
from repro.punctuation import AtLeast, InSet, Pattern
from repro.stream import DataQueue, Schema, SchemaMapping, StreamTuple

SCHEMA = Schema.of("ts", "segment", "speed")
RNG = random.Random(42)
TUPLES = [
    StreamTuple(SCHEMA, (float(i), i % 9, RNG.uniform(10, 70)))
    for i in range(2000)
]


def test_pattern_match_throughput(benchmark):
    pattern = Pattern.from_mapping(
        SCHEMA, {"segment": InSet({1, 3, 5}), "speed": AtLeast(45.0)}
    )
    result = benchmark(lambda: sum(1 for t in TUPLES if pattern.matches(t)))
    assert 0 < result < len(TUPLES)


def test_guard_set_check_throughput(benchmark):
    guards = GuardSet("bench")
    for segment in range(4):
        guards.install(Pattern.from_mapping(SCHEMA, {"segment": segment}))
    result = benchmark(
        lambda: sum(1 for t in TUPLES if guards.would_block(t))
    )
    assert result > 0


def test_propagation_planning_throughput(benchmark):
    left = Schema.of("a", "t", "id")
    right = Schema.of("t", "id", "b")
    planner = PropagationPlanner(
        SchemaMapping.for_join(left, right, [("t", "t"), ("id", "id")])
    )
    feedback = FeedbackPunctuation.assumed(Pattern.build("*", 3, 4, "*"))
    plans = benchmark(lambda: planner.propagate(feedback))
    assert set(plans) == {0, 1}


def test_data_queue_throughput(benchmark):
    def pump():
        queue = DataQueue("bench", page_size=64)
        for tup in TUPLES:
            queue.put(tup)
        queue.close()
        return sum(1 for _ in queue.drain_elements())

    assert benchmark(pump) == len(TUPLES)


def test_pipeline_tuples_per_second(benchmark):
    """End-to-end engine throughput: source -> select -> sink."""
    def run():
        plan = QueryPlan("throughput")
        source = ListSource(
            "src", SCHEMA, [(0.0, t) for t in TUPLES]
        )
        keep = Select("keep", SCHEMA, lambda t: t["speed"] > 20.0)
        sink = CollectSink("sink", SCHEMA)
        plan.add(source)
        plan.chain(source, keep, sink)
        Simulator(plan).run()
        return len(sink.results)

    assert benchmark(run) > 0
