"""Ablation: localized feedback versus a centralized monitor (Figure 2).

The paper's architectural argument, quantified on the Experiment 2
workload.  The centralized arm ships a copy of the stream to a monitor
(per-tuple transfer + inspection cost) and applies identical suppression
decisions one collection cycle late.  Asserted:

* localized total work < centralized total work;
* the communication asymmetry is extreme: the monitor consumes the whole
  stream, localized feedback sends a handful of control messages.
"""

from __future__ import annotations

from repro.experiments import Exp2Config, run_centralized_ablation

from conftest import run_once


def test_centralized_vs_localized(benchmark, report):
    config = Exp2Config.from_env()
    comparison = run_once(
        benchmark, lambda: run_centralized_ablation(config)
    )
    report.append("Figure 2 ablation -- " + comparison.summary())
    # The localized design does strictly less work...
    assert comparison.localized_work < comparison.centralized_work
    # ...and its upstream traffic is orders of magnitude smaller than the
    # stream copy the central monitor must consume.
    assert comparison.centralized_data_shipped >= (
        1000 * comparison.localized_messages
    )
    assert comparison.centralized_decisions > 0
