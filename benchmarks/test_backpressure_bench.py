"""Micro-benchmark: bounded queues under a fast producer / slow consumer.

The tentpole claim of the backpressure subsystem: with a ``queue_capacity``
set, peak :class:`~repro.stream.queues.DataQueue` occupancy is bounded by
the high-water mark instead of growing with the producer/consumer speed
gap -- at a throughput cost within ~10% of the unbounded run (on virtual
time the consumer is the binding resource either way, so the makespan is
essentially unchanged).

The workload is the worst case for an unbounded queue: the source's whole
timeline arrives at t=0 while the sink pays a per-tuple cost, so without
flow control the head queue holds the entire stream.  The result is
recorded in ``BENCH_backpressure.json`` at the repo root via the shared
``record_artifact`` fixture (set ``REPRO_BENCH_RECORD=1`` to rewrite it).

Scale knobs: ``REPRO_BENCH_BP_TUPLES`` (default 20000),
``REPRO_BENCH_BP_CAPACITY`` (default 64).
"""

from __future__ import annotations

import os
import time

from repro.api import Flow
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("v", "float")])
N_TUPLES = int(os.environ.get("REPRO_BENCH_BP_TUPLES", "20000"))
CAPACITY = int(os.environ.get("REPRO_BENCH_BP_CAPACITY", "64"))
PAGE_SIZE = 16
SINK_COST = 0.0005


def burst_flow() -> Flow:
    """Everything arrives at t=0; the consumer is the bottleneck."""
    timeline = [
        (0.0, StreamTuple(SCHEMA, (float(i), float(i))))
        for i in range(N_TUPLES)
    ]
    flow = Flow("bp-bench", page_size=PAGE_SIZE)
    (flow.source(SCHEMA, timeline)
         .where(lambda t: True, name="keep", tuple_cost=SINK_COST)
         .collect("sink"))
    return flow


def run_variant(queue_capacity: int | None):
    flow = burst_flow()
    start = time.perf_counter()
    result = flow.run("simulated", queue_capacity=queue_capacity)
    wall = time.perf_counter() - start
    head = result.metrics.queue_metrics["source->keep[0]"]
    return result, head, wall


class TestBackpressureBoundedness:
    def test_bounded_peak_and_unchanged_throughput(
        self, report, record_artifact
    ):
        unbounded_result, unbounded_head, unbounded_wall = run_variant(None)
        bounded_result, bounded_head, bounded_wall = run_variant(CAPACITY)

        # Correctness: flow control changes timing, never content.
        assert (
            [t.values for t in bounded_result.sink("sink").results]
            == [t.values for t in unbounded_result.sink("sink").results]
        )

        # The headline claim: occupancy bounded by the high-water mark
        # (the source pauses exactly at the crossing) vs. the whole
        # stream parked in the head queue.
        assert unbounded_head.peak_occupancy == N_TUPLES
        assert bounded_head.peak_occupancy <= CAPACITY + PAGE_SIZE
        source = bounded_result.metrics.operator_metrics["source"]
        assert source.pauses_received > 0
        # The last pause may be resolved by end-of-stream instead of a
        # resume (a source is allowed to finish while paused).
        assert source.resumes_received in (
            source.pauses_received, source.pauses_received - 1
        )

        # Throughput within 10% on virtual time (the consumer binds).
        assert bounded_result.makespan <= unbounded_result.makespan * 1.10

        record = {
            "benchmark": "backpressure_fast_producer_slow_consumer",
            "tuples": N_TUPLES,
            "page_size": PAGE_SIZE,
            "queue_capacity": CAPACITY,
            "low_water": CAPACITY // 2,
            "sink_tuple_cost": SINK_COST,
            "unbounded_peak_occupancy": unbounded_head.peak_occupancy,
            "bounded_peak_occupancy": bounded_head.peak_occupancy,
            "occupancy_reduction": round(
                unbounded_head.peak_occupancy
                / max(1, bounded_head.peak_occupancy), 1
            ),
            "unbounded_makespan_s": round(unbounded_result.makespan, 6),
            "bounded_makespan_s": round(bounded_result.makespan, 6),
            "makespan_overhead_pct": round(
                (bounded_result.makespan / unbounded_result.makespan - 1)
                * 100, 3
            ),
            "pauses": source.pauses_received,
            "resumes": source.resumes_received,
            "source_time_paused_s": round(source.time_paused, 6),
            "unbounded_wall_s": round(unbounded_wall, 6),
            "bounded_wall_s": round(bounded_wall, 6),
        }
        record_artifact("BENCH_backpressure.json", record)

        report.append(
            f"backpressure: peak occupancy {unbounded_head.peak_occupancy}"
            f" -> {bounded_head.peak_occupancy} "
            f"({record['occupancy_reduction']}x smaller), makespan "
            f"{unbounded_result.makespan:.3f}s -> "
            f"{bounded_result.makespan:.3f}s "
            f"({record['makespan_overhead_pct']:+.2f}%), "
            f"{source.pauses_received} pause/resume cycles"
        )

    def test_capacity_sweep_bounds_scale_with_capacity(self, report):
        """Peak occupancy tracks the knob, not the stream length."""
        for capacity in (32, 128, 512):
            flow = burst_flow()
            result = flow.run("simulated", queue_capacity=capacity)
            head = result.metrics.queue_metrics["source->keep[0]"]
            assert head.peak_occupancy <= capacity + PAGE_SIZE
            report.append(
                f"  capacity={capacity}: peak={head.peak_occupancy}"
            )
