"""Multiprocess engine benchmark: real CPU parallelism past the GIL.

The tentpole claim of the multiprocess engine: a CPU-bound pipeline whose
work does *not* release the GIL (pure-Python arithmetic, the worst case
for the threaded engine) scales with shard fanout when each lane is its
own worker process.  Threads cannot speed this workload up at all --
every bytecode step serializes on the interpreter lock -- so the
threaded series is the honest baseline the multiprocess series is
measured against.

Recorded per fanout N in {1, 2, 4}:

* **threaded** -- wall clock on the threaded engine (GIL-bound: expect
  ~1x regardless of fanout);
* **multiprocess** -- wall clock with one worker process per shard lane,
  pages crossing the boundaries in columnar wire form.

The speedup assertion (>= 1.8x at n=4) fires only when the host actually
has >= 4 logical CPUs *and* the run is at full scale -- a single-core
container cannot exhibit parallel speedup, so there the numbers are
recorded honestly (spawn + serialization overhead and all) and the
assertion is skipped.  ``BENCH_multiprocess.json`` stamps the recording
host's ``cpu_count`` so the artifact is interpretable either way.

Also recorded: the columnar codec's boundary costs -- encode/decode
round-trip throughput and wire size against naively pickling the same
page -- since every cross-process page pays them.

Scale knobs: ``REPRO_BENCH_MP_TUPLES`` (default 2400; smaller runs skip
the timing assertions, which is how CI's ``bench-smoke`` job runs),
``REPRO_BENCH_MP_WORK`` (per-tuple arithmetic iterations, default 120).
Rewrite the artifact with ``REPRO_BENCH_RECORD=1``.
"""

from __future__ import annotations

import os
import pickle
import time

from repro.api import Flow, avg
from repro.engine import fork_available
from repro.stream import Schema, StreamTuple
from repro.stream.pages import Page, decode_page, encode_page

SCHEMA = Schema([("ts", "timestamp", True), ("k", "int"), ("v", "float")])
N_TUPLES = int(os.environ.get("REPRO_BENCH_MP_TUPLES", "2400"))
WORK = int(os.environ.get("REPRO_BENCH_MP_WORK", "120"))
FULL_SCALE = N_TUPLES >= 2400
FANOUTS = (1, 2, 4)
KEYS = 64
PAGE_SIZE = 64
WINDOW = 100.0


def _gil_bound_work(tup) -> bool:
    """Pure-Python arithmetic: holds the GIL for its entire duration."""
    acc = 0
    for i in range(WORK):
        acc += i * i
    return acc >= 0


def timeline():
    return [
        (0.0, StreamTuple(SCHEMA, (float(i), i % KEYS, float(i % 97))))
        for i in range(N_TUPLES)
    ]


def shard_flow(n):
    flow = Flow(f"mp-bench-{n}", page_size=PAGE_SIZE)

    def pipeline(lane):
        return (lane
                .where(_gil_bound_work)
                .window(avg("v"), by="k", on="ts", width=WINDOW))

    (flow.source(SCHEMA, timeline(), name="src")
         .punctuate(on="ts", every=WINDOW)
         .shard(n, key="k", pipeline=pipeline)
         .collect("sink", keep_punctuation=True))
    return flow


def sink_multiset(result):
    return sorted(tuple(t.values) for t in result.sink("sink").results)


def wall_run(n, engine):
    flow = shard_flow(n)
    start = time.perf_counter()
    result = flow.run(engine, timeout=300.0)
    return result, time.perf_counter() - start


def codec_stats():
    """Boundary costs of the columnar wire form, per 64-tuple page."""
    page = Page(PAGE_SIZE)
    for i in range(PAGE_SIZE):
        page.append(StreamTuple(SCHEMA, (float(i), i % 7, float(i))))
    rounds = max(200, min(2000, N_TUPLES))
    start = time.perf_counter()
    for _ in range(rounds):
        decode_page(pickle.loads(pickle.dumps(encode_page(page))))
    elapsed = time.perf_counter() - start
    wire_bytes = len(pickle.dumps(encode_page(page)))
    naive_bytes = len(pickle.dumps(page))
    return {
        "page_size": PAGE_SIZE,
        "roundtrips_timed": rounds,
        "tuples_per_second": round(rounds * PAGE_SIZE / elapsed),
        "wire_bytes_per_page": wire_bytes,
        "naive_pickle_bytes_per_page": naive_bytes,
        "wire_to_naive_ratio": round(wire_bytes / naive_bytes, 4),
    }


class TestMultiprocessSpeedup:
    def test_parallelism_and_semantics(self, report, record_artifact):
        if not fork_available():
            import pytest

            pytest.skip("fork start method unavailable")

        base_multiset = sink_multiset(shard_flow(1).run("simulated"))

        threaded: dict[int, dict] = {}
        multiproc: dict[int, dict] = {}
        for n in FANOUTS:
            thr_run, thr_wall = wall_run(n, "threaded")
            assert sink_multiset(thr_run) == base_multiset
            threaded[n] = {"wall_s": round(thr_wall, 6)}

            mp_run, mp_wall = wall_run(n, "multiprocess")
            assert sink_multiset(mp_run) == base_multiset
            multiproc[n] = {"wall_s": round(mp_wall, 6)}

        for series in (threaded, multiproc):
            for n in FANOUTS:
                series[n]["speedup"] = round(
                    series[1]["wall_s"] / max(series[n]["wall_s"], 1e-9),
                    3,
                )

        codec = codec_stats()
        # Columnar pages beat naively pickling the page object: the
        # schema ships once per page, values ship as primitive columns.
        assert codec["wire_to_naive_ratio"] < 1.0

        cpus = os.cpu_count() or 1
        parallel_host = cpus >= 4
        if FULL_SCALE and parallel_host:
            # The headline: with >= 4 real cores, 4 worker processes beat
            # one by >= 1.8x on work the GIL would otherwise serialize.
            assert multiproc[4]["speedup"] >= 1.8

        payload = {
            "benchmark": "multiprocess_gil_bound_shard_speedup",
            "tuples": N_TUPLES,
            "work_iterations": WORK,
            "keys": KEYS,
            "page_size": PAGE_SIZE,
            "window_width": WINDOW,
            "fanouts": list(FANOUTS),
            "threaded": {str(n): threaded[n] for n in FANOUTS},
            "multiprocess": {str(n): multiproc[n] for n in FANOUTS},
            "columnar_codec": codec,
            "speedup_asserted": bool(FULL_SCALE and parallel_host),
            "correctness": {"multiset_equal_all_fanouts": True},
        }
        record_artifact("BENCH_multiprocess.json", payload)

        for n in FANOUTS:
            report.append(
                f"  n={n}: threaded {threaded[n]['wall_s']:.3f}s "
                f"({threaded[n]['speedup']:.2f}x), multiprocess "
                f"{multiproc[n]['wall_s']:.3f}s "
                f"({multiproc[n]['speedup']:.2f}x)"
            )
        report.append(
            f"  codec: {codec['tuples_per_second']} tuples/s round-trip, "
            f"wire/naive={codec['wire_to_naive_ratio']}; cpus={cpus}; "
            f"asserted={FULL_SCALE and parallel_host}"
        )
