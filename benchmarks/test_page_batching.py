"""Micro-benchmark: page-batched vs per-element operator processing.

The tentpole claim of the runtime-core refactor is that handing operators
whole pages (``process_page`` -> ``on_page`` with guard pre-filtering and
bulk emission) beats the historical per-element loop, *especially* on a
guard-heavy chain where the per-element path pays guard evaluation plus
dispatch overhead for every tuple.

The harness drives a three-deep SELECT chain (each stage carrying two
input guards and a predicate) at the operator layer -- no engine, so the
numbers isolate the data-path cost the engines sit on.  The result is
recorded in ``BENCH_page_batch.json`` at the repo root.

Scale knob: ``REPRO_BENCH_TUPLES`` (default 10000).
"""

from __future__ import annotations

import os
import time

from repro.engine import QueryPlan
from repro.operators import CollectSink, Select
from repro.punctuation import Pattern
from repro.stream import Schema, StreamTuple
from repro.stream.control import ControlChannel
from repro.stream.pages import DEFAULT_PAGE_SIZE, Page
from repro.stream.queues import DataQueue

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])
N_TUPLES = int(os.environ.get("REPRO_BENCH_TUPLES", "10000"))
REPEATS = 5


def build_input_pages() -> list[Page]:
    """Pre-built pages of the input stream (shared by both paths)."""
    pages: list[Page] = []
    page = Page(DEFAULT_PAGE_SIZE)
    for i in range(N_TUPLES):
        tup = StreamTuple(SCHEMA, (float(i), i % 10, float(i)))
        if page.append(tup):
            pages.append(page)
            page = Page(DEFAULT_PAGE_SIZE)
    if not page.empty:
        page.seal()
        pages.append(page)
    return pages


def build_chain():
    """A guard-heavy chain: three SELECTs into a sink, wired by queues."""
    plan = QueryPlan("bench")
    stages = [
        Select(f"sel{i}", SCHEMA, lambda t, m=7 - i: t["v"] % m != 0.0)
        for i in range(3)
    ]
    sink = CollectSink("sink", SCHEMA)
    plan.chain(*stages, sink)
    head = DataQueue("feed")
    stages[0].attach_input(0, head, ControlChannel("feed"), None)
    for index, op in enumerate(stages):
        # Two active input guards per stage: the guard-heavy regime the
        # feedback experiments produce (assumed feedback accumulates).
        op.input_port(0).guards.install(
            Pattern.from_mapping(SCHEMA, {"seg": 8 - index})
        )
        op.input_port(0).guards.install(
            Pattern.from_mapping(SCHEMA, {"seg": 4 - index})
        )
    queues = [op.outputs[0].queue for op in stages]
    consumers = list(stages[1:]) + [sink]
    return stages[0], list(zip(consumers, queues))


def pump(process, downstream) -> None:
    """Drain every ready page through the rest of the chain."""
    for op, queue in downstream:
        queue.flush()
        while (page := queue.get_page()) is not None:
            process(op, page)
        queue.flush()
        while (page := queue.get_page()) is not None:
            process(op, page)


def run_per_element(pages) -> None:
    head, downstream = build_chain()

    def process(op, page):
        for element in page:
            op.process_element(0, element)

    for page in pages:
        process(head, page)
    pump(process, downstream)


def run_batched(pages) -> None:
    head, downstream = build_chain()

    def process(op, page):
        op.process_page(0, page)

    for page in pages:
        process(head, page)
    pump(process, downstream)


def best_of(fn, pages) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(pages)
        best = min(best, time.perf_counter() - start)
    return best


class TestPageBatchingThroughput:
    def test_batch_path_beats_per_element_path(self, report, record_artifact):
        pages = build_input_pages()

        # Correctness first: both paths must agree tuple-for-tuple.
        head_e, down_e = build_chain()
        for page in pages:
            for element in page:
                head_e.process_element(0, element)
        pump(lambda op, p: [op.process_element(0, e) for e in p], down_e)
        sink_e = down_e[-1][0]

        head_b, down_b = build_chain()
        for page in pages:
            head_b.process_page(0, page)
        pump(lambda op, p: op.process_page(0, p), down_b)
        sink_b = down_b[-1][0]
        assert [t.values for t in sink_e.results] == [
            t.values for t in sink_b.results
        ]

        element_s = best_of(run_per_element, pages)
        batch_s = best_of(run_batched, pages)
        speedup = element_s / batch_s
        per_tuple_ns = batch_s / N_TUPLES * 1e9

        record = {
            "benchmark": "page_batch_guarded_select_chain",
            "tuples": N_TUPLES,
            "stages": 3,
            "guards_per_stage": 2,
            "page_size": DEFAULT_PAGE_SIZE,
            "per_element_s": round(element_s, 6),
            "page_batched_s": round(batch_s, 6),
            "speedup": round(speedup, 3),
            "batched_ns_per_input_tuple": round(per_tuple_ns, 1),
        }
        record_artifact("BENCH_page_batch.json", record)

        report.append(
            f"page batching: per-element {element_s * 1e3:.1f} ms, "
            f"batched {batch_s * 1e3:.1f} ms, speedup {speedup:.2f}x "
            f"({N_TUPLES} tuples, 3 guarded SELECTs)"
        )
        # The headline claim: batching wins on a guard-heavy chain.
        # Local best-of-5 runs show ~1.15-1.4x; the assertion only gates
        # the *sign* of the result so shared-runner noise cannot flake
        # the tier-1 suite.
        assert speedup > 1.0, record
