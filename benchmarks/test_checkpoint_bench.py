"""Micro-benchmark: punctuation-aligned checkpointing overhead.

The durable-feeds subsystem claims checkpointing is cheap: markers ride
the data plane (no extra scheduling passes), snapshots happen at epoch
boundaries only, and none of it charges *virtual* time -- so the
simulated makespan with checkpointing on is identical to the makespan
with it off, and the wall-clock overhead at production-sized epochs
(1000 tuples) stays small (<5% is the design target; the artifact
records the measured figure).

Three variants run the same windowed pipeline: checkpointing off, every
1000 tuples, and every 100 tuples (an aggressively tight interval that
bounds the worst case).  The artifact ``BENCH_checkpoint.json`` also
records the per-epoch snapshot-size series of the 1k run -- the growth
curve is dominated by the terminal sink's result log, which is exactly
what the delivery-log/dedup design predicts.

Scale knob: ``REPRO_BENCH_CKPT_TUPLES`` (default 20000; the CI
bench-smoke job sets it tiny).
"""

from __future__ import annotations

import os
import time

from repro.api import Flow, avg
from repro.durability import MemoryCheckpointStore
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([
    ("ts", "timestamp", True), ("sensor", "int"), ("value", "float"),
])
N_TUPLES = int(os.environ.get("REPRO_BENCH_CKPT_TUPLES", "20000"))
TUPLE_COST = 0.0002


def pipeline() -> Flow:
    timeline = [
        (i * 0.01,
         StreamTuple(SCHEMA, (i * 0.01, i % 16, float(i % 100))))
        for i in range(N_TUPLES)
    ]
    flow = Flow("ckpt-bench")
    (flow.source(SCHEMA, timeline, name="source")
         .punctuate(on="ts", every=5.0)
         .where(lambda t: t["value"] >= 0.0, name="keep",
                tuple_cost=TUPLE_COST)
         .window(avg("value"), by="sensor", width=5.0, on="ts",
                 name="windows")
         .collect("sink"))
    return flow


def run_variant(every: int | None):
    store = MemoryCheckpointStore() if every else None
    options = (
        {"checkpoint_every": every, "checkpoint_store": store}
        if every else {}
    )
    flow = pipeline()
    start = time.perf_counter()
    result = flow.run("simulated", **options)
    wall = time.perf_counter() - start
    return result, store, wall


def snapshot_series(store, result):
    """Total snapshot bytes per epoch (the growth curve)."""
    op_names = [
        name for name in result.metrics.operator_metrics
        if result.metrics.operator_metrics[name].checkpoints
    ]
    series = []
    for epoch in store.epochs():
        total = sum(
            len(store.load_state(epoch, name) or b"")
            for name in op_names
        )
        series.append({"epoch": epoch, "snapshot_bytes": total})
    return series


class TestCheckpointOverhead:
    def test_overhead_and_snapshot_growth(self, report, record_artifact):
        base_result, _, base_wall = run_variant(None)
        k1_result, k1_store, k1_wall = run_variant(1000)
        k100_result, _, k100_wall = run_variant(100)

        # Correctness first: checkpointing must not change output.
        base_values = [t.values for t in base_result.sink("sink").results]
        assert [
            t.values for t in k1_result.sink("sink").results
        ] == base_values
        assert [
            t.values for t in k100_result.sink("sink").results
        ] == base_values

        # The headline claim: markers and snapshots charge no virtual
        # time.  Flush-on-punctuation at each marker can shift page
        # boundaries by a hair, so the makespan is within 0.1% of the
        # uncheckpointed run -- far inside the <5% target at 1k-tuple
        # epochs.
        assert k1_result.makespan <= base_result.makespan * 1.05
        assert abs(k1_result.makespan / base_result.makespan - 1) < 1e-3

        expected_epochs = N_TUPLES and (
            k1_result.metrics.checkpoint_epochs
        )
        assert expected_epochs >= N_TUPLES // 1000 - 1
        assert k1_result.metrics.checkpoint_bytes > 0

        series = snapshot_series(k1_store, k1_result)
        assert len(series) >= 2
        # The terminal sink accumulates results, so later snapshots are
        # at least as large as the first.
        assert series[-1]["snapshot_bytes"] >= series[0]["snapshot_bytes"]

        k1_overhead = (k1_wall / base_wall - 1) * 100
        k100_overhead = (k100_wall / base_wall - 1) * 100
        record = {
            "benchmark": "checkpoint_interval_overhead",
            "tuples": N_TUPLES,
            "stage_tuple_cost": TUPLE_COST,
            "makespan_off_s": round(base_result.makespan, 6),
            "makespan_1k_s": round(k1_result.makespan, 6),
            "makespan_100_s": round(k100_result.makespan, 6),
            "makespan_overhead_1k_pct": round(
                (k1_result.makespan / base_result.makespan - 1) * 100, 3
            ),
            "wall_off_s": round(base_wall, 6),
            "wall_1k_s": round(k1_wall, 6),
            "wall_100_s": round(k100_wall, 6),
            "wall_overhead_1k_pct": round(k1_overhead, 2),
            "wall_overhead_100_pct": round(k100_overhead, 2),
            "epochs_1k": k1_result.metrics.checkpoint_epochs,
            "epochs_100": k100_result.metrics.checkpoint_epochs,
            "snapshot_bytes_1k_total": k1_result.metrics.checkpoint_bytes,
            "snapshot_series_1k": series,
        }
        record_artifact("BENCH_checkpoint.json", record)

        report.append(
            f"checkpointing: makespan overhead at 1k epochs "
            f"{record['makespan_overhead_1k_pct']}% (target <5%), wall "
            f"{record['wall_overhead_1k_pct']}% at 1k / "
            f"{record['wall_overhead_100_pct']}% at 100; "
            f"{record['epochs_1k']} epochs, "
            f"{record['snapshot_bytes_1k_total']} snapshot bytes"
        )
