"""Figure 7: speed-map feedback schemes F0-F3 versus feedback frequency.

Paper numbers (18 h of data, 9 segments x 40 detectors): F1 cuts query
execution time by 50 %, F2 by 61 %, F3 by 65 %, with "no discernible
overhead as the frequency of feedback increases" (2/4/6-minute switches).

Asserted shape:

* strict ordering F0 > F1 > F2 > F3 at every frequency;
* F1 reduction in [40 %, 60 %], F2 in [52 %, 70 %], F3 in [58 %, 75 %];
* across frequencies each scheme varies by < 5 %.
"""

from __future__ import annotations

import pytest

from repro.experiments import Exp2Config, SCHEMES, run_cell, run_experiment_2
from repro.viz import grouped_bars

from conftest import run_once

REDUCTION_BANDS = {"F1": (0.40, 0.60), "F2": (0.52, 0.70), "F3": (0.58, 0.75)}


@pytest.fixture(scope="module")
def sweep():
    """The full scheme x frequency table, shared across assertions."""
    return run_experiment_2(Exp2Config.from_env())


def test_figure7_table(sweep, report):
    frequencies = sorted(next(iter(sweep.values())).keys())
    groups = {
        f"feedback every {freq:g} min": {
            scheme: sweep[scheme][freq].execution_time
            for scheme in SCHEMES
        }
        for freq in frequencies
    }
    report.append(
        grouped_bars(
            groups,
            title="Figure 7 -- execution time (virtual s) by scheme",
            value_format="{:.1f}s",
        )
    )
    baseline = sweep["F0"][frequencies[0]].execution_time
    for scheme in ("F1", "F2", "F3"):
        measured = 1 - sweep[scheme][frequencies[0]].execution_time / baseline
        report.append(
            f"{scheme}: paper reduction "
            f"{ {'F1': '50%', 'F2': '61%', 'F3': '65%'}[scheme] }, "
            f"measured {measured:.1%}"
        )
    for freq in frequencies:
        times = [sweep[s][freq].execution_time for s in SCHEMES]
        # Strict ordering F0 > F1 > F2 > F3.
        assert times == sorted(times, reverse=True), (freq, times)
        assert len(set(times)) == len(times)


def test_figure7_reduction_bands(sweep):
    frequencies = sorted(next(iter(sweep.values())).keys())
    for freq in frequencies:
        baseline = sweep["F0"][freq].execution_time
        for scheme, (lo, hi) in REDUCTION_BANDS.items():
            reduction = 1 - sweep[scheme][freq].execution_time / baseline
            assert lo <= reduction <= hi, (
                f"{scheme} @ {freq} min: reduction {reduction:.1%} outside "
                f"[{lo:.0%}, {hi:.0%}]"
            )


def test_figure7_no_discernible_frequency_overhead(sweep, report):
    """The paper: "no discernible overhead as frequency increases"."""
    for scheme in ("F1", "F2", "F3"):
        times = [cell.execution_time for cell in sweep[scheme].values()]
        spread = (max(times) - min(times)) / min(times)
        report.append(
            f"{scheme}: frequency-induced spread {spread:.2%}"
        )
        assert spread < 0.05, (scheme, times)


def test_figure7_guards_explain_the_savings(sweep):
    """Scheme mechanics: each step saves where it should."""
    freq = sorted(next(iter(sweep.values())).keys())[0]
    f1, f2, f3 = sweep["F1"][freq], sweep["F2"][freq], sweep["F3"][freq]
    # F1 suppresses at the aggregate's output only.
    assert f1.guard_drops["average_output"] > 0
    assert f1.guard_drops["average_input"] == 0
    assert f1.guard_drops["quality_input"] == 0
    # F2 moves the suppression to the aggregate's input.
    assert f2.guard_drops["average_input"] > 0
    assert f2.guard_drops["quality_input"] == 0
    # F3 pushes it down to the quality filter.
    assert f3.guard_drops["quality_input"] > 0
    # All three render only the visible segment's results.
    f0 = sweep["F0"][freq]
    for cell in (f1, f2, f3):
        assert cell.results_rendered < f0.results_rendered / 4


def test_figure7_single_cell_benchmark(benchmark):
    """Wall-time benchmark of one representative cell (scheme F3)."""
    config = Exp2Config(horizon_hours=0.5)
    cell = run_once(benchmark, lambda: run_cell(config, "F3", 2.0))
    assert cell.execution_time > 0
