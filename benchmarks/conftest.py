"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one
``BENCH_*.json`` artifact at the repo root) and asserts the qualitative
claims (who wins, by roughly what factor, where crossovers fall).  Scale
knobs come from the environment:

* ``REPRO_EXP1_TUPLES``  -- Experiment 1 stream length (default 5000,
  the paper's size);
* ``REPRO_EXP2_HOURS``   -- Experiment 2 horizon (default 2.0; the paper
  ran 18 h -- set ``REPRO_EXP2_HOURS=18`` for full scale);
* ``REPRO_BENCH_*``      -- per-benchmark sizes (see each module); the CI
  ``bench-smoke`` job sets these tiny so the harnesses stay runnable
  without timing claims.

Artifact regeneration is wired through :func:`record_bench`: run with
``REPRO_BENCH_RECORD=1`` to rewrite the committed ``BENCH_*.json`` files
(``REPRO_BENCH_RECORD=1 pytest benchmarks/ -q``).

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
rendered figures inline.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _environment_stamp() -> dict:
    """The hardware/interpreter facts a timing number is meaningless
    without: logical CPU count and the exact Python version."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def record_bench(filename: str, payload: dict) -> bool:
    """Write one ``BENCH_*.json`` artifact when recording is enabled.

    The single switch every benchmark shares: ``REPRO_BENCH_RECORD=1``
    rewrites the artifact at the repo root; otherwise the payload is
    computed (and asserted on) but nothing on disk changes.  Returns
    whether the file was written.

    Every recorded payload is stamped with the recording environment
    (``environment``: cpu_count, python version) -- parallel-speedup
    artifacts especially cannot be interpreted without it.
    """
    if os.environ.get("REPRO_BENCH_RECORD") != "1":
        return False
    out = REPO_ROOT / filename
    stamped = dict(payload)
    stamped["environment"] = _environment_stamp()
    out.write_text(json.dumps(stamped, indent=2) + "\n")
    return True


def pytest_configure(config):
    # Assertion-only tests legitimately leave the auto-injected benchmark
    # fixture untouched; the plugin's nag about it is noise here.
    config.addinivalue_line(
        "filterwarnings", "ignore:Benchmark fixture was not used"
    )


@pytest.fixture(autouse=True)
def _benchmark_everything(benchmark):
    """Opt every test in benchmarks/ into pytest-benchmark collection.

    The harness mixes timed runs with shape/conformance assertions on the
    same artifacts; ``--benchmark-only`` must execute both, so every test
    transitively uses the benchmark fixture.
    """
    yield


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark.

    The experiments are deterministic simulations -- repeating them only
    repeats identical work -- so a single round is both honest and fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def record_artifact():
    """Inject :func:`record_bench` without cross-conftest imports."""
    return record_bench


@pytest.fixture
def report():
    """Collect printable lines and emit them at teardown (visible via -s)."""
    lines: list[str] = []
    yield lines
    if lines:
        print()
        for line in lines:
            print(line)
