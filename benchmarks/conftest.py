"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and asserts
the paper's qualitative claims (who wins, by roughly what factor, where
crossovers fall).  Scale knobs come from the environment:

* ``REPRO_EXP1_TUPLES``  -- Experiment 1 stream length (default 5000,
  the paper's size);
* ``REPRO_EXP2_HOURS``   -- Experiment 2 horizon (default 2.0; the paper
  ran 18 h -- set ``REPRO_EXP2_HOURS=18`` for full scale).

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
rendered figures inline.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Assertion-only tests legitimately leave the auto-injected benchmark
    # fixture untouched; the plugin's nag about it is noise here.
    config.addinivalue_line(
        "filterwarnings", "ignore:Benchmark fixture was not used"
    )


@pytest.fixture(autouse=True)
def _benchmark_everything(benchmark):
    """Opt every test in benchmarks/ into pytest-benchmark collection.

    The harness mixes timed runs with shape/conformance assertions on the
    same artifacts; ``--benchmark-only`` must execute both, so every test
    transitively uses the benchmark fixture.
    """
    yield


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark.

    The experiments are deterministic simulations -- repeating them only
    repeats identical work -- so a single round is both honest and fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def report():
    """Collect printable lines and emit them at teardown (visible via -s)."""
    lines: list[str] = []
    yield lines
    if lines:
        print()
        for line in lines:
            print(line)
