"""Table 1: the characterization of COUNT, rendered and verified live.

The bench (a) prints the machine-readable Table 1 exactly as the paper
lays it out and (b) runs a *conformance* pass: a live windowed COUNT
operator receives feedback from every row's class, and the actions it
takes (state purged? input guarded? output guarded? what was relayed?)
are checked against the table.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ExploitAction,
    FeedbackPunctuation,
    PropagationBehavior,
    count_characterization,
)
from repro.engine.harness import OperatorHarness
from repro.operators import AggregateKind, WindowAggregate
from repro.punctuation import AtLeast, AtMost, GreaterThan, LessThan, Pattern
from repro.stream import Schema, StreamTuple

from conftest import run_once

INPUT_SCHEMA = Schema([
    ("timestamp", "timestamp", True), ("segment", "int"), ("speed", "float"),
])


def make_count() -> WindowAggregate:
    return WindowAggregate(
        "count", INPUT_SCHEMA,
        kind=AggregateKind.COUNT,
        window_attribute="timestamp",
        width=10.0,
        group_by=("segment",),
    )


def seeded_harness(rows: int = 30) -> OperatorHarness:
    """COUNT with live state: three segments, tuples in window 0."""
    count = make_count()
    harness = OperatorHarness(count)
    for i in range(rows):
        harness.push(
            StreamTuple(INPUT_SCHEMA, (float(i % 9), i % 3, 50.0 + i))
        )
    return harness


def test_table1_rendering(report):
    char = count_characterization(
        Schema.of("window", "segment", "count"),
        ["window", "segment"], "count",
    )
    table = char.render_table()
    report.append(table)
    assert "¬[g, *]" in table and "¬[*, >=a]" in table


def test_row1_group_feedback_purges_and_propagates(report):
    """¬[g,*]: remove group from state, guard input, propagate g."""
    harness = seeded_harness()
    count = harness.operator
    out = count.output_schema
    actions = harness.feedback(
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(out, {"window": 0, "segment": 1})
        )
    )
    assert ExploitAction.PURGE_STATE in actions
    assert ExploitAction.GUARD_INPUT in actions
    assert ExploitAction.PROPAGATE in actions
    relayed = harness.upstream_feedback(0)
    assert len(relayed) == 1
    # Propagated "in terms of input schema": window -> timestamp range.
    assert relayed[0].pattern.matches((5.0, 1, 99.0))
    assert not relayed[0].pattern.matches((5.0, 2, 99.0))
    assert not relayed[0].pattern.matches((15.0, 1, 99.0))
    # State for (window 0, segment 1) is gone: its result never appears.
    harness.finish()
    results = harness.emitted_tuples()
    assert not [r for r in results if r["segment"] == 1 and r["window"] == 0]
    report.append("row ¬[g,*]: purge+guard+propagate confirmed")


def test_row2_exact_count_output_guard_only():
    """¬[*,a]: only an output guard; counts may still reach a later."""
    harness = seeded_harness()
    count = harness.operator
    actions = harness.feedback(
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(count.output_schema, {"count": 10})
        )
    )
    assert actions == [ExploitAction.GUARD_OUTPUT]
    assert harness.upstream_feedback(0) == []
    assert harness.input_guard_count() == 0


@pytest.mark.parametrize("atom", [AtLeast(9), GreaterThan(8)])
def test_row3_lower_bound_state_dependent(atom, report):
    """¬[*,>=a]: purge certain groups G, guard input (G), propagate G."""
    harness = seeded_harness(rows=30)  # 10 tuples per segment in window 0
    count = harness.operator
    actions = harness.feedback(
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(count.output_schema, {"count": atom})
        )
    )
    assert ExploitAction.PURGE_STATE in actions
    assert ExploitAction.GUARD_INPUT in actions
    relayed = harness.upstream_feedback(0)
    assert relayed, "G must be propagated in terms of the input schema"
    # A count already >= bound can only grow: its windows were purged and
    # the result is suppressed even if more tuples arrive.
    harness.push(StreamTuple(INPUT_SCHEMA, (1.0, 0, 42.0)))
    harness.finish()
    for result in harness.emitted_tuples():
        assert result["count"] < 9 or not atom.matches(result["count"])
    report.append(f"row ¬[*,{atom!r}]: state-dependent exploitation confirmed")


@pytest.mark.parametrize("atom", [AtMost(100), LessThan(100)])
def test_row4_upper_bound_output_guard_only(atom):
    """¬[*,<=a]: purge would be wrong (count grows); output guard only."""
    harness = seeded_harness()
    count = harness.operator
    actions = harness.feedback(
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(count.output_schema, {"count": atom})
        )
    )
    assert actions == [ExploitAction.GUARD_OUTPUT]
    assert harness.input_guard_count() == 0
    # State survives: a count below the bound now could exceed it later,
    # so nothing was purged.
    assert count.metrics.state_purged == 0


def test_table1_classification_agrees_with_characterization():
    """The shape classifier assigns each probe to the right table row."""
    out = Schema.of("window", "segment", "count")
    char = count_characterization(out, ["window", "segment"], "count")
    probes = {
        "¬[g, *]": Pattern.from_mapping(out, {"segment": 3}),
        "¬[*, a]": Pattern.from_mapping(out, {"count": 5}),
        "¬[*, >=a] / ¬[*, >a]": Pattern.from_mapping(out, {"count": AtLeast(5)}),
        "¬[*, <=a] / ¬[*, <a]": Pattern.from_mapping(out, {"count": LessThan(5)}),
    }
    for expected_label, pattern in probes.items():
        assert char.classify(pattern).label == expected_label


def test_count_feedback_handling_throughput(benchmark):
    """Micro: cost of one full Table 1 row-3 exploitation on live state."""
    def scenario():
        harness = seeded_harness(rows=60)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(
                    harness.operator.output_schema, {"count": AtLeast(15)}
                )
            )
        )
        return harness

    run_once(benchmark, scenario)
