"""Micro-benchmark: a deep stateless chain, materialized vs fused.

The optimizer's fusion pass collapses a chain of N stateless stages into
one :class:`FusedOperator`, so an element crosses one engine queue
instead of N.  The per-hop cost it eliminates is scheduling, not tuple
work -- queue handoff, wake-up, and (above all) per-punctuation
traversal -- so the harness drives the regime where hops dominate: an
eight-SELECT guard chain over a punctuation-dense stream (one embedded
punctuation every couple of elements, the fine-grained progress regime
the paper's feedback experiments run in) on the deterministic simulated
engine.  Both runs share one flow definition; the optimized leg differs
only in ``optimize=True``.

The result is recorded in ``BENCH_fusion.json`` at the repo root.  The
tier-1 assertion gates the *sign* of the speedup so shared-runner noise
cannot flake the suite; the >= 1.5x headline claim is armed when the
committed artifact is being rewritten (``REPRO_BENCH_RECORD=1``), i.e.
whenever a number anyone can cite is produced.

Scale knob: ``REPRO_BENCH_FUSION_TUPLES`` (default 20000).
"""

from __future__ import annotations

import os
import time

from repro import Flow, Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])
N_TUPLES = int(os.environ.get("REPRO_BENCH_FUSION_TUPLES", "20000"))
DEPTH = 8
PUNCT_EVERY = 0.002  # one punctuation per ~2 elements at dt=0.001
REPEATS = 3
RECORDING = os.environ.get("REPRO_BENCH_RECORD") == "1"


def build_rows():
    return [
        (i * 0.001, StreamTuple(SCHEMA, (i * 0.001, i % 10, float(i))))
        for i in range(N_TUPLES)
    ]


def pipeline(rows):
    """source -> 8 guarded SELECTs -> sink, punctuation-dense."""
    flow = Flow("fusion-bench")
    handle = (
        flow.source(SCHEMA, rows, name="src")
        .punctuate(on="ts", every=PUNCT_EVERY)
    )
    for i in range(DEPTH):
        handle = handle.where(
            lambda t, m=17 - i: t["v"] % m != 0.0, name=f"s{i}"
        )
    handle.collect("sink")
    return flow


def best_of(rows, **run_kwargs) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = pipeline(rows).run("simulated", **run_kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


class TestFusionThroughput:
    def test_fused_chain_beats_materialized(self, report, record_artifact):
        rows = build_rows()

        materialized_s, base = best_of(rows)
        fused_s, opt = best_of(rows, optimize=True)

        # Correctness first: identical sink output, and the chain really
        # fused into a single composite.
        assert [t.values for t in base.sink("sink").results] == [
            t.values for t in opt.sink("sink").results
        ]
        fused_name = "+".join(f"s{i}" for i in range(DEPTH))
        assert fused_name in opt.metrics.operator_metrics

        speedup = materialized_s / fused_s
        record = {
            "benchmark": "fusion_deep_select_chain",
            "engine": "simulated",
            "tuples": N_TUPLES,
            "stages": DEPTH,
            "punctuation_interval": PUNCT_EVERY,
            "materialized_s": round(materialized_s, 6),
            "fused_s": round(fused_s, 6),
            "speedup": round(speedup, 3),
            "materialized_ns_per_tuple": round(
                materialized_s / N_TUPLES * 1e9, 1
            ),
            "fused_ns_per_tuple": round(fused_s / N_TUPLES * 1e9, 1),
        }
        record_artifact("BENCH_fusion.json", record)

        report.append(
            f"fusion: materialized {materialized_s * 1e3:.1f} ms, "
            f"fused {fused_s * 1e3:.1f} ms, speedup {speedup:.2f}x "
            f"({N_TUPLES} tuples, {DEPTH}-SELECT chain, punctuation "
            f"every {PUNCT_EVERY})"
        )
        # Tier-1 gates the sign; the headline >= 1.5x is asserted when
        # rewriting the committed artifact (full scale, quiet machine).
        assert speedup > 1.0, record
        if RECORDING and N_TUPLES >= 20000:
            assert speedup >= 1.5, record
