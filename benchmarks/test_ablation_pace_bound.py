"""Ablation: PACE's feedback bound policy (watermark vs tolerance).

The paper's PACE declares *everything behind the current high watermark*
useless ("tuples with timestamps less than the current high watermark are
no longer needed").  A natural-looking conservative alternative -- declare
only the region the tolerance already condemns -- turns out to barely help:
the antecedent keeps processing tuples right at the lateness boundary and
almost all of its output still arrives late.  This ablation justifies the
paper's aggressive bound.
"""

from __future__ import annotations

from repro.experiments import Exp1Config, run_pace_bound_ablation

from conftest import run_once


def test_pace_bound_policy(benchmark, report):
    config = Exp1Config.from_env()
    fractions = run_once(
        benchmark, lambda: run_pace_bound_ablation(config)
    )
    report.append(
        "PACE bound ablation -- imputed-drop fraction: "
        + ", ".join(f"{k}={v:.1%}" for k, v in fractions.items())
    )
    # The watermark policy recovers most imputed tuples...
    assert fractions["watermark"] <= 0.40
    # ...the conservative policy barely improves on no-feedback (~97%).
    assert fractions["tolerance"] >= 0.70
    assert fractions["watermark"] < fractions["tolerance"] - 0.3
