"""Table 2: the characterization of JOIN, rendered and verified live.

Uses the paper's section 4.2 schemas -- A(a, t, id) ⋈ B(t, id, b) on
(t, id), output C(a, t, id, b) -- and checks each Table 2 row against a
live symmetric hash join: which hash tables are purged, which inputs are
guarded, and what is propagated where.  The last row (``¬[l,*,r]``) is the
famous no-safe-propagation case.
"""

from __future__ import annotations

from repro.core import (
    ExploitAction,
    FeedbackPunctuation,
    PropagationBehavior,
    join_characterization,
)
from repro.engine.harness import OperatorHarness
from repro.operators import SymmetricHashJoin
from repro.punctuation import Pattern
from repro.stream import Schema, StreamTuple

from conftest import run_once

LEFT = Schema.of("a", "t", "id")     # A(a, t, id)
RIGHT = Schema.of("t", "id", "b")    # B(t, id, b)


def seeded_join() -> OperatorHarness:
    join = SymmetricHashJoin(
        "join", LEFT, RIGHT, on=[("t", "t"), ("id", "id")]
    )
    harness = OperatorHarness(join)
    for i in range(12):
        harness.push(StreamTuple(LEFT, (40 + i, i % 4, i % 3)), port=0)
        harness.push(StreamTuple(RIGHT, (i % 4, i % 3, 50 + i)), port=1)
    return harness


def test_table2_rendering(report):
    char = join_characterization(
        Schema.of("a", "t", "id", "b"), ["a"], ["t", "id"], ["b"]
    )
    report.append(char.render_table())
    assert "no safe propagation" in char.render_table()


def test_row1_join_attribute_feedback_reaches_both_inputs(report):
    """¬[*,j,*]: purge both tables, guard input, propagate to both."""
    harness = seeded_join()
    join = harness.operator
    before = join.metrics.state_size
    actions = harness.feedback(
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(join.output_schema, {"t": 1, "id": 1})
        )
    )
    assert ExploitAction.PURGE_STATE in actions
    assert ExploitAction.GUARD_INPUT in actions
    assert join.metrics.state_size < before
    left_fb = harness.upstream_feedback(0)
    right_fb = harness.upstream_feedback(1)
    assert len(left_fb) == 1 and len(right_fb) == 1
    # ¬[*, j] to the left input, ¬[j, *] to the right input.
    assert repr(left_fb[0].pattern) == "[*, 1, 1]"
    assert repr(right_fb[0].pattern) == "[1, 1, *]"
    report.append("row ¬[*,j,*]: both-sided purge and propagation confirmed")


def test_row2_left_exclusive_feedback():
    """¬[l,*,*]: purge left table only, propagate left only."""
    harness = seeded_join()
    join = harness.operator
    actions = harness.feedback(
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(join.output_schema, {"a": 45})
        )
    )
    assert ExploitAction.PURGE_STATE in actions
    assert harness.upstream_feedback(0) != []
    assert harness.upstream_feedback(1) == []
    assert harness.input_guard_count(0) == 1
    assert harness.input_guard_count(1) == 0


def test_row3_right_exclusive_feedback():
    """¬[*,*,r]: purge right table only, propagate right only."""
    harness = seeded_join()
    join = harness.operator
    harness.feedback(
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(join.output_schema, {"b": 55})
        )
    )
    assert harness.upstream_feedback(0) == []
    assert harness.upstream_feedback(1) != []
    assert harness.input_guard_count(1) == 1


def test_row4_both_sides_no_safe_propagation(report):
    """¬[l,*,r]: output guard only -- <49,2,3,50> must survive upstream.

    Propagating ¬[50,*,*] and ¬[*,*,50] would wrongly suppress the tuple
    <49, 2, 3, 50> (paper section 4.2); the only correct response is an
    output guard.
    """
    harness = seeded_join()
    join = harness.operator
    actions = harness.feedback(
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(join.output_schema, {"a": 50, "b": 50})
        )
    )
    assert ExploitAction.GUARD_OUTPUT in actions
    assert ExploitAction.PURGE_STATE not in actions
    assert harness.upstream_feedback(0) == []
    assert harness.upstream_feedback(1) == []
    assert harness.input_guard_count(0) == 0
    assert harness.input_guard_count(1) == 0
    # The counter-example survives: a=49 joins with b=50 and is emitted.
    harness.push(StreamTuple(LEFT, (49, 2, 0)), port=0)
    harness.push(StreamTuple(RIGHT, (2, 0, 50)), port=1)
    emitted = harness.emitted_tuples()
    assert any(r["a"] == 49 and r["b"] == 50 for r in emitted)
    # While a=50 & b=50 results are suppressed by the output guard.
    harness.push(StreamTuple(LEFT, (50, 3, 0)), port=0)
    harness.push(StreamTuple(RIGHT, (3, 0, 50)), port=1)
    emitted = harness.emitted_tuples()
    assert not any(r["a"] == 50 and r["b"] == 50 for r in emitted)
    report.append("row ¬[l,*,r]: <49,2,3,50> counter-example preserved")


def test_table2_classification_agrees():
    out = Schema.of("a", "t", "id", "b")
    char = join_characterization(out, ["a"], ["t", "id"], ["b"])
    assert char.classify(
        Pattern.from_mapping(out, {"t": 3, "id": 4})
    ).label == "¬[*, j∈J, *]"
    assert char.classify(
        Pattern.from_mapping(out, {"a": 50})
    ).propagation_targets == (0,)
    rule = char.classify(Pattern.from_mapping(out, {"a": 50, "b": 50}))
    assert rule.propagation is PropagationBehavior.NONE


def test_join_feedback_throughput(benchmark):
    """Micro: one full row-1 exploitation on a loaded join."""
    def scenario():
        harness = seeded_join()
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(
                    harness.operator.output_schema, {"t": 2, "id": 2}
                )
            )
        )
        return harness

    run_once(benchmark, scenario)
