"""Figures 5 and 6: the imputation query plan without / with feedback.

Paper numbers: 97 % of imputed tuples arrive beyond the tolerated
divergence without feedback; only 29 % are dropped with PACE's assumed
feedback enabled.  Assertions are shape bands, not exact matches:

* no-feedback drop fraction >= 90 %;
* with-feedback drop fraction <= 40 %;
* feedback improves the timely-imputed count by at least 5x;
* feedback also saves real work (fewer archival lookups, less busy time).
"""

from __future__ import annotations

from repro.experiments import Exp1Config, run_arm
from repro.viz import scatter, series_summary

from conftest import run_once


def _render(arm, title: str) -> list[str]:
    chart = scatter(
        {
            "clean": arm.clean_series,
            "imputed": arm.imputed_series,
        },
        width=70,
        height=16,
        title=title,
        x_label="output time (s)",
        y_label="tuple id",
    )
    return [chart, arm.summary(), ""]


def test_figure5_no_feedback(benchmark, report):
    config = Exp1Config.from_env()
    arm = run_once(benchmark, lambda: run_arm(config, feedback=False))
    report.extend(_render(arm, "Figure 5 -- imputation WITHOUT feedback"))
    report.append(f"paper: 97% dropped; measured: {arm.drop_fraction:.1%}")
    # Without feedback, the imputed branch diverges and almost everything
    # arrives beyond tolerance.
    assert arm.drop_fraction >= 0.90
    # Every dirty tuple still pays its archival lookup: pure waste.
    assert arm.lookups_performed == arm.total_dirty
    # The clean branch is unaffected.
    assert arm.clean_delivered == arm.total_clean


def test_figure6_with_feedback(benchmark, report):
    config = Exp1Config.from_env()
    arm = run_once(benchmark, lambda: run_arm(config, feedback=True))
    report.extend(_render(arm, "Figure 6 -- imputation WITH feedback"))
    report.append(f"paper: 29% dropped; measured: {arm.drop_fraction:.1%}")
    assert arm.drop_fraction <= 0.40
    # Feedback actually sheds work: lookups skipped at the guard.
    assert arm.lookups_performed < arm.total_dirty
    assert arm.feedback_messages > 0
    assert arm.clean_delivered == arm.total_clean


def test_feedback_vs_no_feedback_shape(report):
    """The headline comparison: feedback wins by a large factor."""
    config = Exp1Config.from_env()
    no_fb = run_arm(config, feedback=False)
    with_fb = run_arm(config, feedback=True)
    report.append(
        "timely imputed tuples: "
        f"no feedback={no_fb.imputed_delivered}, "
        f"with feedback={with_fb.imputed_delivered}"
    )
    report.append(series_summary(with_fb.imputed_series, name="fig6 imputed"))
    # Timely imputed output improves by a large factor (paper: ~23x).
    assert with_fb.imputed_delivered >= 5 * max(no_fb.imputed_delivered, 1)
    # And total work drops (guard drops are cheaper than lookups).
    assert with_fb.total_work < no_fb.total_work
    # Drop ordering matches the paper's 97% vs 29%.
    assert no_fb.drop_fraction > with_fb.drop_fraction + 0.4
