"""Async ingestion benchmark: many slow feeds on one event loop.

The tentpole claim of the asyncio engine: ingesting N independent
rate-limited feeds (async generators sleeping between elements -- the
shape of websockets, HTTP streams, broker subscriptions) costs one
*parked coroutine* per feed, so the makespan tracks a single feed's
replay time instead of the sum of all feeds -- and no OS thread is
spent per operator.

Three measurements:

* **asyncio** -- ``Flow.from_async_iterable`` feeds unioned into one
  sink, run on ``engine="asyncio"``: the N feeds' sleeps overlap on the
  loop (the enforced >= 0.5 * N speedup over serial replay at full
  scale);
* **threaded** -- the identical flow on the threaded engine for
  context: its sync bridge pumps each feed on a private loop inside an
  OS thread, so it overlaps too but pays a thread (and a nested event
  loop) per feed;
* **serial bound** -- ``feeds * tuples * delay``, the time a
  one-at-a-time replay of every feed would need.

Content is asserted engine-independently at every scale: the asyncio
run's multiset must equal the deterministic simulated run of the same
flow.  The result is recorded in ``BENCH_async.json`` via the shared
``record_artifact`` fixture (``REPRO_BENCH_RECORD=1`` rewrites it).

Scale knobs: ``REPRO_BENCH_ASYNC_FEEDS`` (default 8),
``REPRO_BENCH_ASYNC_TUPLES`` (default 150 per feed; below the default
the timing assertions are skipped -- the CI ``bench-smoke`` job runs
exactly that way), ``REPRO_BENCH_ASYNC_DELAY`` (default 0.002s).
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.api import Flow
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("feed", "int"), ("v", "float")])
N_FEEDS = int(os.environ.get("REPRO_BENCH_ASYNC_FEEDS", "8"))
N_TUPLES = int(os.environ.get("REPRO_BENCH_ASYNC_TUPLES", "150"))
DELAY = float(os.environ.get("REPRO_BENCH_ASYNC_DELAY", "0.002"))
FULL_SCALE = N_TUPLES >= 150
SERIAL_BOUND = N_FEEDS * N_TUPLES * DELAY


def feed(feed_id: int):
    async def events():
        for i in range(N_TUPLES):
            await asyncio.sleep(DELAY)  # the remote endpoint's pace
            yield float(i), StreamTuple(
                SCHEMA, (float(i), feed_id, float(i))
            )

    return events


def ingest_flow() -> Flow:
    flow = Flow("async-bench")
    handles = [
        flow.from_async_iterable(SCHEMA, feed(n), name=f"feed_{n}")
        for n in range(N_FEEDS)
    ]
    handles[0].union(*handles[1:], name="merged").collect("sink")
    return flow


def run_engine(engine: str):
    flow = ingest_flow()
    start = time.perf_counter()
    result = flow.run(engine, timeout=max(60.0, 4.0 * SERIAL_BOUND))
    wall = time.perf_counter() - start
    return result, wall


def sink_multiset(result):
    return sorted(tuple(t.values) for t in result.sink("sink").results)


class TestAsyncIngestion:
    def test_feeds_overlap_on_one_loop(self, report, record_artifact):
        asyncio_result, asyncio_wall = run_engine("asyncio")
        threaded_result, threaded_wall = run_engine("threaded")

        # Correctness at every scale: all feeds fully ingested, multiset
        # equal to the deterministic engine's run of the same flow.
        expected = N_FEEDS * N_TUPLES
        assert len(asyncio_result.sink("sink").results) == expected
        assert len(threaded_result.sink("sink").results) == expected
        simulated = ingest_flow().run("simulated")
        assert sink_multiset(asyncio_result) == sink_multiset(simulated)

        speedup = SERIAL_BOUND / max(asyncio_wall, 1e-9)
        if FULL_SCALE:
            # The headline: the loop overlaps the feeds' sleeps.  A
            # serial replay needs feeds * tuples * delay; demand at
            # least half the ideal N-fold overlap to stay CI-robust.
            assert asyncio_wall < SERIAL_BOUND / (N_FEEDS / 2), (
                f"asyncio ingest {asyncio_wall:.3f}s vs serial bound "
                f"{SERIAL_BOUND:.3f}s: feeds did not overlap"
            )

        record = {
            "benchmark": "async_feed_ingestion",
            "feeds": N_FEEDS,
            "tuples_per_feed": N_TUPLES,
            "feed_delay_s": DELAY,
            "serial_bound_s": round(SERIAL_BOUND, 6),
            "asyncio_wall_s": round(asyncio_wall, 6),
            "threaded_wall_s": round(threaded_wall, 6),
            "asyncio_speedup_vs_serial": round(speedup, 2),
            "per_feed_replay_s": round(N_TUPLES * DELAY, 6),
        }
        record_artifact("BENCH_async.json", record)

        report.append(
            f"async ingest: {N_FEEDS} feeds x {N_TUPLES} tuples @ "
            f"{DELAY * 1000:.1f}ms -> asyncio {asyncio_wall:.3f}s, "
            f"threaded {threaded_wall:.3f}s, serial bound "
            f"{SERIAL_BOUND:.3f}s ({speedup:.1f}x overlap)"
        )

    def test_async_flow_runs_on_the_deterministic_engine(self, report):
        """The bridge keeps async-sourced flows testable on virtual time."""
        result = ingest_flow().run("simulated")
        assert len(result.sink("sink").results) == N_FEEDS * N_TUPLES
        report.append(
            f"  bridge: simulated run ingested {N_FEEDS * N_TUPLES} "
            f"tuples from {N_FEEDS} async feeds"
        )
