"""Ablation: page batching versus feedback responsiveness.

Section 5 of the paper motivates page batching (fewer hand-offs, less
context switching) and names its cost (a slow stream strands tuples in an
open page), solved by punctuation-flushes.  Feedback adds a second cost of
large pages: **in-flight stragglers**.  Tuples already processed but
sitting in an undelivered page cannot be saved by feedback -- by the time
PACE sees them, the assumed bound may have moved past their timestamps.

This ablation sweeps the page size of Experiment 1's plan and reports the
imputed-drop fraction: responsiveness degrades as pages grow, which is the
quantitative argument for small pages (or aggressive punctuation) on
feedback-bearing paths.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import Exp1Config, run_arm

from conftest import run_once

PAGE_SIZES = (2, 4, 16, 64)


def test_page_size_vs_drop_fraction(benchmark, report):
    base = Exp1Config.from_env()

    def sweep():
        results = {}
        for page_size in PAGE_SIZES:
            config = replace(base, page_size=page_size)
            results[page_size] = run_arm(config, feedback=True)
        return results

    results = run_once(benchmark, sweep)
    for page_size, arm in sorted(results.items()):
        report.append(
            f"page_size={page_size:>3}: {arm.drop_fraction:.1%} dropped "
            f"({arm.imputed_dropped_at_impute} at IMPUTE's guard, "
            f"{arm.imputed_dropped_at_pace} in-flight late at PACE)"
        )
    # Small pages keep the paper's headline result comfortably.
    assert results[2].drop_fraction <= 0.40
    assert results[4].drop_fraction <= 0.40
    # Degradation is monotone in page size: bigger pages, more stragglers.
    fractions = [results[p].drop_fraction for p in PAGE_SIZES]
    assert fractions == sorted(fractions)
    # The sharp finding: once a page holds more than a tolerance's worth
    # of tuples, the watermark-aggressive feedback becomes *destructive*
    # (the assumed bound condemns whole in-flight pages) -- it can even
    # fall behind the no-feedback baseline.  Feedback needs responsive
    # delivery paths, which is exactly why NiagaraST lets punctuation
    # flush pages (section 5).
    no_feedback = run_arm(base, feedback=False)
    assert results[64].drop_fraction >= no_feedback.drop_fraction - 0.05
    report.append(
        f"(no-feedback baseline: {no_feedback.drop_fraction:.1%} -- "
        f"oversized pages make aggressive feedback useless or worse)"
    )
