#!/usr/bin/env python3
"""Durable feeds: checkpoint a run, kill it, resume it.

Builds a windowed pipeline, runs it once uninterrupted as the reference,
then runs it again with punctuation-aligned checkpointing on
(``checkpoint_every=200``) and a mid-stream crash injected into a
predicate.  A third run hands the surviving checkpoint store to
``recover_from=``: operator state is restored from the latest complete
epoch, the source rewinds to that epoch's offset and replays only the
suffix, and the exactly-once sink output matches the reference run
byte for byte.

Finishes by printing the checkpoint-annotated topology
(``flow.describe(checkpoints=True)`` marks every snapshot-capable stage
with ``⌖``) and the per-operator snapshot metrics.

Run:  python examples/durable_pipeline.py
"""

from __future__ import annotations

from repro import Flow, Schema, StreamTuple
from repro.api import avg
from repro.durability import MemoryCheckpointStore

SCHEMA = Schema([
    ("timestamp", "timestamp", True),
    ("sensor", "int"),
    ("value", "float"),
])

# 1200 readings over two minutes from 4 sensors.
READINGS = [
    (i * 0.1, StreamTuple(SCHEMA, (i * 0.1, i % 4, float(i % 60))))
    for i in range(1200)
]


def build_flow(label: str, crash_after: int | None = None) -> Flow:
    """The pipeline under test; ``crash_after`` arms a mid-stream bomb."""
    calls = {"n": 0}

    def positive(t) -> bool:
        if crash_after is not None:
            calls["n"] += 1
            if calls["n"] > crash_after:
                raise RuntimeError("simulated power loss")
        return t["value"] >= 0.0

    flow = Flow(label)
    (flow.source(SCHEMA, READINGS, name="feed")
         .punctuate(on="timestamp", every=10.0)
         .where(positive, name="positive")
         .window(avg("value"), by="sensor", width=10.0, on="timestamp",
                 name="avg_value")
         .collect("sink"))
    return flow


def main() -> None:
    # ---- reference: one uninterrupted run ----------------------------------
    reference = build_flow("durable").run()
    expected = [t.values for t in reference.sink("sink").results]
    print("reference run:", len(expected), "window averages\n")

    # ---- checkpointed run, killed mid-stream -------------------------------
    store = MemoryCheckpointStore()
    try:
        build_flow("durable", crash_after=700).run(
            checkpoint_every=200, checkpoint_store=store
        )
    except RuntimeError as crash:
        print("crashed mid-stream:", crash)
    epochs = store.epochs()
    print("epochs with records at the time of death:", epochs)

    # ---- resume from the store ---------------------------------------------
    recovered = build_flow("durable").run(
        recover_from=store, checkpoint_every=200
    )
    got = [t.values for t in recovered.sink("sink").results]
    assert got == expected, "recovered output must match the reference"
    print("recovered run:", len(got), "window averages -- identical\n")

    # ---- what checkpointing touched ----------------------------------------
    flow = build_flow("durable")
    print("checkpoint-capable stages (⌖):")
    print(flow.describe(checkpoints=True))
    print("per-operator snapshots (recovered run):")
    for op in recovered.plan:
        metrics = op.metrics
        if metrics.checkpoints:
            print(f"  {op.name}: {metrics.checkpoints} snapshots, "
                  f"{metrics.snapshot_bytes} bytes")
    print(f"\nplan totals: {recovered.metrics.checkpoint_epochs} epochs, "
          f"{recovered.metrics.checkpoint_bytes} bytes, "
          f"{recovered.metrics.checkpoint_time * 1e3:.2f}ms snapshotting")


if __name__ == "__main__":
    main()
