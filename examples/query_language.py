#!/usr/bin/env python3
"""The paper's SQL sketch, runnable: ``WITH PACE ON`` as a query clause.

Section 3.3 expresses the explicit-feedback policy declaratively::

    SELECT * FROM stream1 UNION stream2
    WITH PACE ON MAX(stream1.time, stream2.time) 1 MINUTE

This example compiles a close analogue against two synthetic streams --
one punctual, one that falls progressively behind -- and shows the PACE
clause turning into a live feedback producer: late tuples are dropped at
the policy boundary and assumed feedback flows to the lagging source,
which stops producing the condemned region.

Run:  python examples/query_language.py
"""

from __future__ import annotations

from repro import Simulator, StreamTuple
from repro.lang import Catalog, compile_query
from repro.stream import Attribute, Schema

SCHEMA = Schema([
    Attribute("time", "timestamp", progressing=True),
    Attribute("station", "int"),
    Attribute("reading", "float"),
])


def punctual_stream(n=300):
    return [
        (i * 0.2, StreamTuple(SCHEMA, (i * 0.2, i % 5, float(i))))
        for i in range(n)
    ]


def laggard_stream(n=300):
    """Arrives on time at first, then drifts ever further behind."""
    rows = []
    for i in range(n):
        arrival = i * 0.2 + (i * i) * 0.0004   # quadratic drift
        timestamp = i * 0.2
        rows.append(
            (arrival, StreamTuple(SCHEMA, (timestamp, 5 + i % 5, float(i))))
        )
    return rows


def main() -> None:
    catalog = Catalog({
        "stations": (SCHEMA, punctual_stream()),
        "mobile": (SCHEMA, laggard_stream()),
    })
    query = """
        SELECT *
        FROM stations UNION mobile
        WHERE reading >= 0
        WITH PACE ON time 10 SECONDS
    """
    print("query:\n" + query)
    plan = compile_query(query, catalog, plan_name="paced-union")
    print(plan.describe(), "\n")
    result = Simulator(plan).run()

    pace = plan.operator("pace")
    sink = plan.operator("result")
    print(f"results delivered: {len(sink.results)}")
    print(f"late tuples dropped by the PACE policy: {pace.late_drops}")
    print(f"assumed feedback messages produced: "
          f"{pace.metrics.feedback_produced}")
    print(f"tuples suppressed at the lagging source: "
          f"{plan.operator('mobile').metrics.output_guard_drops}")
    print("\nfeedback trace (first 10):")
    for event in list(result.feedback_log)[:10]:
        print("   ", event)


if __name__ == "__main__":
    main()
