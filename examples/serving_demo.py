"""The serving layer end to end: one socket, always-on flows.

A `flow.ingest(...) -> where -> push(...)` plan is admitted to a
FlowSupervisor and served by a StreamServer on an ephemeral port
(``docs/serving.md``).  The demo then acts as its own clients, all on
the one event loop:

* an SSE subscriber attaches to ``/v1/flows/readings/stream``;
* a websocket duplex session ingests three readings and reads its own
  fan-out back;
* an HTTP POST ingests a five-element batch (``202 {"admitted": 5}``);
* ``/healthz`` and ``/metrics`` report the service state in Prometheus
  text;
* a second, tightly-provisioned tenant floods its flow and is paced --
  admission control converts the overload into delay (never drops),
  and the pause/resume control log records the throttling;
* a graceful drain delivers everything before the loop exits.

Run: ``PYTHONPATH=src python examples/serving_demo.py``
"""

from __future__ import annotations

import asyncio
import time

from repro.api import Flow
from repro.serving import FlowState, FlowSupervisor, StreamServer, TenantPolicy
from repro.serving.client import (
    WebSocketClient,
    get_json,
    get_text,
    post_json,
    sse_subscribe,
)
from repro.stream import Attribute, Schema

SCHEMA = Schema([
    Attribute("client", "str"),
    Attribute("seq", "int"),
    Attribute("value", "float"),
])


def build_flow(name: str) -> Flow:
    flow = Flow(name)
    (flow.ingest(SCHEMA, name="in", capacity=16)
         .where(lambda t: t["value"] >= 0.0, name="keep")
         .push("out", high_water=16))
    return flow


async def main() -> None:
    readings = build_flow("readings")
    ticks = build_flow("ticks")

    supervisor = FlowSupervisor(queue_capacity=16)
    supervisor.admit(
        readings, tenant="demo",
        policy=TenantPolicy(rate=10_000.0, burst=1_000.0, max_flows=4),
    )
    supervisor.admit(
        ticks, tenant="free-tier",
        policy=TenantPolicy(rate=200.0, burst=5.0, max_flows=1),
    )

    server = StreamServer(supervisor)
    host, port = await server.start()
    print(f"serving 2 flows on http://{host}:{port}")

    # -- subscribe first: a push hub feeds live subscribers ------------
    stream = sse_subscribe(host, port, "/v1/flows/readings/stream?limit=8")

    async def collect() -> list[int]:
        return [event["seq"] async for event in stream]

    subscriber = asyncio.ensure_future(collect())
    while not readings.hub().subscribers:
        await asyncio.sleep(0.01)

    # -- websocket duplex: ingest and read the fan-out back ------------
    async with WebSocketClient(
        host, port, "/v1/flows/readings/ws?mode=duplex"
    ) as ws:
        for seq in range(3):
            await ws.send_json(
                {"client": "ws0", "seq": seq, "value": seq * 0.5}
            )
        echoes = [await ws.receive_json() for _ in range(3)]
    print(f"websocket round-trip: {[e['seq'] for e in echoes]}")

    # -- HTTP batch ingest ---------------------------------------------
    status, body = await post_json(
        host, port, "/v1/flows/readings/ingest",
        [{"client": "http0", "seq": seq, "value": 1.0} for seq in range(3, 8)],
    )
    assert (status, body["admitted"]) == (202, 5)
    print(f"POST batch: {status} admitted={body['admitted']}")

    delivered = await asyncio.wait_for(subscriber, 10.0)
    assert delivered == [0, 1, 2, 3, 4, 5, 6, 7]
    print(f"SSE subscriber saw every delivery: {delivered}")

    # -- observability --------------------------------------------------
    status, health = await get_json(host, port, "/healthz")
    assert status == 200 and health["status"] == "ok"
    status, metrics = await get_text(host, port, "/metrics")
    lines = [
        line for line in metrics.splitlines()
        if line.startswith(("repro_flow_up", "repro_server_ingested_total"))
    ]
    print("metrics excerpt:\n  " + "\n  ".join(lines))

    # -- tenancy: overload becomes delay, not drops ---------------------
    start = time.perf_counter()
    status, body = await post_json(
        host, port, "/v1/flows/ticks/ingest",
        [{"client": "flood", "seq": seq, "value": 1.0} for seq in range(40)],
    )
    paced = time.perf_counter() - start
    assert (status, body["admitted"]) == (202, 40)
    snap = supervisor.admission.snapshot()["free-tier"]
    print(
        f"free-tier flood: 40 admitted in {paced * 1000:.0f} ms "
        f"(policy: 200/s after a burst of 5); "
        f"{snap['delayed']} reservations were delayed, 0 dropped"
    )
    assert snap["delayed"] > 0

    # -- graceful drain --------------------------------------------------
    await server.aclose(drain=True)
    for managed in supervisor.flows:
        assert managed.state is FlowState.DRAINED
    print("drained: every admitted element delivered; loop is idle")


if __name__ == "__main__":
    asyncio.run(main())
