#!/usr/bin/env python3
"""The speed map of paper Figure 1: sensors ⟕ aggregated probe vehicles.

Plan (Figure 1(b))::

    SENSOR DATA ──────────────────────────────┐
                                        (outer) JOIN ──> speed map
    VEHICLE DATA -> CLEAN -> AGGREGATE ───────┘
                             (segment, 20 s)

The join includes every fixed-sensor reading and attaches the aggregated
vehicle speed only when the sensor reports congestion (< 45 mph).  That
means vehicle readings from *uncongested* segments are cleaned and
aggregated for nothing -- the paper's motivating waste.

``CongestionAwareJoin`` below implements the Introduction's remedy: when
the first sensor report of a (window, segment) shows free flow, the join
issues assumed feedback for that key to the vehicle branch; the AGGREGATE
purges and guards the window, relays the (window -> timestamp-range)
translation to CLEAN, and CLEAN stops paying the cleaning cost for those
probe readings.

Run:  python examples/speedmap.py
"""

from __future__ import annotations

from repro import (
    AggregateKind,
    CollectSink,
    FeedbackPunctuation,
    Map,
    Pattern,
    PunctuatedSource,
    QualityFilter,
    QueryPlan,
    Simulator,
    SymmetricHashJoin,
    WindowAggregate,
)
from repro.workloads import TrafficWorkload

CONGESTION_THRESHOLD = 45.0
WINDOW = 20.0


class CongestionAwareJoin(SymmetricHashJoin):
    """Left-outer join that reports uncongested (window, segment) keys.

    The first sensor report decides a key's congestion status; free-flow
    keys trigger assumed feedback to the vehicle branch (the right input)
    and a local guard so late aggregates for those keys are dropped.
    Padding still happens for them -- the speed map *wants* the
    sensor-only row for uncongested segments.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._decided: set[tuple] = set()
        self.uncongested_keys = 0

    def on_tuple(self, port_index: int, tup) -> None:
        if port_index == self.LEFT:
            key = self._key_of(self.LEFT, tup)
            if key not in self._decided:
                self._decided.add(key)
                if tup["speed"] is not None and tup["speed"] >= CONGESTION_THRESHOLD:
                    self._suppress_vehicle_data(key)
        super().on_tuple(port_index, tup)

    def _suppress_vehicle_data(self, key: tuple) -> None:
        self.uncongested_keys += 1
        window_id, segment = key
        pattern = Pattern.from_mapping(
            self.right_schema, {"window": window_id, "segment": segment}
        )
        feedback = FeedbackPunctuation.assumed(
            pattern, issuer=self.name, issued_at=self.now()
        )
        self.produce_feedback(feedback, input_indices=(self.RIGHT,))
        # Drop late aggregates for the key locally as well; padding for
        # these keys remains enabled (the sensor-only row is the answer).
        self.input_port(self.RIGHT).guards.install(
            pattern, origin=feedback, at=self.now()
        )


def build(feedback: bool):
    workload = TrafficWorkload(
        segments=9,
        detectors_per_segment=6,
        report_interval=WINDOW,
        horizon=1200.0,           # 20 minutes
        probes_per_segment=8.0,
        seed=21,
    )
    plan = QueryPlan("speedmap" + ("-fb" if feedback else ""))

    # Left branch: fixed sensors, with a derived window id for the join.
    from repro.workloads import DETECTOR_SCHEMA, PROBE_SCHEMA
    sensors = PunctuatedSource(
        "sensors", DETECTOR_SCHEMA, workload.detector_timeline(),
        punctuate_on="timestamp", punctuation_interval=WINDOW,
    )
    sensor_windows = Map.extending(
        "sensor_windows", DETECTOR_SCHEMA,
        [("window", "int", True)],
        lambda t: (int(t["timestamp"] // WINDOW),),
        tuple_cost=0.0001,
    )

    # Right branch: probe vehicles -> CLEAN -> AGGREGATE(segment, 20 s).
    vehicles = PunctuatedSource(
        "vehicles", PROBE_SCHEMA, workload.probe_timeline(),
        punctuate_on="timestamp", punctuation_interval=WINDOW,
    )
    clean = QualityFilter(
        "clean", PROBE_SCHEMA,
        lambda t: t["speed"] is not None and 0.0 < t["speed"] < 120.0,
        tuple_cost=0.004,
    )
    aggregate = WindowAggregate(
        "aggregate", PROBE_SCHEMA,
        kind=AggregateKind.AVG,
        window_attribute="timestamp",
        width=WINDOW,
        value_attribute="speed",
        group_by=("segment",),
        value_name="vehicle_speed",
        tuple_cost=0.002,
    )

    join_cls = CongestionAwareJoin if feedback else SymmetricHashJoin
    join = join_cls(
        "speed_join",
        sensor_windows.output_schema,
        aggregate.output_schema,
        on=[("window", "window"), ("segment", "segment")],
        condition=lambda sensor, agg: (
            sensor["speed"] is not None
            and sensor["speed"] < CONGESTION_THRESHOLD
        ),
        how="left_outer",
    )
    sink = CollectSink("speed_map", join.output_schema)

    for op in (sensors, sensor_windows, vehicles, clean, aggregate, join, sink):
        plan.add(op)
    plan.connect(sensors, sensor_windows)
    plan.connect(sensor_windows, join, port=0)
    plan.connect(vehicles, clean)
    plan.connect(clean, aggregate)
    plan.connect(aggregate, join, port=1)
    plan.connect(join, sink)
    return plan, clean, aggregate, join, sink


def main() -> None:
    for feedback in (False, True):
        plan, clean, aggregate, join, sink = build(feedback)
        result = Simulator(plan).run()
        label = "with feedback" if feedback else "no feedback  "
        joined = sum(1 for r in sink.results if r["vehicle_speed"] is not None)
        padded = len(sink.results) - joined
        print(
            f"{label}: work={result.total_work:7.2f}s  "
            f"map rows={len(sink.results)} "
            f"(vehicle-backed={joined}, sensor-only={padded})  "
            f"cleaned={clean.metrics.tuples_in - clean.metrics.input_guard_drops}  "
            f"clean-guard-drops={clean.metrics.input_guard_drops}  "
            f"agg-guard-drops={aggregate.metrics.input_guard_drops}"
        )
        if feedback:
            print(
                f"    uncongested keys reported by the join: "
                f"{join.uncongested_keys}; feedback events: "
                f"{len(result.feedback_log)}"
            )


if __name__ == "__main__":
    main()
