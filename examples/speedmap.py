#!/usr/bin/env python3
"""The speed map of paper Figure 1: sensors ⟕ aggregated probe vehicles.

Plan (Figure 1(b))::

    SENSOR DATA ──────────────────────────────┐
                                        (outer) JOIN ──> speed map
    VEHICLE DATA -> CLEAN -> AGGREGATE ───────┘
                             (segment, 20 s)

The join includes every fixed-sensor reading and attaches the aggregated
vehicle speed only when the sensor reports congestion (< 45 mph).  That
means vehicle readings from *uncongested* segments are cleaned and
aggregated for nothing -- the paper's motivating waste.

``CongestionAwareJoin`` below implements the Introduction's remedy: when
the first sensor report of a (window, segment) shows free flow, the join
issues assumed feedback for that key to the vehicle branch; the AGGREGATE
purges and guards the window, relays the (window -> timestamp-range)
translation to CLEAN, and CLEAN stops paying the cleaning cost for those
probe readings.

Both branches are authored on the fluent surface and meet at the custom
join via ``flow.merge`` -- the escape hatch for operators the verb set
does not cover.

Run:  python examples/speedmap.py
"""

from __future__ import annotations

from repro import (
    FeedbackPunctuation,
    Flow,
    Pattern,
    SymmetricHashJoin,
)
from repro.api import avg
from repro.workloads import DETECTOR_SCHEMA, PROBE_SCHEMA, TrafficWorkload

CONGESTION_THRESHOLD = 45.0
WINDOW = 20.0


class CongestionAwareJoin(SymmetricHashJoin):
    """Left-outer join that reports uncongested (window, segment) keys.

    The first sensor report decides a key's congestion status; free-flow
    keys trigger assumed feedback to the vehicle branch (the right input)
    and a local guard so late aggregates for those keys are dropped.
    Padding still happens for them -- the speed map *wants* the
    sensor-only row for uncongested segments.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._decided: set[tuple] = set()
        self.uncongested_keys = 0

    def on_tuple(self, port_index: int, tup) -> None:
        if port_index == self.LEFT:
            key = self._key_of(self.LEFT, tup)
            if key not in self._decided:
                self._decided.add(key)
                if tup["speed"] is not None and tup["speed"] >= CONGESTION_THRESHOLD:
                    self._suppress_vehicle_data(key)
        super().on_tuple(port_index, tup)

    def _suppress_vehicle_data(self, key: tuple) -> None:
        self.uncongested_keys += 1
        window_id, segment = key
        pattern = Pattern.from_mapping(
            self.right_schema, {"window": window_id, "segment": segment}
        )
        feedback = FeedbackPunctuation.assumed(
            pattern, issuer=self.name, issued_at=self.now()
        )
        self.produce_feedback(feedback, input_indices=(self.RIGHT,))
        # Drop late aggregates for the key locally as well; padding for
        # these keys remains enabled (the sensor-only row is the answer).
        self.input_port(self.RIGHT).guards.install(
            pattern, origin=feedback, at=self.now()
        )


def build(feedback: bool) -> Flow:
    workload = TrafficWorkload(
        segments=9,
        detectors_per_segment=6,
        report_interval=WINDOW,
        horizon=1200.0,           # 20 minutes
        probes_per_segment=8.0,
        seed=21,
    )
    flow = Flow("speedmap" + ("-fb" if feedback else ""))

    # Left branch: fixed sensors, with a derived window id for the join.
    sensor_windows = (
        flow.source(DETECTOR_SCHEMA, workload.detector_timeline(),
                    name="sensors")
            .punctuate(on="timestamp", every=WINDOW)
            .extend(
                [("window", "int", True)],
                lambda t: (int(t["timestamp"] // WINDOW),),
                name="sensor_windows", tuple_cost=0.0001,
            )
    )

    # Right branch: probe vehicles -> CLEAN -> AGGREGATE(segment, 20 s).
    aggregated = (
        flow.source(PROBE_SCHEMA, workload.probe_timeline(),
                    name="vehicles")
            .punctuate(on="timestamp", every=WINDOW)
            .where(
                lambda t: t["speed"] is not None and 0.0 < t["speed"] < 120.0,
                name="clean", tuple_cost=0.004,
            )
            .window(
                avg("speed"),
                on="timestamp", width=WINDOW, by="segment",
                name="aggregate", value_name="vehicle_speed",
                tuple_cost=0.002,
            )
    )

    join_cls = CongestionAwareJoin if feedback else SymmetricHashJoin
    flow.merge(
        lambda: join_cls(
            "speed_join",
            sensor_windows.schema,
            aggregated.schema,
            on=[("window", "window"), ("segment", "segment")],
            condition=lambda sensor, agg: (
                sensor["speed"] is not None
                and sensor["speed"] < CONGESTION_THRESHOLD
            ),
            how="left_outer",
        ),
        sensor_windows, aggregated,
    ).collect("speed_map")
    return flow


def main() -> None:
    for feedback in (False, True):
        result = build(feedback).run(engine="simulated")
        clean = result.plan.operator("clean")
        aggregate = result.plan.operator("aggregate")
        join = result.plan.operator("speed_join")
        sink = result.plan.operator("speed_map")
        label = "with feedback" if feedback else "no feedback  "
        joined = sum(1 for r in sink.results if r["vehicle_speed"] is not None)
        padded = len(sink.results) - joined
        print(
            f"{label}: work={result.total_work:7.2f}s  "
            f"map rows={len(sink.results)} "
            f"(vehicle-backed={joined}, sensor-only={padded})  "
            f"cleaned={clean.metrics.tuples_in - clean.metrics.input_guard_drops}  "
            f"clean-guard-drops={clean.metrics.input_guard_drops}  "
            f"agg-guard-drops={aggregate.metrics.input_guard_drops}"
        )
        if feedback:
            print(
                f"    uncongested keys reported by the join: "
                f"{join.uncongested_keys}; feedback events: "
                f"{len(result.feedback_log)}"
            )


if __name__ == "__main__":
    main()
