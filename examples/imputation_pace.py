#!/usr/bin/env python3
"""Experiment 1 end to end, with ASCII renderings of Figures 5 and 6.

Runs the imputation plan (source -> duplicate -> clean / dirty -> IMPUTE
-> PACE -> sink) twice -- without and with feedback -- and draws the
tuple-id-versus-output-time scatter the paper plots.  Without feedback the
imputed branch diverges (Figure 5); with feedback it hugs the clean branch
in the staircase pattern of Figure 6.

Run:  python examples/imputation_pace.py            (full 5000 tuples)
      REPRO_EXP1_TUPLES=2000 python examples/imputation_pace.py
"""

from __future__ import annotations

from repro.experiments import Exp1Config, run_experiment_1
from repro.viz import scatter


def main() -> None:
    results = run_experiment_1(Exp1Config.from_env())

    for name, figure in (
        ("no_feedback", "Figure 5 -- Imputation query plan WITHOUT feedback"),
        ("with_feedback", "Figure 6 -- Imputation query plan WITH feedback"),
    ):
        arm = results[name]
        print("=" * 74)
        print(figure)
        print("=" * 74)
        chart = scatter(
            {
                "clean tuples": [(t, tid) for t, tid in arm.clean_series],
                "imputed tuples": [(t, tid) for t, tid in arm.imputed_series],
            },
            width=70,
            height=18,
            x_label="output time (s)",
            y_label="tuple id",
        )
        print(chart)
        print(arm.summary())
        print()

    no_fb = results["no_feedback"].drop_fraction
    with_fb = results["with_feedback"].drop_fraction
    print(
        f"paper: 97% dropped without feedback vs 29% with;  "
        f"measured: {no_fb:.0%} vs {with_fb:.0%}"
    )


if __name__ == "__main__":
    main()
