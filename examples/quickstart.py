#!/usr/bin/env python3
"""Quickstart: a first query plan with feedback punctuation.

Builds the smallest interesting pipeline on the fluent surface::

    flow.source(...).punctuate(...).where(...).window(avg(...)).collect(...)

runs it on both registered engines ("simulated" and "threaded") and checks
they produce identical window averages, then re-runs it while the client
injects assumed feedback (``¬[window ∈ .., group=1, *]``) declared on the
run call -- and shows how the guard propagates upstream, how much work it
saves, and that the result on the *untouched* subset is identical (paper
Definition 1).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Flow, Schema, StreamTuple, available_engines
from repro.api import avg
from repro.lang import parse_feedback

SCHEMA = Schema([
    ("timestamp", "timestamp", True),
    ("sensor", "int"),
    ("value", "float"),
])

# 600 readings over 60 seconds from 3 sensors.
READINGS = [
    (i * 0.1, StreamTuple(SCHEMA, (i * 0.1, i % 3, float(i % 50))))
    for i in range(600)
]


def build_flow(label: str) -> Flow:
    flow = Flow(label)
    (flow.source(SCHEMA, READINGS)
         .punctuate(on="timestamp", every=10.0)
         .where(lambda t: t["value"] >= 0.0, name="positive",
                tuple_cost=0.002)
         .window(avg("value"), by="sensor", width=10.0, on="timestamp",
                 name="avg_value", tuple_cost=0.005)
         .collect("sink"))
    return flow


def main() -> None:
    flow = build_flow("quickstart")
    print(flow.describe(), "\n")

    # ---- baseline run, on every registered engine --------------------------
    runs = {
        engine: flow.run(engine=engine) for engine in available_engines()
    }
    baseline = runs["simulated"]
    tuples = {
        engine: [t.values for t in run.sink("sink").results]
        for engine, run in runs.items()
    }
    assert all(t == tuples["simulated"] for t in tuples.values())
    print("engines agree:", ", ".join(runs), "->",
          len(tuples["simulated"]), "identical window averages")
    print(f"baseline work: {baseline.total_work:.2f}s (virtual)")

    # ---- run with assumed feedback, declared on the run call ---------------
    out_schema = baseline.sink("sink").output_schema
    # The client decides windows 2..5 of sensor 1 are not interesting.
    feedback = parse_feedback(
        "~[in{2,3,4,5}, 1, *]", schema=out_schema, issuer="client"
    )
    run = flow.run(engine="simulated", feedback=[(5.0, "sink", feedback)])
    sink = run.sink("sink")

    print("\nwith feedback:", len(sink.results), "window averages")
    print(f"with-feedback work: {run.total_work:.2f}s (virtual)")
    print("\nwho did what:")
    for event in run.feedback_log:
        print("  ", event)
    print("\nguard drops:",
          {op.name: op.metrics.input_guard_drops for op in run.plan})
    suppressed = [
        r for r in sink.results
        if r["sensor"] == 1 and 2 <= r["window"] <= 5
    ]
    print("suppressed-region results present:", len(suppressed), "(expect 0)")

    print("\nGraphviz export (flow.to_dot()):")
    print(flow.to_dot())


if __name__ == "__main__":
    main()
