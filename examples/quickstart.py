#!/usr/bin/env python3
"""Quickstart: a first query plan with feedback punctuation.

Builds the smallest interesting pipeline::

    SOURCE -> SELECT -> AVERAGE -> SINK

runs it once without feedback, then re-runs it while the client injects
assumed feedback (``¬[window ∈ .., group=1, *]``) -- and shows how the
guard propagates upstream, how much work it saves, and that the result on
the *untouched* subset is identical (paper Definition 1).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AggregateKind,
    CollectSink,
    ListSource,
    QueryPlan,
    Schema,
    Select,
    Simulator,
    StreamTuple,
    WindowAggregate,
)
from repro.lang import parse_feedback
from repro.punctuation import ProgressPunctuator


def build_plan(label: str):
    schema = Schema([
        ("timestamp", "timestamp", True),
        ("sensor", "int"),
        ("value", "float"),
    ])
    # 600 readings over 60 seconds from 3 sensors, punctuated every 10 s.
    punctuator = ProgressPunctuator(schema, "timestamp", interval=10.0)
    timeline = []
    for i in range(600):
        ts = i * 0.1
        tup = StreamTuple(schema, (ts, i % 3, float(i % 50)))
        timeline.append((ts, tup))
        for punct in punctuator.observe(ts):
            timeline.append((ts, punct))
    timeline.append((60.0, punctuator.final()))

    plan = QueryPlan(label)
    source = ListSource("source", schema, timeline)
    keep = Select(
        "positive", schema, lambda t: t["value"] >= 0.0, tuple_cost=0.002
    )
    average = WindowAggregate(
        "avg_value", schema,
        kind=AggregateKind.AVG,
        window_attribute="timestamp",
        width=10.0,
        value_attribute="value",
        group_by=("sensor",),
        tuple_cost=0.005,
    )
    sink = CollectSink("sink", average.output_schema, tuple_cost=0.0)
    plan.add(source)
    plan.chain(source, keep, average, sink)
    return plan, source, keep, average, sink


def main() -> None:
    # ---- baseline run ------------------------------------------------------
    plan, *_ , sink = build_plan("quickstart-baseline")
    baseline = Simulator(plan).run()
    print("baseline results:", len(sink.results), "window averages")
    print(f"baseline work: {baseline.total_work:.2f}s (virtual)")

    # ---- run with assumed feedback ------------------------------------------
    plan, source, keep, average, sink = build_plan("quickstart-feedback")
    simulator = Simulator(plan)
    # The client decides windows 2..5 of sensor 1 are not interesting.
    feedback = parse_feedback(
        "~[in{2,3,4,5}, 1, *]", schema=average.output_schema, issuer="client"
    )
    simulator.at(5.0, lambda: sink.inject_feedback(feedback))
    run = Simulator.run(simulator)

    print("\nwith feedback:", len(sink.results), "window averages")
    print(f"with-feedback work: {run.total_work:.2f}s (virtual)")
    print("\nwho did what:")
    for event in run.feedback_log:
        print("  ", event)
    print("\nguard drops:",
          {op.name: op.metrics.input_guard_drops for op in plan})
    suppressed = [
        r for r in sink.results
        if r["sensor"] == 1 and 2 <= r["window"] <= 5
    ]
    print("suppressed-region results present:", len(suppressed), "(expect 0)")


if __name__ == "__main__":
    main()
