#!/usr/bin/env python3
"""Example 2 of the paper: window-level avoidance that no filter can do.

"Consider a slide-by-tuple window of range n, and windows w1..wk.  Assume
windows w3 and w4 are not required for the query result.  Placing a filter
at the bottom of the plan to filter out the tuples that belong to w3 and
w4 is incorrect: those tuples can be part of other windows.  All tuples
may still need to be cleaned, but the aggregate can avoid working on the
unnecessary windows."

This example runs a sliding-window SUM (width 10, slide 5 -- every tuple
belongs to two windows) and sends ``¬[window ∈ {3, 4}, *]``:

* the CLEAN stage keeps processing every tuple (no input guard appears
  below the aggregate -- the library refuses to relay, exactly because a
  bottom filter would be incorrect);
* the aggregate skips accumulation into windows 3 and 4 only;
* every other window's sum is bit-identical to the no-feedback run.

One :class:`~repro.api.Flow` serves both arms: flows are re-runnable, and
the feedback is declared on the second ``run()`` call rather than wired
into the plan.

Run:  python examples/sliding_windows.py
"""

from __future__ import annotations

from repro import FeedbackPunctuation, Flow, StreamTuple
from repro.api import aggregates as agg
from repro.punctuation import InSet, Pattern
from repro.stream import Schema

SCHEMA = Schema([("ts", "timestamp", True), ("v", "float")])


def build_flow() -> Flow:
    rows = [
        (i * 0.5, StreamTuple(SCHEMA, (i * 0.5, float(i)))) for i in range(100)
    ]
    flow = Flow("sliding")
    (flow.source(SCHEMA, rows, name="source")
         .where(lambda t: True, name="clean", tuple_cost=0.01)
         .window(agg.sum("v"), on="ts", width=10.0, slide=5.0, name="sum")
         .collect("sink"))
    return flow


def main() -> None:
    flow = build_flow()
    reference = flow.run(engine="simulated")

    fb = FeedbackPunctuation.assumed(
        Pattern.from_mapping(
            reference.sink("sink").output_schema, {"window": InSet({3, 4})}
        )
    )
    run = flow.run(engine="simulated", feedback=[(0.0, "sink", fb)])
    clean = run.plan.operator("clean")
    total = run.plan.operator("sum")

    ref_sums = {r["window"]: r["sum_v"] for r in reference.sink("sink").results}
    exploited = {r["window"]: r["sum_v"] for r in run.sink("sink").results}

    print("window sums (reference vs with ¬[window in {3,4}, *]):")
    for window in sorted(ref_sums):
        mark = ""
        if window in (3, 4):
            mark = "   <- suppressed" if window not in exploited else " !!"
        print(f"  w{window:<2} {ref_sums[window]:>8.1f} "
              f"{exploited.get(window, float('nan')):>8.1f}{mark}")

    untouched = {w: v for w, v in exploited.items() if w not in (3, 4)}
    assert untouched == {w: v for w, v in ref_sums.items() if w not in (3, 4)}
    print("\nall other windows identical:", True)
    print("tuples cleaned (must be all 100):",
          clean.metrics.tuples_in - clean.metrics.input_guard_drops)
    print("aggregate accumulations skipped:", total.windows_skipped)
    print("input guards below the aggregate:",
          clean.input_port(0).guards.active, "(correctly none)")


if __name__ == "__main__":
    main()
