#!/usr/bin/env python3
"""Demanded punctuation and on-demand results: the currency speculator.

Section 3.4's demanded example: a speculator's margin of action is a few
seconds; a best-guess trend *now* beats the exact answer after the window
closes.  The plan aggregates exchange-rate ticks into 10-second average
windows in **poll mode** (results are buffered, not streamed -- paper
Example 4), and the client:

1. ``demand()``s  ``![window=2, pair=1, *]`` mid-window -- the aggregate
   unblocks and emits its current partial average immediately;
2. ``poll()``s at the end -- buffered exact results flow out.

Run:  python examples/on_demand_finance.py
"""

from __future__ import annotations

from repro import (
    AggregateKind,
    OnDemandSink,
    PunctuatedSource,
    QueryPlan,
    Simulator,
    WindowAggregate,
)
from repro.punctuation import Pattern
from repro.workloads import FinanceWorkload, TICK_SCHEMA


def main() -> None:
    workload = FinanceWorkload(pairs=4, ticks_per_second=20.0, horizon=60.0)
    plan = QueryPlan("speculator")
    source = PunctuatedSource(
        "ticks", TICK_SCHEMA, workload.timeline(),
        punctuate_on="timestamp", punctuation_interval=10.0,
    )
    trend = WindowAggregate(
        "trend", TICK_SCHEMA,
        kind=AggregateKind.AVG,
        window_attribute="timestamp",
        width=10.0,
        value_attribute="rate",
        group_by=("pair_id",),
        value_name="avg_rate",
        emit_on_close=False,      # poll mode: buffer exact results
    )
    sink = OnDemandSink("client", trend.output_schema)
    plan.add(source)
    plan.chain(source, trend, sink)

    simulator = Simulator(plan)
    demand_pattern = Pattern.from_mapping(
        trend.output_schema, {"window": 2, "pair_id": 1}
    )
    # t=25s: window 2 spans [20, 30) -- it is still open.  Demand it.
    simulator.at(25.0, lambda: sink.demand(demand_pattern))
    # t=61s: the trading day is over; collect everything that is buffered.
    simulator.at(61.0, lambda: sink.poll())
    result = simulator.run()

    partials = [
        (t, r) for t, r in sink.arrivals
        if r["window"] == 2 and r["pair_id"] == 1
    ]
    print(f"total results delivered: {len(sink.results)}")
    print(f"feedback log:")
    for event in result.feedback_log:
        print("   ", event)
    print(f"\nwindow 2 / pair 1 deliveries (demanded at t=25):")
    for t, r in partials:
        kind = "partial (before window close!)" if t < 30.0 else "exact"
        print(f"    t={t:6.2f}s  avg_rate={r['avg_rate']:.6f}  [{kind}]")
    assert partials and partials[0][0] < 30.0, "demand should beat the close"
    print("\nthe speculator got a best-guess estimate inside the margin "
          "of action; the exact result followed at window close.")


if __name__ == "__main__":
    main()
