#!/usr/bin/env python3
"""Demanded punctuation and on-demand results: the currency speculator.

Section 3.4's demanded example: a speculator's margin of action is a few
seconds; a best-guess trend *now* beats the exact answer after the window
closes.  The plan aggregates exchange-rate ticks into 10-second average
windows in **poll mode** (results are buffered, not streamed -- paper
Example 4), and the client behaviour is *declared* on the run call:

1. at t=25 s it ``demand()``s  ``![window=2, pair=1, *]`` mid-window --
   the aggregate unblocks and emits its current partial average
   immediately;
2. at t=61 s it ``poll()``s -- buffered exact results flow out.

Run:  python examples/on_demand_finance.py
"""

from __future__ import annotations

from repro import Flow
from repro.api import avg
from repro.punctuation import Pattern
from repro.workloads import FinanceWorkload, TICK_SCHEMA


def main() -> None:
    workload = FinanceWorkload(pairs=4, ticks_per_second=20.0, horizon=60.0)
    flow = Flow("speculator")
    trend = (
        flow.source(TICK_SCHEMA, workload.timeline(), name="ticks")
            .punctuate(on="timestamp", every=10.0)
            .window(avg("rate"), on="timestamp", width=10.0, by="pair_id",
                    name="trend", value_name="avg_rate",
                    emit_on_close=False)      # poll mode: buffer exact results
    )
    trend.on_demand("client")

    demand_pattern = Pattern.from_mapping(
        trend.schema, {"window": 2, "pair_id": 1}
    )
    result = flow.run(
        engine="simulated",
        actions=[
            # t=25s: window 2 spans [20, 30) -- still open.  Demand it.
            (25.0, lambda plan: plan.operator("client").demand(demand_pattern)),
            # t=61s: the trading day is over; collect what is buffered.
            (61.0, lambda plan: plan.operator("client").poll()),
        ],
    )
    sink = result.plan.operator("client")

    partials = [
        (t, r) for t, r in sink.arrivals
        if r["window"] == 2 and r["pair_id"] == 1
    ]
    print(f"total results delivered: {len(sink.results)}")
    print("feedback log:")
    for event in result.feedback_log:
        print("   ", event)
    print("\nwindow 2 / pair 1 deliveries (demanded at t=25):")
    for t, r in partials:
        kind = "partial (before window close!)" if t < 30.0 else "exact"
        print(f"    t={t:6.2f}s  avg_rate={r['avg_rate']:.6f}  [{kind}]")
    assert partials and partials[0][0] < 30.0, "demand should beat the close"
    print("\nthe speculator got a best-guess estimate inside the margin "
          "of action; the exact result followed at window close.")


if __name__ == "__main__":
    main()
