"""Async ingestion on the asyncio engine: many slow feeds, one loop.

Three "network" feeds (async generators pausing between elements, the
shape of a websocket or HTTP stream) are unioned, windowed, and served
through an awaitable sink -- all on a single event loop with one
coroutine per operator (``docs/engines.md``).  The run demonstrates:

* ``Flow.from_async_iterable``: async-native sources, awaited natively
  by ``engine="asyncio"`` (and bridged on the other engines -- the same
  flow runs on the deterministic simulator for testing);
* concurrency without threads: the three feeds' delays overlap, so the
  makespan tracks one feed, not the sum of all three;
* ``collect_awaitable`` + ``AsyncioEngine.arun()``: a client coroutine
  awaits the sink's results on the same loop the engine runs on.

Run: ``PYTHONPATH=src python examples/async_ingest.py``
"""

from __future__ import annotations

import asyncio
import time

from repro import Flow, Schema, StreamTuple, create_engine
from repro.api import avg

SCHEMA = Schema([("ts", "timestamp", True), ("feed", "int"), ("v", "float")])

N_PER_FEED = 25
DELAY = 0.004  # per-element "network" latency inside each feed


def feed(feed_id: int):
    async def events():
        for i in range(N_PER_FEED):
            await asyncio.sleep(DELAY)  # the remote endpoint is slow
            yield float(i), StreamTuple(
                SCHEMA, (float(i), feed_id, float(i * (feed_id + 1)))
            )

    return events


def build() -> Flow:
    flow = Flow("async-ingest")
    feeds = [
        flow.from_async_iterable(SCHEMA, feed(n), name=f"feed_{n}")
        for n in range(3)
    ]
    merged = feeds[0].union(*feeds[1:], name="merged")
    (merged.window(avg("v"), by="feed", on="ts", width=10.0, name="avg10")
           .collect_awaitable("out"))
    return flow


def main() -> None:
    # 1) The one-liner: a synchronous run that owns its own loop.
    start = time.perf_counter()
    result = build().run(engine="asyncio")
    wall = time.perf_counter() - start
    rows = result.sink("out").results
    serial = 3 * N_PER_FEED * DELAY
    print(f"sync run: {len(rows)} window averages from 3 feeds "
          f"in {wall:.3f}s (serial replay would need ~{serial:.3f}s)")
    assert len(rows) == 9  # 3 windows x 3 feeds
    assert wall < serial, "feeds should overlap on one loop"

    # 2) Async client code: await the sink alongside the running engine.
    async def client():
        plan = build().build()
        engine = create_engine("asyncio", plan)
        run = asyncio.ensure_future(engine.arun())
        rows = await plan.operator("out")  # AwaitableSink resolves at EOS
        await run
        return rows

    rows = asyncio.run(client())
    print(f"awaited sink: {len(rows)} rows, e.g. "
          f"{[tuple(t.values) for t in rows[:3]]}")

    # 3) The same flow is testable on the deterministic engine.
    simulated = build().run(engine="simulated")
    assert (
        sorted(tuple(t.values) for t in simulated.sink("out").results)
        == sorted(tuple(t.values) for t in rows)
    )
    print("simulated run produced the identical multiset -- ok")


if __name__ == "__main__":
    main()
