#!/usr/bin/env python3
"""Desired punctuation: IMPATIENT JOIN prioritising a slow sensor feed.

Section 3.4's scenario: sparse, expensive probe-vehicle data joins dense
fixed-sensor data.  The IMPATIENT JOIN is "eager to produce results": as
soon as it holds vehicle data for (period 7, segment 3) it sends
``?[7, 3, *]`` to the sensor branch.  A :class:`PriorityBuffer` sits in
that branch (think of it as the reordering stage of a loaded pipeline);
desired feedback makes matching sensor tuples overtake the backlog, so
joined results for the requested keys appear earlier -- the *content* of
the result never changes, only its timing (the defining property of
desired feedback).

Built on the fluent surface: the two branches meet at the custom join via
``flow.merge``, and the FIFO arm reuses the same flow shape with a
``configure=`` knob switching the buffer's feedback awareness off.

Run:  python examples/priorities.py
"""

from __future__ import annotations

from repro import Flow, ImpatientJoin, Schema, StreamTuple

SENSOR_SCHEMA = Schema([
    ("period", "int", True), ("segment", "int"), ("reading", "float"),
])
VEHICLE_SCHEMA = Schema([
    ("period", "int", True), ("segment", "int"), ("speed", "float"),
])


def build(prioritised: bool) -> Flow:
    # Dense sensor feed: every (period, segment) pair for 40 periods.
    sensor_timeline = []
    for period in range(40):
        for segment in range(6):
            tup = StreamTuple(
                SENSOR_SCHEMA, (period, segment, 50.0 + segment)
            )
            sensor_timeline.append((period * 0.1, tup))
    # Sparse vehicle feed: a handful of late, high-value observations.
    vehicle_timeline = [
        (0.05, StreamTuple(VEHICLE_SCHEMA, (7, 3, 22.0))),
        (0.06, StreamTuple(VEHICLE_SCHEMA, (9, 1, 31.0))),
        (0.07, StreamTuple(VEHICLE_SCHEMA, (20, 5, 18.0))),
    ]

    flow = Flow(
        "impatient" + ("-prio" if prioritised else ""), page_size=1
    )
    vehicles = flow.source(VEHICLE_SCHEMA, vehicle_timeline, name="vehicles")
    buffered = flow.source(
        SENSOR_SCHEMA, sensor_timeline, name="sensors"
    ).buffer(
        capacity=120, name="sensor_buffer", tuple_cost=0.01,
        # The FIFO arm ignores the join's desires.
        configure=None if prioritised else (
            lambda op: setattr(op, "feedback_aware", False)
        ),
    )
    flow.merge(
        lambda: ImpatientJoin(
            "impatient_join",
            VEHICLE_SCHEMA,
            SENSOR_SCHEMA,
            on=[("period", "period"), ("segment", "segment")],
            eager_input=0,
        ),
        vehicles, buffered,
    ).collect("out")
    return flow


def main() -> None:
    for prioritised in (False, True):
        result = build(prioritised).run(engine="simulated")
        join = result.plan.operator("impatient_join")
        buffer = result.plan.operator("sensor_buffer")
        sink = result.plan.operator("out")
        label = "with ?-feedback " if prioritised else "FIFO (no desire)"
        first_times = {
            (r["period"], r["segment"]): t for t, r in reversed(sink.arrivals)
        }
        print(f"{label}: {len(sink.results)} joined rows; "
              f"desired sent={join.desired_sent}, "
              f"priority releases={buffer.priority_releases}")
        for key in [(7, 3), (9, 1), (20, 5)]:
            when = first_times.get(key)
            rendered = f"{when:.2f}s" if when is not None else "never"
            print(f"    result for period={key[0]} segment={key[1]}: "
                  f"{rendered}")


if __name__ == "__main__":
    main()
