#!/usr/bin/env python3
"""Desired punctuation: IMPATIENT JOIN prioritising a slow sensor feed.

Section 3.4's scenario: sparse, expensive probe-vehicle data joins dense
fixed-sensor data.  The IMPATIENT JOIN is "eager to produce results": as
soon as it holds vehicle data for (period 7, segment 3) it sends
``?[7, 3, *]`` to the sensor branch.  A :class:`PriorityBuffer` sits in
that branch (think of it as the reordering stage of a loaded pipeline);
desired feedback makes matching sensor tuples overtake the backlog, so
joined results for the requested keys appear earlier -- the *content* of
the result never changes, only its timing (the defining property of
desired feedback).

Run:  python examples/priorities.py
"""

from __future__ import annotations

from repro import (
    CollectSink,
    ImpatientJoin,
    ListSource,
    PriorityBuffer,
    QueryPlan,
    Schema,
    Simulator,
    StreamTuple,
)


def build(prioritised: bool):
    sensor_schema = Schema([
        ("period", "int", True), ("segment", "int"), ("reading", "float"),
    ])
    vehicle_schema = Schema([
        ("period", "int", True), ("segment", "int"), ("speed", "float"),
    ])

    # Dense sensor feed: every (period, segment) pair for 40 periods.
    sensor_timeline = []
    for period in range(40):
        for segment in range(6):
            tup = StreamTuple(
                sensor_schema, (period, segment, 50.0 + segment)
            )
            sensor_timeline.append((period * 0.1, tup))
    # Sparse vehicle feed: a handful of late, high-value observations.
    vehicle_timeline = [
        (0.05, StreamTuple(vehicle_schema, (7, 3, 22.0))),
        (0.06, StreamTuple(vehicle_schema, (9, 1, 31.0))),
        (0.07, StreamTuple(vehicle_schema, (20, 5, 18.0))),
    ]

    plan = QueryPlan("impatient" + ("-prio" if prioritised else ""))
    sensors = ListSource("sensors", sensor_schema, sensor_timeline)
    vehicles = ListSource("vehicles", vehicle_schema, vehicle_timeline)
    buffer = PriorityBuffer(
        "sensor_buffer", sensor_schema, capacity=120, tuple_cost=0.01
    )
    join = ImpatientJoin(
        "impatient_join",
        vehicle_schema,
        sensor_schema,
        on=[("period", "period"), ("segment", "segment")],
        eager_input=0,
    )
    if not prioritised:
        buffer.feedback_aware = False  # ignore the join's desires
    sink = CollectSink("out", join.output_schema)
    for op in (sensors, vehicles, buffer, join, sink):
        plan.add(op)
    plan.connect(sensors, buffer, page_size=1)
    plan.connect(buffer, join, port=1, page_size=1)
    plan.connect(vehicles, join, port=0, page_size=1)
    plan.connect(join, sink, page_size=1)
    return plan, join, buffer, sink


def main() -> None:
    for prioritised in (False, True):
        plan, join, buffer, sink = build(prioritised)
        Simulator(plan).run()
        label = "with ?-feedback " if prioritised else "FIFO (no desire)"
        first_times = {
            (r["period"], r["segment"]): t for t, r in reversed(sink.arrivals)
        }
        print(f"{label}: {len(sink.results)} joined rows; "
              f"desired sent={join.desired_sent}, "
              f"priority releases={buffer.priority_releases}")
        for key in [(7, 3), (9, 1), (20, 5)]:
            when = first_times.get(key)
            rendered = f"{when:.2f}s" if when is not None else "never"
            print(f"    result for period={key[0]} segment={key[1]}: {rendered}")


if __name__ == "__main__":
    main()
