#!/usr/bin/env python3
"""Docs checker: every fenced python snippet must run, every link resolve.

The docs job in CI runs this over ``docs/*.md`` and ``README.md``:

* every fenced ```` ```python ```` block is executed (doctest-style) in a
  fresh namespace with ``src/`` importable; a raised exception fails the
  build with the file, block index and traceback.  Blocks tagged
  ```` ```python no-run ```` are skipped (none today);
* every relative markdown link ``[text](path)`` must point at an existing
  file (anchors and absolute URLs are ignored), and every wiki-style
  ``[[name]]`` cross-reference must resolve to ``docs/name.md``.

Usage: ``python tools/check_docs.py [files...]`` (defaults to README.md
and docs/*.md from the repo root).
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

FENCE = re.compile(
    r"^```(?P<info>[^\n]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
# [text](target) -- but not images ![...](...) nor in-page anchors.
MD_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
WIKI_LINK = re.compile(r"\[\[([A-Za-z0-9._/-]+)\]\]")


def default_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def snippets(text: str) -> list[tuple[int, str]]:
    """(1-based line, source) for each runnable python fence."""
    found = []
    for match in FENCE.finditer(text):
        info = match.group("info").strip().lower()
        if not info.startswith("python"):
            continue
        if "no-run" in info:
            continue
        line = text.count("\n", 0, match.start("body")) + 1
        found.append((line, match.group("body")))
    return found


def run_snippet(source: str, label: str) -> str | None:
    """Execute one snippet in a fresh namespace; return an error or None."""
    namespace: dict = {"__name__": "__docs__", "__file__": label}
    try:
        code = compile(source, label, "exec")
        exec(code, namespace)  # noqa: S102 - that is the whole point
    except BaseException:
        return traceback.format_exc()
    return None


def check_links(path: Path, text: str) -> list[str]:
    errors = []
    base = path.parent
    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        resolved = (base / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.name}: broken link -> {target}")
    for name in WIKI_LINK.findall(text):
        # [[name]] resolves within docs/ (the memory-style cross-ref).
        candidate = REPO / "docs" / f"{name}.md"
        if not candidate.exists():
            errors.append(f"{path.name}: broken [[{name}]] cross-reference")
    return errors


def main(argv: list[str]) -> int:
    sys.path.insert(0, str(REPO / "src"))
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    failures: list[str] = []
    ran = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        failures.extend(check_links(path, text))
        for line, source in snippets(text):
            label = f"{path.relative_to(REPO)}:{line}"
            error = run_snippet(source, label)
            ran += 1
            if error is None:
                print(f"ok   {label}")
            else:
                print(f"FAIL {label}\n{error}")
                failures.append(f"{label}: snippet raised")
    print(f"\n{ran} snippet(s) across {len(files)} file(s); "
          f"{len(failures)} failure(s)")
    for failure in failures:
        print(" -", failure)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
