#!/usr/bin/env python3
"""Docs checker: every fenced python snippet must run, every link resolve.

The docs job in CI runs this over ``docs/*.md`` and ``README.md``:

* every fenced ```` ```python ```` block is executed (doctest-style) in a
  fresh namespace with ``src/`` importable.  A raised exception is
  reported with the file, 1-based snippet line and traceback -- and the
  checker keeps going, so one broken snippet never hides the others: the
  summary lists *every* failing ``file:line`` across all files.  Blocks
  tagged ```` ```python no-run ```` are skipped (none today);
* every relative markdown link ``[text](path)`` must point at an existing
  file (absolute URLs are ignored), and every wiki-style ``[[name]]``
  cross-reference must resolve to ``docs/name.md``;
* anchors are checked too: an in-page link ``[text](#section)`` must
  match a heading in the same file, and a cross-file link
  ``[text](other.md#section)`` must match a heading in the target file
  (GitHub-style slugs: lowercased, punctuation stripped, spaces to
  hyphens, ``-N`` suffixes for duplicates).

Usage: ``python tools/check_docs.py [files...]`` (defaults to README.md
and docs/*.md from the repo root).
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

FENCE = re.compile(
    r"^```(?P<info>[^\n]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
# [text](target) -- but not images ![...](...).
MD_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
WIKI_LINK = re.compile(r"\[\[([A-Za-z0-9._/-]+)\]\]")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)


def default_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def snippets(text: str) -> list[tuple[int, str]]:
    """(1-based line, source) for each runnable python fence."""
    found = []
    for match in FENCE.finditer(text):
        info = match.group("info").strip().lower()
        if not info.startswith("python"):
            continue
        if "no-run" in info:
            continue
        line = text.count("\n", 0, match.start("body")) + 1
        found.append((line, match.group("body")))
    return found


def run_snippet(source: str, label: str) -> str | None:
    """Execute one snippet in a fresh namespace; return an error or None.

    The namespace is fresh per snippet, so a failure cannot poison the
    snippets after it -- every block stands (or falls) on its own.
    """
    namespace: dict = {"__name__": "__docs__", "__file__": label}
    try:
        code = compile(source, label, "exec")
        exec(code, namespace)  # noqa: S102 - that is the whole point
    except BaseException:
        return traceback.format_exc()
    return None


def github_slug(title: str) -> str:
    """A heading's anchor slug, GitHub-style (before -N dedup suffixes)."""
    slug = title.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)          # inline markup markers
    slug = re.sub(r"[^\w\- ]", "", slug)       # punctuation
    return slug.replace(" ", "-")


def anchors_of(text: str) -> set[str]:
    """Every anchor the file's headings define (with duplicate suffixes)."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    # Callers pass fence-stripped text: '# comment' in ``` is no heading.
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def strip_fences(text: str) -> str:
    """Remove fenced code blocks (their contents are not headings/links)."""
    return FENCE.sub("", text)


#: Per-file anchor sets, so N links into one target parse it once.
_anchor_cache: dict[Path, set[str]] = {}


def anchors_of_file(path: Path) -> set[str]:
    try:
        return _anchor_cache[path]
    except KeyError:
        anchors = anchors_of(
            strip_fences(path.read_text(encoding="utf-8"))
        )
        _anchor_cache[path] = anchors
        return anchors


def check_links(path: Path, text: str) -> list[str]:
    errors = []
    base = path.parent
    prose = strip_fences(text)
    own_anchors = anchors_of(prose)
    for target in MD_LINK.findall(prose):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            # In-page anchor: must match one of this file's headings.
            if target[1:] not in own_anchors:
                errors.append(
                    f"{path.name}: broken anchor -> {target} "
                    f"(no such heading)"
                )
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (base / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path.name}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of_file(resolved):
                errors.append(
                    f"{path.name}: broken anchor -> {target} "
                    f"(no such heading in {resolved.name})"
                )
    for name in WIKI_LINK.findall(prose):
        # [[name]] resolves within docs/ (the memory-style cross-ref).
        candidate = REPO / "docs" / f"{name}.md"
        if not candidate.exists():
            errors.append(f"{path.name}: broken [[{name}]] cross-reference")
    return errors


def main(argv: list[str]) -> int:
    sys.path.insert(0, str(REPO / "src"))
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    failures: list[str] = []
    ran = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        failures.extend(check_links(path, text))
        try:
            short = path.relative_to(REPO)
        except ValueError:  # explicit files outside the repo root
            short = path
        for line, source in snippets(text):
            label = f"{short}:{line}"
            error = run_snippet(source, label)
            ran += 1
            if error is None:
                print(f"ok   {label}")
            else:
                # Keep going: every failing snippet in every file is
                # executed and lands in the summary below.
                print(f"FAIL {label}\n{error}")
                failures.append(f"{label}: snippet raised")
    print(f"\n{ran} snippet(s) across {len(files)} file(s); "
          f"{len(failures)} failure(s)")
    for failure in failures:
        print(" -", failure)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
