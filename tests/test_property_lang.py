"""Property-based round-trip tests for the punctuation mini-language."""

from hypothesis import given, strategies as st

from repro.core import FeedbackIntent, FeedbackPunctuation
from repro.lang import (
    format_feedback,
    format_pattern,
    parse_feedback,
    parse_pattern,
)
from repro.punctuation import (
    AtLeast,
    AtMost,
    Equals,
    GreaterThan,
    InSet,
    LessThan,
    Pattern,
    WILDCARD,
)

scalar_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=1, max_size=8,
    ),
)


@st.composite
def printable_atoms(draw):
    kind = draw(st.sampled_from(["wild", "eq", "lt", "le", "gt", "ge", "in"]))
    if kind == "wild":
        return WILDCARD
    if kind == "in":
        return InSet(draw(st.sets(scalar_values, min_size=1, max_size=3)))
    value = draw(scalar_values)
    return {"eq": Equals, "lt": LessThan, "le": AtMost,
            "gt": GreaterThan, "ge": AtLeast}[kind](value)


@st.composite
def printable_patterns(draw):
    arity = draw(st.integers(min_value=1, max_value=5))
    return Pattern([draw(printable_atoms()) for _ in range(arity)])


class TestLangRoundTrips:
    @given(printable_patterns())
    def test_pattern_round_trip(self, pattern):
        assert parse_pattern(format_pattern(pattern)) == pattern

    @given(printable_patterns(),
           st.sampled_from(list(FeedbackIntent)))
    def test_feedback_round_trip(self, pattern, intent):
        if intent is FeedbackIntent.ASSUMED and pattern.is_all_wildcard:
            return  # all-wildcard assumed feedback is rejected by design
        feedback = FeedbackPunctuation(intent, pattern)
        again = parse_feedback(format_feedback(feedback))
        assert again == feedback

    @given(printable_patterns())
    def test_formatted_pattern_matches_same_points(self, pattern):
        """Semantic round trip: the reparsed pattern matches identically."""
        reparsed = parse_pattern(format_pattern(pattern))
        probe_values = [-1000, -1, 0, 1, 7, 999, "a", "zz"]
        for value in probe_values:
            point = tuple([value] * pattern.arity)
            assert pattern.matches(point) == reparsed.matches(point)
