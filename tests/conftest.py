"""Shared fixtures: canonical schemas and tuple builders from the paper."""

from __future__ import annotations

import pytest

from repro.stream import Attribute, Schema, StreamTuple


@pytest.fixture
def ts_value_schema() -> Schema:
    """The paper's running example schema: (timestamp, datavalue)."""
    return Schema([
        Attribute("timestamp", "timestamp", progressing=True),
        Attribute("datavalue", "float"),
    ])


@pytest.fixture
def detector_schema() -> Schema:
    """detector(id, freeway_id, milepost, timestamp, speed) from section 3.5."""
    return Schema([
        Attribute("id", "int"),
        Attribute("freeway_id", "int"),
        Attribute("milepost", "int"),
        Attribute("timestamp", "timestamp", progressing=True),
        Attribute("speed", "float"),
    ])


@pytest.fixture
def probe_schema() -> Schema:
    """probe(id, freeway_id, milepost, timestamp, speed) from section 3.5."""
    return Schema([
        Attribute("id", "int"),
        Attribute("freeway_id", "int"),
        Attribute("milepost", "int"),
        Attribute("timestamp", "timestamp", progressing=True),
        Attribute("speed", "float"),
    ])


@pytest.fixture
def stream_a_schema() -> Schema:
    """A(a, t, id) from the safe-propagation example in section 4.2."""
    return Schema.of("a", "t", "id")


@pytest.fixture
def stream_b_schema() -> Schema:
    """B(t, id, b) from the safe-propagation example in section 4.2."""
    return Schema.of("t", "id", "b")


def make_tuples(schema: Schema, rows: list[tuple]) -> list[StreamTuple]:
    """Build a list of tuples over ``schema`` from plain value rows."""
    return [StreamTuple(schema, row) for row in rows]
