"""Backpressure: bounded queues with runtime pause/resume flow control.

The first *runtime-generated* use of the paper's feedback channel: when a
bounded :class:`~repro.stream.queues.DataQueue` crosses its high-water
mark, the consumer's runtime sends a pause
:class:`~repro.core.feedback.FlowControlPunctuation` upstream on the
ordinary control channel; when the queue drains to its low-water mark it
sends resume.  These tests cover

* the queue's occupancy/watermark accounting,
* bounded peak occupancy under a fast producer / slow consumer,
* engine parity (identical sink output on ``simulated`` and ``threaded``),
* the finish-while-paused termination regression,
* transitive pressure through intermediate operators,
* the forward-unknown-control bugfix (no silent drops), and
* ``PriorityBuffer``'s absorb-while-held behaviour.
"""

import pytest

from repro.api import Flow
from repro.core import FlowControlKind, FlowControlPunctuation
from repro.engine import QueryPlan, Simulator, ThreadedRuntime, fork_available
from repro.engine.harness import OperatorHarness
from repro.errors import EngineError
from repro.operators import (
    CollectSink,
    GeneratorSource,
    ListSource,
    PassThrough,
)
from repro.operators.buffer import PriorityBuffer
from repro.stream import Schema, StreamTuple
from repro.stream.control import ControlMessage, ControlMessageKind, Direction
from repro.stream.queues import DataQueue

SCHEMA = Schema([("ts", "timestamp", True), ("v", "float")])


def tuples(n):
    return [StreamTuple(SCHEMA, (float(i), float(i))) for i in range(n)]


def timeline(n, spacing=0.0):
    return [(i * spacing, tup) for i, tup in enumerate(tuples(n))]


def linear_flow(n=500, *, page_size=8, sink_cost=0.0, collect_cost=0.0):
    flow = Flow("bp", page_size=page_size)
    (flow.source(SCHEMA, timeline(n))
         .where(lambda t: True, name="keep", tuple_cost=sink_cost)
         .collect("sink", tuple_cost=collect_cost))
    return flow


# ---------------------------------------------------------------- queue unit


class TestQueueWatermarks:
    def test_unbounded_by_default(self):
        queue = DataQueue("q")
        assert queue.capacity is None
        assert not queue.bounded
        assert not queue.above_high_water
        for tup in tuples(100):
            queue.put(tup)
        assert not queue.above_high_water  # never, when unbounded

    def test_occupancy_tracks_put_and_get(self):
        queue = DataQueue("q", page_size=4, capacity=8)
        for tup in tuples(6):
            queue.put(tup)
        assert queue.occupancy == 6
        assert queue.pending_elements() == 6
        page = queue.get_page()
        assert len(page) == 4
        assert queue.occupancy == 2
        assert queue.peak_occupancy == 6

    def test_put_many_and_flush_accounting(self):
        queue = DataQueue("q", page_size=4, capacity=16)
        queue.put_many(tuples(10))
        assert queue.occupancy == 10
        queue.flush()
        assert queue.occupancy == 10  # flush moves, never drops
        drained = list(queue.drain_elements())
        assert len(drained) == 10
        assert queue.occupancy == 0
        assert queue.peak_occupancy == 10

    def test_watermark_flags(self):
        queue = DataQueue("q", page_size=2, capacity=4, low_water=1)
        for tup in tuples(4):
            queue.put(tup)
        assert queue.above_high_water
        assert not queue.below_low_water
        while queue.occupancy > 1:
            queue.get_page()
        assert queue.below_low_water

    def test_default_low_water_is_half_capacity(self):
        queue = DataQueue("q", capacity=10)
        assert queue.low_water == 5

    def test_validation(self):
        with pytest.raises(EngineError):
            DataQueue("q", capacity=0)
        with pytest.raises(EngineError):
            DataQueue("q", low_water=3)  # low_water without capacity
        with pytest.raises(EngineError):
            DataQueue("q", capacity=4, low_water=4)

    def test_plan_connect_passes_capacity(self):
        plan = QueryPlan("p")
        src = ListSource("src", SCHEMA, timeline(1))
        sink = CollectSink("sink", SCHEMA)
        edge = plan.connect(src, sink, capacity=32, low_water=8)
        assert edge.queue.capacity == 32
        assert edge.queue.low_water == 8


# -------------------------------------------------------- punctuation object


class TestFlowControlPunctuation:
    def test_constructors_and_predicates(self):
        pause = FlowControlPunctuation.pause("a->b[0]", occupancy=64)
        resume = FlowControlPunctuation.resume("a->b[0]", occupancy=3)
        assert pause.is_pause and not pause.is_resume
        assert resume.is_resume and not resume.is_pause
        assert pause.kind is FlowControlKind.PAUSE
        assert pause.edge == "a->b[0]"
        assert pause.occupancy == 64
        assert not pause.is_punctuation  # never embedded in data pages
        assert "a->b[0]" in repr(pause)

    def test_immutable(self):
        pause = FlowControlPunctuation.pause("e")
        with pytest.raises(AttributeError):
            pause.edge = "other"


# ----------------------------------------------------------- bounded runs


class TestBoundedOccupancy:
    def test_simulator_peak_bounded_by_high_water(self):
        capacity = 32
        bounded = linear_flow(sink_cost=0.002).run(
            "simulated", queue_capacity=capacity
        )
        unbounded = linear_flow(sink_cost=0.002).run("simulated")
        head = "source->keep[0]"
        assert unbounded.metrics.queue_metrics[head].peak_occupancy == 500
        assert bounded.metrics.queue_metrics[head].peak_occupancy <= capacity
        assert len(bounded.sink("sink").results) == 500

    def test_pause_resume_counts_match_and_time_paused(self):
        result = linear_flow(sink_cost=0.002).run(
            "simulated", queue_capacity=32
        )
        source = result.metrics.operator_metrics["source"]
        keep = result.metrics.operator_metrics["keep"]
        assert source.pauses_received > 0
        # The final pause may be resolved by end-of-stream instead of a
        # resume (a source may finish while paused), so the counts match
        # exactly or differ by one.
        assert source.resumes_received in (
            source.pauses_received, source.pauses_received - 1
        )
        assert source.time_paused > 0.0
        assert keep.pauses_issued > 0
        assert keep.resumes_issued in (
            keep.pauses_issued, keep.pauses_issued - 1
        )

    def test_throughput_unchanged_by_backpressure(self):
        """Pausing the source must not slow the (binding) consumer."""
        bounded = linear_flow(sink_cost=0.002).run(
            "simulated", queue_capacity=32
        )
        unbounded = linear_flow(sink_cost=0.002).run("simulated")
        assert bounded.makespan == pytest.approx(
            unbounded.makespan, rel=0.10
        )

    def test_default_run_has_no_flow_control(self):
        result = linear_flow(sink_cost=0.002).run("simulated")
        for metrics in result.metrics.operator_metrics.values():
            assert metrics.pauses_issued == 0
            assert metrics.pauses_received == 0
            assert metrics.time_paused == 0.0

    def test_transitive_pressure_reaches_the_source(self):
        flow = Flow("chain", page_size=8)
        (flow.source(SCHEMA, timeline(400))
             .where(lambda t: True, name="w1")
             .where(lambda t: True, name="w2", tuple_cost=0.002)
             .collect("sink"))
        result = flow.run("simulated", queue_capacity=32)
        peaks = {
            name: q.peak_occupancy
            for name, q in result.metrics.queue_metrics.items()
        }
        assert peaks["source->w1[0]"] <= 32
        assert peaks["w1->w2[0]"] <= 32
        assert result.metrics.operator_metrics["source"].pauses_received > 0
        assert result.metrics.operator_metrics["w1"].pauses_received > 0
        assert len(result.sink("sink").results) == 400

    def test_per_verb_capacity_overrides_run_default(self):
        flow = Flow("mixed", page_size=8)
        (flow.source(SCHEMA, timeline(300))
             .where(lambda t: True, name="w1", queue_capacity=16)
             .where(lambda t: True, name="w2", tuple_cost=0.002)
             .collect("sink"))
        result = flow.run("simulated", queue_capacity=64)
        queues = result.metrics.queue_metrics
        assert queues["source->w1[0]"].capacity == 16  # per-verb wins
        assert queues["w1->w2[0]"].capacity == 64     # run default
        assert queues["source->w1[0]"].peak_occupancy <= 16

    def test_plan_metrics_helper(self):
        result = linear_flow(sink_cost=0.002).run(
            "simulated", queue_capacity=32
        )
        assert result.metrics.peak_queue_occupancy() <= 32


# ----------------------------------------------------------- engine parity


class TestEngineParity:
    def test_pause_resume_identical_sink_output(self):
        """Backpressure changes timing, never content or order."""
        runs = {}
        for engine, paused_op, options in (
            ("simulated", "source", {"queue_capacity": 16}),
            ("threaded", "source",
             {"queue_capacity": 16, "timeout": 30.0}),
            # The asyncio leg emulates the consumer's cost: cooperative
            # scheduling alone drains too evenly to cross the high-water
            # mark, but a modeled-slow consumer must trigger real pauses.
            ("asyncio", "source",
             {"queue_capacity": 16, "timeout": 30.0,
              "emulate_costs": True}),
            # The multiprocess leg exercises pause/resume *across the
            # process boundary*: the slow sink sits alone in its worker,
            # its bounded inbox trips, and the pause rides a control frame
            # back to ``keep``'s worker.  (A cost-free *source* can drain
            # before a cross-process pause lands -- the shipping queue is
            # unbounded by design -- so the asserted target is the paced
            # cross-edge producer, which is provably still running.)
            *([("multiprocess", "keep",
                {"queue_capacity": 16, "timeout": 60.0,
                 "groups": [["source", "keep"], ["sink"]]})]
              if fork_available() else []),
        ):
            if engine == "multiprocess":
                # Paced producer, slower remote consumer: the sink's
                # bounded inbox must fill while ``keep`` is still running.
                flow = linear_flow(
                    200, page_size=4, sink_cost=0.001, collect_cost=0.002
                )
            else:
                flow = linear_flow(200, page_size=4, sink_cost=0.002)
            result = flow.run(engine, **options)
            paused = result.metrics.operator_metrics[paused_op]
            assert paused.pauses_received > 0, f"{engine}: no pause fired"
            runs[engine] = [
                tuple(t.values) for t in result.sink("sink").results
            ]
        reference = runs.pop("simulated")
        for engine, rows in runs.items():
            assert rows == reference, f"{engine}: diverged from simulated"

    @pytest.mark.parametrize("engine,options", [
        ("threaded", {"timeout": 30.0}),
        ("asyncio", {"timeout": 30.0}),
        pytest.param(
            "multiprocess", {"timeout": 60.0},
            marks=pytest.mark.skipif(
                not fork_available(),
                reason="fork start method unavailable",
            ),
        ),
    ])
    def test_bounded_matches_unbounded_content(self, engine, options):
        flow = linear_flow(200, page_size=4)
        bounded = flow.run(engine, queue_capacity=16, **options)
        unbounded = linear_flow(200, page_size=4).run(engine, **options)
        assert (
            [tuple(t.values) for t in bounded.sink("sink").results]
            == [tuple(t.values) for t in unbounded.sink("sink").results]
        )


# ------------------------------------------------- termination regressions


class TestTerminationWhilePaused:
    @pytest.mark.parametrize("engine,options", [
        ("simulated", {}),
        ("threaded", {"timeout": 15.0}),
        ("asyncio", {"timeout": 15.0, "emulate_costs": True}),
        pytest.param(
            "multiprocess", {"timeout": 60.0},
            marks=pytest.mark.skipif(
                not fork_available(),
                reason="fork start method unavailable",
            ),
        ),
    ])
    def test_source_finishing_while_paused_terminates(self, engine, options):
        """A source that runs dry under an active pause must still close.

        Capacity equals the stream length's page, so the pause lands just
        as the timeline ends; completion depends on the runtime's rule
        that exhausted operators may finish while paused.
        """
        flow = Flow("finish", page_size=4)
        (flow.source(SCHEMA, timeline(10))
             .where(lambda t: True, tuple_cost=0.05)
             .collect("sink"))
        result = flow.run(engine, queue_capacity=4, **options)
        assert len(result.sink("sink").results) == 10

    def test_tiny_capacity_deep_chain_terminates(self):
        flow = Flow("deep", page_size=2)
        handle = flow.source(SCHEMA, timeline(50))
        for i in range(5):
            handle = handle.where(lambda t: True, name=f"w{i}",
                                  tuple_cost=0.01)
        handle.collect("sink")
        result = flow.run("simulated", queue_capacity=2)
        assert len(result.sink("sink").results) == 50

    def test_resume_to_finished_source_is_dropped(self):
        """Slow relief after the source closed must not wedge the run."""
        flow = Flow("late", page_size=2)
        (flow.source(SCHEMA, timeline(8))
             .where(lambda t: True, tuple_cost=0.2)
             .collect("sink"))
        result = flow.run("simulated", queue_capacity=2,
                          control_latency=0.5)
        assert len(result.sink("sink").results) == 8


# ------------------------------------------- forward-unknown-control bugfix


class TestForwardUnknownControl:
    def _plan(self):
        plan = QueryPlan("fwd")
        src = ListSource("src", SCHEMA, timeline(40, spacing=0.025))
        mid = PassThrough("mid", SCHEMA)
        sink = CollectSink("sink", SCHEMA, tuple_cost=0.01)
        plan.chain(src, mid, sink)
        return plan, src, mid, sink

    def test_shutdown_message_is_relayed_upstream(self):
        """An unhandled control kind must hop the whole path, not vanish."""
        plan, src, mid, sink = self._plan()
        engine = Simulator(plan)

        def send_shutdown():
            sink.inputs[0].control.send(
                ControlMessage(
                    ControlMessageKind.SHUTDOWN,
                    Direction.UPSTREAM,
                    payload="client stop",
                    sender="sink",
                    sent_at=engine.now(),
                )
            )
            engine.notify_control(mid)

        engine.at(0.2, send_shutdown)
        engine.run()
        assert mid.metrics.control_forwarded == 1
        assert src.metrics.control_forwarded == 1  # no inputs: logged only

    def test_unrecognised_feedback_payload_is_relayed(self):
        """A FEEDBACK payload this operator predates is forwarded verbatim."""
        plan, src, mid, sink = self._plan()
        engine = Simulator(plan)
        marker = object()

        def send_alien_feedback():
            sink.inputs[0].control.send(
                ControlMessage(
                    ControlMessageKind.FEEDBACK,
                    Direction.UPSTREAM,
                    payload=marker,
                    sender="sink",
                    sent_at=engine.now(),
                )
            )
            engine.notify_control(mid)

        engine.at(0.2, send_alien_feedback)
        engine.run()
        assert mid.metrics.control_forwarded == 1
        assert mid.metrics.feedback_received == 0  # not mistaken for semantic

    def test_threaded_forwards_unknown_kinds_too(self):
        """Wall-clock variant, with a gated source holding the run open."""
        import threading

        gate = threading.Event()
        data = timeline(20)

        def events():
            yield from data[:10]
            gate.wait(10.0)  # hold the stream open for the injection
            yield from data[10:]

        plan = QueryPlan("fwd-threaded")
        src = GeneratorSource("src", SCHEMA, events)
        mid = PassThrough("mid", SCHEMA)
        sink = CollectSink("sink", SCHEMA)
        plan.chain(src, mid, sink)
        engine = ThreadedRuntime(plan, timeout=15.0)

        def send_shutdown():
            sink.inputs[0].control.send(
                ControlMessage(
                    ControlMessageKind.SHUTDOWN,
                    Direction.UPSTREAM,
                    payload="client stop",
                    sender="sink",
                    sent_at=engine.now(),
                )
            )
            engine.notify_control(mid)
            gate.set()

        engine.at(0.05, send_shutdown)
        engine.run()
        assert mid.metrics.control_forwarded == 1


# -------------------------------------------------------- operator hooks


class TestPriorityBufferHold:
    def test_buffer_absorbs_while_held(self):
        buffer = PriorityBuffer("buf", SCHEMA, capacity=4)
        harness = OperatorHarness(buffer)
        buffer.on_pause(FlowControlPunctuation.pause("buf->x[0]"), None)
        harness.push_all(tuples(10))
        assert harness.emitted_tuples() == []  # everything absorbed
        assert len(buffer._pending) == 10
        buffer.on_resume(FlowControlPunctuation.resume("buf->x[0]"), None)
        # Released back down below the configured depth, FIFO order.
        released = harness.emitted_tuples()
        assert [t["ts"] for t in released] == [float(i) for i in range(7)]
        assert len(buffer._pending) == 3

    def test_buffer_batch_path_respects_hold(self):
        buffer = PriorityBuffer("buf", SCHEMA, capacity=4)
        harness = OperatorHarness(buffer)
        buffer.on_pause(FlowControlPunctuation.pause("buf->x[0]"), None)
        buffer.process_page(0, tuples(8))
        assert harness.emitted_tuples() == []
        buffer.on_resume(FlowControlPunctuation.resume("buf->x[0]"), None)
        assert len(harness.emitted_tuples()) == 5  # down to capacity - 1

    def test_engine_run_with_buffer_stays_bounded(self):
        flow = Flow("buffered", page_size=8)
        (flow.source(SCHEMA, timeline(300))
             .buffer(capacity=16)
             .where(lambda t: True, tuple_cost=0.002)
             .collect("sink"))
        result = flow.run("simulated", queue_capacity=32)
        # The buffer's resume burst may overshoot by up to its own depth;
        # the point is bounded-vs-unbounded, not an exact ceiling.
        assert result.metrics.peak_queue_occupancy() <= 32 + 16
        unbounded = 300
        assert result.metrics.peak_queue_occupancy() < unbounded / 4
        assert len(result.sink("sink").results) == 300


# ------------------------------------------------------------- rendering


class TestTopologyRendering:
    def test_describe_shows_capacities(self):
        flow = Flow("render", page_size=8)
        (flow.source(SCHEMA, timeline(4))
             .where(lambda t: True, name="keep", queue_capacity=32)
             .collect("sink"))
        text = flow.describe()
        assert "keep[0] (cap=32)" in text
        assert "sink[0] (cap=" not in text  # unbounded edge: unchanged

    def test_describe_matches_compiled_plan_with_capacities(self):
        flow = Flow("render2", page_size=8)
        (flow.source(SCHEMA, timeline(4))
             .where(lambda t: True, name="keep", queue_capacity=32)
             .collect("sink"))
        assert flow.describe() == flow.build().describe()
        flow2 = Flow("render3", page_size=8)
        (flow2.source(SCHEMA, timeline(4))
              .where(lambda t: True, name="keep", queue_capacity=32)
              .collect("sink"))
        assert flow2.to_dot() == flow2.build().to_dot()

    def test_to_dot_marks_backpressure_edges(self):
        flow = Flow("dotted", page_size=8)
        (flow.source(SCHEMA, timeline(4))
             .where(lambda t: True, name="keep", queue_capacity=32)
             .collect("sink"))
        dot = flow.to_dot()
        assert "cap=32" in dot
        assert "arrowtail=tee" in dot

    def test_unbounded_rendering_is_unchanged(self):
        flow = Flow("plain", page_size=8)
        (flow.source(SCHEMA, timeline(4))
             .where(lambda t: True, name="keep")
             .collect("sink"))
        assert "cap=" not in flow.describe()
        assert "arrowtail" not in flow.to_dot()
