"""Differential plan-equivalence harness for the optimizer.

The optimizer's shipping condition: for ANY plan, the rewritten form is
observably equivalent to the original -- multiset-equal sink data,
identical punctuation delivery at sinks, equal feedback effects at
sources.  This suite generates random plans with hypothesis (chains,
splits/unions, joins, windows, over randomized guard/map/project
stages), runs each one optimized and unoptimized, and compares.

Example budgets: 100 chain plans on the simulated engine plus 60 each on
threaded and asyncio (220 total, >= the 200 the acceptance criteria
require), scaled by the ``REPRO_OPT_EXAMPLES`` env knob so CI smoke legs
can run thin and the dedicated equivalence leg runs full.  Runs are
derandomized: a red build is reproducible.

The multiprocess engine runs on a fixed corpus of representative plans
(process fan-out per generated example would swamp the suite), gated on
fork availability like the rest of the multiprocess legs.

Known divergence, by design: with ``control_latency > 0`` a control
message crosses a fused composite in one boundary hop instead of N
internal hops, so per-hop latency plans are out of scope here (the
default latency of 0 is what every engine ships with).
"""

from __future__ import annotations

import os
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    FeedbackIntent,
    FeedbackPunctuation,
    Flow,
    Pattern,
    Schema,
    StreamTuple,
)
from repro.engine import fork_available
from repro.optimizer import optimize

SCHEMA = Schema([
    ("ts", "timestamp", True), ("a", "int"), ("b", "int"), ("c", "float"),
])

SIM_EXAMPLES = int(os.environ.get("REPRO_OPT_EXAMPLES", "100"))
CONCURRENT_EXAMPLES = max(5, (SIM_EXAMPLES * 6) // 10)


# --------------------------------------------------------------------------
# plan-spec strategies: pure-data specs, compiled to flows by build_chain()
# --------------------------------------------------------------------------

def rows_strategy():
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),    # a
            st.integers(min_value=0, max_value=3),    # b
            st.floats(
                min_value=-50.0, max_value=50.0,
                allow_nan=False, allow_infinity=False,
            ),                                        # c
        ),
        min_size=20,
        max_size=60,
    )


def stage_strategy():
    """One stage spec: (kind, params) drawn over the *current* schema.

    Params reference attributes by name; build_chain() skips a stage
    whose attribute was projected away earlier, so every generated spec
    compiles.
    """
    return st.one_of(
        st.tuples(
            st.just("pattern_where"),
            st.sampled_from(["a", "b"]),
            st.integers(min_value=0, max_value=7),
        ),
        st.tuples(
            st.just("callable_where"),
            st.sampled_from(["a", "b"]),
            st.integers(min_value=1, max_value=4),
        ),
        st.tuples(
            st.just("extend"),
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=1, max_value=9),
        ),
        st.tuples(
            st.just("project"),
            st.sets(
                st.sampled_from(["ts", "a", "b", "c"]),
                min_size=2, max_size=4,
            ),
            st.none(),
        ),
    )


def chain_specs():
    return st.tuples(
        rows_strategy(),
        st.lists(stage_strategy(), min_size=1, max_size=6),
        st.floats(min_value=0.5, max_value=3.0, allow_nan=False),
    )


def make_rows(value_rows):
    return [
        (i * 0.1, StreamTuple(SCHEMA, (i * 0.1, a, b, c)))
        for i, (a, b, c) in enumerate(value_rows)
    ]


def build_chain(value_rows, stages, every):
    """Compile one generated spec to a runnable Flow."""
    flow = Flow("generated")
    handle = flow.source(SCHEMA, make_rows(value_rows), name="src")
    handle = handle.punctuate(on="ts", every=every)
    schema = SCHEMA
    counter = 0
    for kind, arg, extra in stages:
        counter += 1
        name = f"s{counter}_{kind}"
        if kind == "pattern_where":
            if arg not in schema:
                continue
            handle = handle.where(
                Pattern.from_mapping(schema, {arg: extra}), name=name
            )
        elif kind == "callable_where":
            if arg not in schema:
                continue
            divisor = extra

            def pred(t, attr=arg, d=divisor):
                return int(t[attr]) % d != 0

            handle = handle.where(pred, name=name)
        elif kind == "extend":
            if arg not in schema:
                continue
            new_attr = f"x{counter}"

            def compute(t, attr=arg, k=extra):
                return (float(t[attr]) + k,)

            handle = handle.extend(
                [(new_attr, "float")], compute, name=name
            )
            schema = handle.schema
            continue
        elif kind == "project":
            keep = [a.name for a in schema if a.name in arg]
            if len(keep) < 1:
                continue
            handle = handle.select(*keep, name=name)
            schema = handle.schema
            continue
        schema = handle.schema
    handle.collect("sink", keep_punctuation=True)
    return flow


def sink_data(result):
    return [tuple(t.values) for t in result.sink("sink").results]


def sink_punctuation(result):
    return [
        tuple(p.pattern.atoms)
        for p in result.sink("sink").punctuations
    ]


def run_both(flow_factory, engine, **run_options):
    base = flow_factory().run(engine, **run_options)
    opt = flow_factory().run(engine, optimize=True, **run_options)
    return base, opt


# --------------------------------------------------------------------------
# generated chains, per engine
# --------------------------------------------------------------------------

class TestGeneratedChains:
    @given(chain_specs())
    @settings(
        max_examples=SIM_EXAMPLES, deadline=None, derandomize=True
    )
    def test_simulated_exact_equivalence(self, spec):
        """Deterministic engine: data AND punctuation sequences match
        exactly, not just as multisets."""
        value_rows, stages, every = spec
        base, opt = run_both(
            lambda: build_chain(value_rows, stages, every), "simulated"
        )
        assert sink_data(base) == sink_data(opt)
        assert sink_punctuation(base) == sink_punctuation(opt)

    @given(chain_specs())
    @settings(
        max_examples=CONCURRENT_EXAMPLES, deadline=None, derandomize=True
    )
    def test_threaded_equivalence(self, spec):
        value_rows, stages, every = spec
        base, opt = run_both(
            lambda: build_chain(value_rows, stages, every), "threaded"
        )
        assert Counter(sink_data(base)) == Counter(sink_data(opt))
        assert sink_punctuation(base) == sink_punctuation(opt)

    @given(chain_specs())
    @settings(
        max_examples=CONCURRENT_EXAMPLES, deadline=None, derandomize=True
    )
    def test_asyncio_equivalence(self, spec):
        value_rows, stages, every = spec
        base, opt = run_both(
            lambda: build_chain(value_rows, stages, every), "asyncio"
        )
        assert Counter(sink_data(base)) == Counter(sink_data(opt))
        assert sink_punctuation(base) == sink_punctuation(opt)

    @given(chain_specs())
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_optimized_plan_validates_and_reports(self, spec):
        """The rewritten IR is still a valid plan, and the report's
        fused composites all name stages that existed."""
        value_rows, stages, every = spec
        flow = build_chain(value_rows, stages, every)
        plan = flow.build()
        before = {op.name for op in plan}
        report = optimize(plan)
        plan.validate()
        for fused_name, stage_names in report.fused:
            assert set(stage_names) <= before
            assert fused_name == "+".join(stage_names)


# --------------------------------------------------------------------------
# feedback effects at sources (simulated: injection time is deterministic)
# --------------------------------------------------------------------------

class TestFeedbackEffects:
    @given(
        chain_specs(),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_source_guard_effects_match(self, spec, guard_value, when):
        """Assumed feedback injected at the sink has the same effect at
        the source -- same guard drops, same sink data -- optimized or
        not."""
        value_rows, stages, every = spec

        def factory():
            return build_chain(value_rows, stages, every)

        sink_schema = factory().build().operator("sink").output_schema
        if "a" not in sink_schema:
            return  # the guarded attribute was projected away
        feedback = FeedbackPunctuation(
            FeedbackIntent.ASSUMED,
            Pattern.from_mapping(sink_schema, {"a": guard_value}),
        )
        base, opt = run_both(
            factory, "simulated", feedback=[(when, "sink", feedback)]
        )
        assert sink_data(base) == sink_data(opt)
        base_src = base.metrics.operator_metrics["src"]
        opt_src = opt.metrics.operator_metrics["src"]
        assert (
            base_src.output_guard_drops == opt_src.output_guard_drops
        )
        assert (
            base_src.feedback_received == opt_src.feedback_received
        )


# --------------------------------------------------------------------------
# non-linear topologies: split/union, join, window
# --------------------------------------------------------------------------

RIGHT_SCHEMA = Schema([
    ("rts", "timestamp", True), ("ra", "int"), ("label", "int"),
])

ENGINES = ["simulated", "threaded", "asyncio"]


def build_split_union(value_rows, every):
    flow = Flow("split-union")
    handle = (
        flow.source(SCHEMA, make_rows(value_rows), name="src")
        .punctuate(on="ts", every=every)
    )
    lo, hi = handle.split(2, name="dup")
    lo = (
        lo.where(lambda t: t["c"] < 0.0, name="flo")
        .extend([("tag", "int")], lambda t: (0,), name="elo")
    )
    hi = (
        hi.where(lambda t: t["c"] >= 0.0, name="fhi")
        .extend([("tag", "int")], lambda t: (1,), name="ehi")
    )
    lo.union(hi, name="u").collect("sink", keep_punctuation=True)
    return flow


def build_join(value_rows, every):
    right_rows = [
        (i * 0.1, StreamTuple(RIGHT_SCHEMA, (i * 0.1, i % 8, i % 2)))
        for i in range(len(value_rows) // 2 + 1)
    ]
    flow = Flow("join")
    left = (
        flow.source(SCHEMA, make_rows(value_rows), name="src")
        .punctuate(on="ts", every=every)
        .where(lambda t: t["b"] != 3, name="pre")
    )
    right = (
        flow.source(RIGHT_SCHEMA, right_rows, name="right")
        .punctuate(on="rts", every=every)
    )
    (
        left.join(right, on=[("a", "ra")], name="j")
        .where(lambda t: t["label"] == 0, name="post")
        .extend([("z", "int")], lambda t: (1,), name="ez")
        .collect("sink", keep_punctuation=True)
    )
    return flow


def build_window(value_rows, every):
    from repro.api import avg

    flow = Flow("window")
    (
        flow.source(SCHEMA, make_rows(value_rows), name="src")
        .punctuate(on="ts", every=every)
        .where(lambda t: t["a"] != 7, name="pre")
        .extend([("c2", "float")], lambda t: (t["c"] * 2,), name="ext")
        .window(avg("c2"), on="ts", width=every, by="b", name="w")
        .collect("sink", keep_punctuation=True)
    )
    return flow


TOPOLOGIES = [build_split_union, build_join, build_window]


class TestTopologies:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "builder", TOPOLOGIES, ids=lambda b: b.__name__
    )
    @given(rows_strategy())
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_topology_equivalence(self, engine, builder, value_rows):
        base, opt = run_both(lambda: builder(value_rows, 1.0), engine)
        assert Counter(sink_data(base)) == Counter(sink_data(opt))
        assert Counter(sink_punctuation(base)) == Counter(
            sink_punctuation(opt)
        )


# --------------------------------------------------------------------------
# multiprocess: fixed corpus (per-example process fan-out is too slow)
# --------------------------------------------------------------------------

FIXED_ROWS = [
    (i % 8, i % 4, float((i * 7) % 101) - 50.0) for i in range(120)
]

FIXED_CHAINS = [
    [("callable_where", "a", 3), ("extend", "c", 2),
     ("pattern_where", "b", 1), ("project", {"ts", "a", "b"}, None)],
    [("extend", "a", 1), ("extend", "b", 2), ("callable_where", "a", 2),
     ("extend", "c", 3), ("pattern_where", "a", 4),
     ("callable_where", "b", 3)],
]


@pytest.mark.skipif(
    not fork_available(), reason="multiprocess engine requires fork"
)
class TestMultiprocessCorpus:
    @pytest.mark.parametrize("stages", FIXED_CHAINS, ids=["mixed", "deep"])
    def test_chain_corpus(self, stages):
        base, opt = run_both(
            lambda: build_chain(FIXED_ROWS, stages, 1.0), "multiprocess"
        )
        assert Counter(sink_data(base)) == Counter(sink_data(opt))
        assert Counter(sink_punctuation(base)) == Counter(
            sink_punctuation(opt)
        )

    def test_split_union_corpus(self):
        base, opt = run_both(
            lambda: build_split_union(FIXED_ROWS, 1.0), "multiprocess"
        )
        assert Counter(sink_data(base)) == Counter(sink_data(opt))
