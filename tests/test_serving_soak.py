"""Concurrency soak: many multiplexed flows under randomized client churn.

Marked ``slow`` and deselected by default (``addopts = -m 'not slow'``);
CI runs it in a dedicated job under a hard KILL timeout with::

    REPRO_SOAK_FLOWS=50 python -m pytest -m slow tests/test_serving_soak.py

The test drives one :class:`~repro.serving.server.StreamServer` hosting
``REPRO_SOAK_FLOWS`` flows through several rounds of randomized clients
-- websocket duplex sessions, SSE subscribers that disconnect mid-
stream, HTTP batch ingesters -- and then asserts the properties an
always-on service actually needs:

* every flow is still RUNNING and the service reports healthy;
* nothing was dropped: the server's admitted count equals the sum of
  per-flow ingestion counters;
* no leaked tasks: after ``aclose`` the loop holds no stray coroutines;
* no unclosed adapters: every channel and subscription is closed;
* stable memory: tracemalloc growth across churn rounds stays bounded
  (the push sinks' retain rings cap result history).
"""

from __future__ import annotations

import asyncio
import os
import random
import tracemalloc

import pytest

from repro.api import Flow
from repro.serving import (
    FlowState,
    FlowSupervisor,
    StreamServer,
    TenantPolicy,
)
from repro.serving.client import (
    WebSocketClient,
    get_json,
    post_json,
    sse_subscribe,
)
from repro.stream import Attribute, Schema

FLOWS = int(os.environ.get("REPRO_SOAK_FLOWS", "12"))
ROUNDS = int(os.environ.get("REPRO_SOAK_ROUNDS", "4"))
CLIENTS_PER_ROUND = int(os.environ.get("REPRO_SOAK_CLIENTS", "24"))
MEMORY_BUDGET = 8 * 1024 * 1024  # bytes of tracemalloc growth tolerated


def soak_schema() -> Schema:
    return Schema([
        Attribute("client", "str"),
        Attribute("seq", "int"),
        Attribute("value", "float"),
    ])


@pytest.mark.slow
class TestServingSoak:
    def test_many_flows_survive_randomized_churn(self):
        rng = random.Random(0xC1D9)

        async def ws_client(host, port, name, index):
            async with WebSocketClient(
                host, port, f"/v1/flows/{name}/ws?mode=duplex"
            ) as client:
                for seq in range(5):
                    await client.send_json({
                        "client": f"ws{index}", "seq": seq,
                        "value": seq * 0.5,
                    })
                # read a few fanned-out results, then leave; sometimes
                # abruptly (transport torn down, no close frame)
                for _ in range(rng.randrange(0, 4)):
                    try:
                        received = await asyncio.wait_for(
                            client.receive_json(), 2
                        )
                    except asyncio.TimeoutError:
                        break
                    if received is None:
                        break
                if rng.random() < 0.3 and client._writer is not None:
                    client._writer.transport.abort()
                    client._writer = None
            return 5

        async def sse_client(host, port, name, index):
            stream = sse_subscribe(
                host, port, f"/v1/flows/{name}/stream?limit=8"
            )
            seen = 0
            cutoff = rng.randrange(1, 8)
            try:
                while seen < cutoff:
                    try:
                        # another client may never feed this flow this
                        # round: a quiet stream is not a failure
                        await asyncio.wait_for(stream.__anext__(), 2)
                    except (asyncio.TimeoutError, StopAsyncIteration):
                        break
                    seen += 1  # then disconnect mid-stream at cutoff
            finally:
                await stream.aclose()
            return 0

        async def post_client(host, port, name, index):
            batch = [
                {"client": f"po{index}", "seq": seq, "value": 1.0}
                for seq in range(8)
            ]
            status, body = await post_json(
                host, port, f"/v1/flows/{name}/ingest", batch
            )
            assert status == 202
            return body["admitted"]

        async def main():
            flows = []
            supervisor = FlowSupervisor(queue_capacity=16)
            policy = TenantPolicy(
                rate=1e6, burst=1e6, max_flows=FLOWS
            )
            for index in range(FLOWS):
                flow = Flow(f"soak{index:03d}")
                flow.ingest(
                    soak_schema(), name="in", capacity=16
                ).push("out", high_water=32, retain=64)
                supervisor.admit(
                    flow, tenant="soak",
                    policy=policy if index == 0 else None,
                )
                flows.append(flow)
            server = StreamServer(supervisor)
            host, port = await server.start()
            names = [flow.name for flow in flows]

            kinds = [ws_client, sse_client, post_client]
            sent_total = 0
            baseline = None
            for round_index in range(ROUNDS):
                tasks = []
                for index in range(CLIENTS_PER_ROUND):
                    kind = rng.choice(kinds)
                    name = rng.choice(names)
                    tasks.append(kind(host, port, name, index))
                results = await asyncio.gather(*tasks)
                sent_total += sum(results)

                status, health = await get_json(host, port, "/healthz")
                assert status == 200, f"round {round_index}: {health}"
                if baseline is None:
                    # measure growth only after the first round has
                    # paid one-time allocation costs (caches, pages)
                    baseline = tracemalloc.take_snapshot()

            growth = sum(
                stat.size_diff
                for stat in tracemalloc.take_snapshot().compare_to(
                    baseline, "lineno"
                )
            )

            # nothing dropped anywhere in the chain
            assert server.counters["ingested_total"] == sent_total
            assert sum(
                managed.ingested for managed in supervisor.flows
            ) == sent_total
            for managed in supervisor.flows:
                assert managed.state is FlowState.RUNNING
                assert managed.restarts == 0
            # every churned subscriber detached cleanly (the server may
            # need a beat to notice an aborted transport)
            deadline = asyncio.get_running_loop().time() + 5.0
            while any(flow.hub().subscribers for flow in flows):
                assert asyncio.get_running_loop().time() < deadline, (
                    "subscriptions leaked after client churn"
                )
                await asyncio.sleep(0.05)

            await server.aclose(drain=True)

            for managed in supervisor.flows:
                assert managed.state is FlowState.DRAINED
            for flow in flows:
                assert flow.channel().closed
                assert flow.channel().idle  # backlog fully processed

            # no leaked tasks: with the listener gone, connections
            # reaped and every flow drained, this coroutine is the only
            # thing left on the loop
            lingering = {
                task for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            }
            assert lingering == set(), (
                f"{len(lingering)} task(s) leaked: {lingering}"
            )
            return growth

        tracemalloc.start()
        try:
            growth = asyncio.run(main())
        finally:
            tracemalloc.stop()

        assert growth < MEMORY_BUDGET, (
            f"tracemalloc grew {growth / 1e6:.1f} MB across churn rounds"
        )
