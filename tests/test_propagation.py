"""Unit tests for safe propagation (paper Definition 2 and section 4.2).

The section 4.2 example is reproduced literally: streams A(a, t, id) and
B(t, id, b) equi-joined on (t, id) with output C(a, t, id, b).
"""

import pytest

from repro.core import FeedbackPunctuation, PropagationPlanner
from repro.punctuation import Pattern
from repro.stream import Schema, SchemaMapping


@pytest.fixture
def join_mapping(stream_a_schema, stream_b_schema):
    return SchemaMapping.for_join(
        stream_a_schema, stream_b_schema, [("t", "t"), ("id", "id")]
    )


@pytest.fixture
def planner(join_mapping):
    return PropagationPlanner(join_mapping)


class TestJoinPropagation:
    def test_join_attrs_propagate_to_both_inputs(self, planner):
        # f = ¬[*, 3, 4, *]  ->  ¬[*, 3, 4] to A and ¬[3, 4, *] to B.
        plan = planner.plan(Pattern.build("*", 3, 4, "*"))
        assert set(plan.per_input) == {0, 1}
        assert repr(plan.per_input[0]) == "[*, 3, 4]"
        assert repr(plan.per_input[1]) == "[3, 4, *]"

    def test_left_exclusive_attr_propagates_left_only(self, planner):
        # f = ¬[50, *, *, *]  ->  only ¬[50, *, *] to A.
        plan = planner.plan(Pattern.build(50, "*", "*", "*"))
        assert set(plan.per_input) == {0}
        assert repr(plan.per_input[0]) == "[50, *, *]"

    def test_right_exclusive_attr_propagates_right_only(self, planner):
        plan = planner.plan(Pattern.build("*", "*", "*", 50))
        assert set(plan.per_input) == {1}
        assert repr(plan.per_input[1]) == "[*, *, 50]"

    def test_both_exclusive_sides_has_no_safe_propagation(self, planner):
        # The paper's ¬[50, *, *, 50]: propagating either projection could
        # suppress <49, 2, 3, 50>, which the feedback does not cover.
        plan = planner.plan(Pattern.build(50, "*", "*", 50))
        assert not plan.propagatable
        assert plan.blocked_inputs[0] == "b"
        assert plan.blocked_inputs[1] == "a"

    def test_mixed_join_and_exclusive(self, planner):
        # Constrains a (left-only) and t (join attr): safe only to the left.
        plan = planner.plan(Pattern.build(50, 3, "*", "*"))
        assert set(plan.per_input) == {0}
        assert repr(plan.per_input[0]) == "[50, 3, *]"

    def test_all_wildcard_propagates_nowhere(self, planner):
        assert not planner.plan(Pattern.all_wildcards(4)).propagatable


class TestComputedAttributes:
    def test_computed_attribute_blocks_propagation(self):
        # AVERAGE's output (minute, avg_speed): avg is computed, so feedback
        # on it cannot be mapped upstream (section 3.5's ¬[*, >=50] case).
        out = Schema.of("minute", "avg_speed")
        inp = Schema.of("timestamp", "speed")
        from repro.stream import AttributeOrigin
        mapping = SchemaMapping(
            out, (inp,),
            {"minute": (), "avg_speed": ()},
        )
        planner = PropagationPlanner(mapping)
        from repro.punctuation import AtLeast
        plan = planner.plan(Pattern.build("*", AtLeast(50)))
        assert not plan.propagatable

    def test_inexact_origin_blocks_propagation(self):
        out = Schema.of("scaled")
        inp = Schema.of("raw")
        from repro.stream import AttributeOrigin
        mapping = SchemaMapping(
            out, (inp,),
            {"scaled": (AttributeOrigin(0, "raw", exact=False),)},
        )
        plan = PropagationPlanner(mapping).plan(Pattern.build(5))
        assert not plan.propagatable


class TestSelfJoinCollisions:
    def test_two_output_attrs_mapping_to_one_input_attr_intersect(self):
        # Output (x, y) where both derive exactly from input attr v.
        from repro.stream import AttributeOrigin
        out = Schema.of("x", "y")
        inp = Schema.of("v")
        mapping = SchemaMapping(
            out, (inp,),
            {
                "x": (AttributeOrigin(0, "v"),),
                "y": (AttributeOrigin(0, "v"),),
            },
        )
        planner = PropagationPlanner(mapping)
        plan = planner.plan(Pattern.build(5, 5))
        assert plan.propagatable
        assert plan.per_input[0].matches((5,))
        # Conflicting constraints have empty intersection: nothing to send.
        assert not planner.plan(Pattern.build(5, 6)).propagatable


class TestPropagateWrapper:
    def test_propagate_wraps_feedback(self, planner):
        fb = FeedbackPunctuation.assumed(
            Pattern.build("*", 3, 4, "*"), issuer="join"
        )
        relayed = planner.propagate(fb, relayer="join")
        assert set(relayed) == {0, 1}
        for sub in relayed.values():
            assert sub.hops == 1
            assert sub.intent is fb.intent
