"""End-to-end serving battery: loopback clients against a live server.

Every test runs the real stack -- :class:`~repro.serving.server.
StreamServer` bound to an ephemeral loopback port, a
:class:`~repro.serving.supervisor.FlowSupervisor` multiplexing flows on
the same event loop, and the byte-level clients from
:mod:`repro.serving.client` -- so the assertions cover the full chain
the paper's feedback story extends to the network boundary:

* backpressure reaches the socket: a subscriber that stops reading
  bounds the server's buffers and defers the ingesting client's HTTP
  response (no drops, no unbounded queues);
* tenant isolation: one tenant's burst is converted into that tenant's
  own delay, leaving another tenant's latency untouched;
* supervision: an injected operator crash restarts the flow under
  bounded backoff with channels, hubs and subscribers riding through,
  and a crash loop beyond the budget lands in FAILED + 503;
* clean drain: shutdown processes every admitted element, and the
  delivery log written through the durability seam matches what the
  subscriber saw, entry for entry.
"""

from __future__ import annotations

import asyncio
import socket as socketlib
import time

import pytest

from repro.api import Flow
from repro.durability import DirectoryCheckpointStore, MemoryCheckpointStore
from repro.engine.registry import create_engine
from repro.errors import ServingError
from repro.serving import (
    FlowState,
    FlowSupervisor,
    ServingConfig,
    StreamServer,
    TenantPolicy,
    uvloop_available,
)
from repro.serving.client import (
    WebSocketClient,
    get_json,
    get_text,
    post_json,
    sse_subscribe,
)
from repro.stream import Attribute, Schema, StreamTuple


def make_schema() -> Schema:
    return Schema([
        Attribute("client", "str"),
        Attribute("seq", "int"),
        Attribute("value", "float"),
    ])


def echo_flow(
    name: str,
    *,
    capacity: int = 8,
    high_water: int = 8,
    predicate=None,
) -> tuple[Flow, Schema]:
    """ingest -> (optional where) -> push, the canonical serving shape."""
    schema = make_schema()
    flow = Flow(name)
    handle = flow.ingest(schema, name="in", capacity=capacity)
    if predicate is not None:
        handle = handle.where(predicate)
    handle.push("out", high_water=high_water)
    return flow, schema


def poison_predicate(tup: StreamTuple) -> bool:
    if tup["value"] < 0:
        raise ValueError("poison tuple")
    return True


async def wait_until(condition, *, timeout: float = 5.0, step: float = 0.01):
    deadline = time.monotonic() + timeout
    while not condition():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(step)


# ---------------------------------------------------------------------------
# basics: ingest over HTTP, delivery over SSE and websocket, observability
# ---------------------------------------------------------------------------


class TestServingBasics:
    def test_http_ingest_to_sse_delivery(self):
        async def main():
            flow, _schema = echo_flow("pipe")
            supervisor = FlowSupervisor(queue_capacity=8)
            supervisor.admit(flow)
            server = StreamServer(supervisor)
            host, port = await server.start()

            status, body = await get_json(host, port, "/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["flows"]["pipe"] == "running"

            events = []

            async def subscriber():
                stream = sse_subscribe(
                    host, port, "/v1/flows/pipe/stream?limit=3"
                )
                async for event in stream:
                    events.append(event)

            subscription = asyncio.ensure_future(subscriber())
            await asyncio.sleep(0.05)  # subscribe before ingesting

            payload = [
                {"client": "a", "seq": i, "value": i * 0.5} for i in range(3)
            ]
            status, body = await post_json(
                host, port, "/v1/flows/pipe/ingest", payload
            )
            assert status == 202
            assert body == {"admitted": 3}

            await asyncio.wait_for(subscription, 10)
            assert [event["seq"] for event in events] == [0, 1, 2]
            assert events[0]["client"] == "a"

            status, listing = await get_json(host, port, "/v1/flows")
            assert status == 200
            assert listing["pipe"]["ingested"] == 3

            status, text = await get_text(host, port, "/metrics")
            assert status == 200
            assert "repro_flow_up" in text
            assert "repro_operator_tuples_in_total" in text
            assert "repro_tenant_reservations_total" in text

            await server.aclose(drain=True)
            assert supervisor.status()["pipe"]["state"] == "drained"

        asyncio.run(main())

    def test_websocket_duplex_roundtrip(self):
        async def main():
            flow, _schema = echo_flow("ws")
            supervisor = FlowSupervisor(queue_capacity=8)
            supervisor.admit(flow)
            server = StreamServer(supervisor)
            host, port = await server.start()

            async with WebSocketClient(
                host, port, "/v1/flows/ws/ws"
            ) as client:
                await client.send_json(
                    {"client": "w", "seq": 1, "value": 2.0}
                )
                echoed = await asyncio.wait_for(client.receive_json(), 10)
                assert echoed == {"client": "w", "seq": 1, "value": 2.0}

                # malformed payloads come back as in-band error frames
                await client.send_json({"bogus": True})
                error = await asyncio.wait_for(client.receive_json(), 10)
                assert "error" in error

            await server.aclose(drain=True)

        asyncio.run(main())

    def test_http_error_handling(self):
        async def main():
            flow, _schema = echo_flow("errs")
            supervisor = FlowSupervisor(queue_capacity=8)
            supervisor.admit(flow)
            server = StreamServer(supervisor)
            host, port = await server.start()

            status, body = await get_json(host, port, "/no/such/route")
            assert status == 404
            assert "no route" in body["error"]

            status, body = await post_json(
                host, port, "/v1/flows/ghost/ingest",
                {"client": "x", "seq": 0, "value": 0.0},
            )
            assert status == 400
            assert "ghost" in body["error"]

            status, body = await post_json(
                host, port, "/v1/flows/errs/ingest", {"wrong": "shape"}
            )
            assert status == 400
            assert server.counters["client_errors_total"] >= 2

            await server.aclose(drain=True)

        asyncio.run(main())

    def test_uvloop_gate_raises_when_absent(self):
        if uvloop_available():
            pytest.skip("uvloop installed; the absent-gate leg covers this")

        async def main():
            flow, _schema = echo_flow("uv")
            supervisor = FlowSupervisor(queue_capacity=8)
            supervisor.admit(flow)
            server = StreamServer(
                supervisor, config=ServingConfig(uvloop=True)
            )
            with pytest.raises(ServingError, match="uvloop"):
                await server.start()
            await supervisor.stop()

        asyncio.run(main())


# ---------------------------------------------------------------------------
# backpressure reaches the socket
# ---------------------------------------------------------------------------


class TestBackpressureToSocket:
    def test_slow_subscriber_bounds_buffers_and_defers_ingest(self):
        """A subscriber that stops reading stalls the ingesting client.

        The chain under test: the SSE writer's ``drain()`` blocks on the
        shrunken socket buffers, the subscription stops being consumed,
        the hub buffer hits ``high_water`` and closes its gate, and
        ``supervisor.ingest`` (hence the POST handler) awaits -- so the
        ingesting client's response is deferred while every server-side
        buffer stays bounded.  Disconnecting the slow subscriber releases
        the whole chain and the POST completes with nothing dropped.
        """

        async def main():
            total = 300
            flow, _schema = echo_flow("bp", capacity=8, high_water=8)
            supervisor = FlowSupervisor(queue_capacity=8)
            # A generous rate policy, so the only thing that can defer
            # the POST is the socket-backpressure chain itself.
            managed = supervisor.admit(
                flow,
                policy=TenantPolicy(rate=1e6, burst=1e6, max_flows=2),
            )
            server = StreamServer(
                supervisor,
                config=ServingConfig(write_buffer_high=1024, sndbuf=4096),
            )
            host, port = await server.start()

            # A deliberately slow consumer: tiny kernel receive buffer,
            # tiny client-side reader limit (so the transport stops
            # reading off the socket), reads only the response head.
            raw = socketlib.socket()
            raw.setsockopt(
                socketlib.SOL_SOCKET, socketlib.SO_RCVBUF, 4096
            )
            raw.connect((host, port))
            reader, writer = await asyncio.open_connection(
                sock=raw, limit=1024
            )
            writer.write(
                f"GET /v1/flows/bp/stream HTTP/1.1\r\n"
                f"host: {host}:{port}\r\n\r\n".encode()
            )
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            await asyncio.sleep(0.05)  # subscription attached

            padding = "x" * 256  # ~300B per SSE event
            payload = [
                {"client": padding, "seq": i, "value": 0.0}
                for i in range(total)
            ]
            post = asyncio.ensure_future(
                post_json(host, port, "/v1/flows/bp/ingest", payload)
            )
            hub = flow.hub()

            # The steady stall: once the kernel buffers fill, the SSE
            # writer's drain() blocks for good, the hub gate closes, and
            # admissions freeze with the POST still pending.
            await wait_until(lambda: not hub.gate_open, timeout=10)
            stalled_at = None
            for _ in range(40):
                snapshot = managed.ingested
                await asyncio.sleep(0.25)
                if managed.ingested == snapshot and not hub.gate_open:
                    stalled_at = snapshot
                    break
            assert stalled_at is not None, "stall never settled"
            assert not post.done(), "overload must defer the POST response"
            assert stalled_at < total
            # Bounded server buffers: high_water + channel capacity +
            # queue capacity + a page in flight, nowhere near `total`.
            assert hub.peak_backlog <= 8 + 8 + 8 + 8
            assert flow.channel().peak_backlog <= 8

            # The slow subscriber disconnects: the subscription closes,
            # the gate reopens, and the deferred POST completes in full.
            writer.close()
            try:
                await asyncio.wait_for(writer.wait_closed(), 5)
            except (OSError, asyncio.TimeoutError):
                pass
            status, body = await asyncio.wait_for(post, 30)
            assert status == 202
            assert body == {"admitted": total}
            assert managed.ingested == total  # delayed, never dropped

            await server.aclose(drain=True)

        asyncio.run(main())


# ---------------------------------------------------------------------------
# tenant isolation
# ---------------------------------------------------------------------------


class TestTenantIsolation:
    def test_one_tenants_burst_does_not_starve_another(self):
        async def main():
            flow_a, _ = echo_flow("ta")
            flow_b, _ = echo_flow("tb")
            supervisor = FlowSupervisor(queue_capacity=16)
            supervisor.admit(
                flow_a, tenant="alice",
                policy=TenantPolicy(rate=100.0, burst=10.0, max_flows=2),
            )
            supervisor.admit(
                flow_b, tenant="bob",
                policy=TenantPolicy(rate=10_000.0, burst=100.0, max_flows=2),
            )
            server = StreamServer(supervisor)
            host, port = await server.start()

            flood = [
                {"client": "a", "seq": i, "value": 0.0} for i in range(100)
            ]
            flood_task = asyncio.ensure_future(
                post_json(host, port, "/v1/flows/ta/ingest", flood)
            )
            await asyncio.sleep(0.05)

            start = time.perf_counter()
            status, body = await post_json(
                host, port, "/v1/flows/tb/ingest",
                [{"client": "b", "seq": i, "value": 1.0} for i in range(20)],
            )
            elapsed = time.perf_counter() - start
            assert status == 202
            assert body == {"admitted": 20}
            assert elapsed < 0.5, (
                f"bob waited {elapsed:.3f}s behind alice's flood"
            )
            # alice's over-rate flood is still queued behind her own
            # allowance (100 elements at rate 100 needs ~0.9s)...
            assert not flood_task.done()
            # ...and completes in full: delayed, never dropped.
            status, body = await asyncio.wait_for(flood_task, 30)
            assert status == 202
            assert body == {"admitted": 100}

            snapshot = supervisor.admission.snapshot()
            assert snapshot["alice"]["delayed"] > 0
            assert snapshot["bob"]["delayed"] == 0
            # the throttle is on record as pause punctuation on alice's
            # virtual client edge -- and only alice's
            edges = {p.edge for p in supervisor.admission.control_log}
            assert "alice->serving" in edges
            assert "bob->serving" not in edges

            await server.aclose(drain=True)

        asyncio.run(main())


# ---------------------------------------------------------------------------
# supervision: restart with backoff, crash budget, health reporting
# ---------------------------------------------------------------------------


class TestSupervision:
    def test_restart_after_crash_keeps_subscribers(self):
        async def main():
            flow, schema = echo_flow("rf", predicate=poison_predicate)
            supervisor = FlowSupervisor(
                queue_capacity=8, restart_limit=3,
                backoff_base=0.01, backoff_cap=0.05,
            )
            managed = supervisor.admit(flow)
            supervisor.start_all()
            await wait_until(lambda: managed.state is FlowState.RUNNING)

            subscription = supervisor.subscribe("rf")
            collected = []

            async def consume():
                async for tup in subscription:
                    collected.append(tup["seq"])

            consumer = asyncio.ensure_future(consume())

            await supervisor.ingest(
                "rf", StreamTuple(schema, ("p", 99, -1.0))
            )
            await wait_until(
                lambda: managed.restarts >= 1
                and managed.state is FlowState.RUNNING
            )
            assert "poison" in managed.crashes[0]
            assert supervisor.healthy()

            # channel and hub survived the rebuild: the same subscriber
            # sees elements ingested after the restart
            for i in range(3):
                await supervisor.ingest(
                    "rf", StreamTuple(schema, ("p", i, 1.0))
                )
            await supervisor.drain(timeout=10)
            assert managed.state is FlowState.DRAINED
            await asyncio.wait_for(consumer, 10)  # hub closed on drain
            assert collected == [0, 1, 2]

        asyncio.run(main())

    def test_crash_loop_beyond_budget_fails_and_503s(self):
        async def main():
            flow, schema = echo_flow("ff", predicate=poison_predicate)
            supervisor = FlowSupervisor(
                queue_capacity=8, restart_limit=1, backoff_base=0.01
            )
            managed = supervisor.admit(flow)
            server = StreamServer(supervisor)
            host, port = await server.start()

            await wait_until(lambda: managed.state is FlowState.RUNNING)
            await supervisor.ingest(
                "ff", StreamTuple(schema, ("p", 0, -1.0))
            )
            await wait_until(lambda: managed.restarts >= 1)
            # a second poison exhausts the restart budget of 1
            await supervisor.ingest(
                "ff", StreamTuple(schema, ("p", 1, -1.0))
            )
            await wait_until(lambda: managed.state is FlowState.FAILED)
            assert len(managed.crashes) == 2
            assert not supervisor.healthy()

            with pytest.raises(ServingError, match="failed"):
                await supervisor.ingest(
                    "ff", StreamTuple(schema, ("p", 2, 1.0))
                )

            status, body = await get_json(host, port, "/healthz")
            assert status == 503
            assert body["status"] == "degraded"
            assert body["flows"]["ff"] == "failed"

            await server.aclose(drain=False)

        asyncio.run(main())


# ---------------------------------------------------------------------------
# clean drain: exactly-once parity between the socket and the delivery log
# ---------------------------------------------------------------------------


class TestDrainParity:
    def test_drain_delivers_everything_and_log_matches_subscriber(self):
        async def main():
            store = MemoryCheckpointStore()
            flow, _schema = echo_flow("dur")
            supervisor = FlowSupervisor(
                queue_capacity=8,
                engine_options={"checkpoint_store": store},
            )
            supervisor.admit(flow)
            server = StreamServer(supervisor)
            host, port = await server.start()

            total = 25
            received = []

            async def subscriber():
                stream = sse_subscribe(
                    host, port, f"/v1/flows/dur/stream?limit={total}"
                )
                async for event in stream:
                    received.append((event["client"], event["seq"]))

            subscription = asyncio.ensure_future(subscriber())
            await asyncio.sleep(0.05)

            sent = [
                {"client": "d", "seq": i, "value": i / 2.0}
                for i in range(total)
            ]
            status, body = await post_json(
                host, port, "/v1/flows/dur/ingest", sent
            )
            assert status == 202
            assert body == {"admitted": total}

            await asyncio.wait_for(subscription, 10)
            await server.aclose(drain=True)
            assert supervisor.status()["dur"]["state"] == "drained"

            # exactly-once parity: the durable delivery log holds the
            # same sequence the socket subscriber observed, no gaps and
            # no duplicates
            assert received == [("d", i) for i in range(total)]
            log = store.read_delivery_log("out")
            logged = [(tup["client"], tup["seq"]) for _arrival, tup in log]
            assert logged == received

        asyncio.run(main())

    def test_abort_flushes_partial_delivery_log(self, tmp_path):
        """Regression: cancellation used to drop the buffered log tail.

        The directory store's delivery writer buffers entries and only
        makes them durable at ``flush()``; with no checkpoint marker in
        flight, a cancelled run would discard every pre-abort delivery.
        ``on_run_aborted`` now flushes the seam, so the partial log
        survives and recovery's replay-window dedup can do its job.
        """

        async def main():
            schema = make_schema()
            store = DirectoryCheckpointStore(tmp_path)
            flow = Flow("abort")
            flow.ingest(schema, name="in", capacity=8).collect_awaitable(
                "sink"
            )
            plan = flow.build(queue_capacity=8)
            engine = create_engine(
                "asyncio", plan, timeout=None, checkpoint_store=store
            )
            run = asyncio.ensure_future(engine.arun())
            sink = plan.operator("sink")

            channel = flow.channel()
            for i in range(5):
                await channel.put(StreamTuple(schema, ("a", i, 0.0)))
            await wait_until(lambda: len(sink.results) >= 5)

            # nothing flushed yet: the log is still buffered in the writer
            assert store.read_delivery_log("sink") == []

            run.cancel()
            await asyncio.gather(run, return_exceptions=True)

            log = store.read_delivery_log("sink")
            assert [tup["seq"] for _arrival, tup in log] == [0, 1, 2, 3, 4]

        asyncio.run(main())
