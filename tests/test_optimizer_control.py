"""Control plane under fusion: explicit regressions.

The equivalence harness proves behaviour statistically; this suite pins
the specific control-plane interactions the ISSUE names: pause/resume
watermarks through a fused composite, cross-shard feedback broadcast
with ``optimize=True``, and checkpoint marker alignment (epoch
completion requires state under the composite's *own* name).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import (
    FeedbackIntent,
    FeedbackPunctuation,
    Flow,
    FusedOperator,
    Pattern,
    Schema,
    StreamTuple,
)
from repro.durability import MemoryCheckpointStore
from repro.optimizer import optimize

SCHEMA = Schema([
    ("ts", "timestamp", True), ("sensor", "int"), ("value", "float"),
])

ENGINES = ["simulated", "threaded", "asyncio"]


def rows(n=400, dt=0.01):
    return [
        (i * dt, StreamTuple(SCHEMA, (i * dt, i % 4, float(i))))
        for i in range(n)
    ]


def chain_flow(n=400, *, keep_punctuation=False):
    """source -> where -> extend -> where: a 3-stage fusible chain."""
    flow = Flow("control")
    (
        flow.source(SCHEMA, rows(n), name="src")
        .punctuate(on="ts", every=0.5)
        .where(lambda t: t["sensor"] != 3, name="keep")
        .extend([("double", "float")], lambda t: (t["value"] * 2,),
                name="ext")
        .where(lambda t: t["double"] >= 0.0, name="clip")
        .collect("sink", keep_punctuation=keep_punctuation)
    )
    return flow


def data(result):
    return Counter(tuple(t.values) for t in result.sink("sink").results)


class TestPauseResumeThroughFusion:
    """Bounded queues pause and resume the composite as one unit."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_watermark_parity_and_bounded_peak(self, engine):
        base = chain_flow().run(engine, queue_capacity=32)
        opt = chain_flow().run(engine, queue_capacity=32, optimize=True)
        assert data(base) == data(opt)
        # The fused plan's queues are bounded and actually exercised:
        # occupancy stays near the watermark instead of absorbing the
        # whole burst, so backpressure survived the rewrite.
        for key, queue in opt.metrics.queue_metrics.items():
            assert queue.capacity == 32, key
            assert queue.peak_occupancy <= 32 + 64, key  # cap + one page

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fused_operator_received_the_pauses(self, engine):
        opt = chain_flow().run(engine, queue_capacity=32, optimize=True)
        fused = opt.metrics.operator_metrics["keep+ext+clip"]
        source = opt.metrics.operator_metrics["src"]
        # Somebody upstream of the bottleneck was paused at least once
        # on a 400-element burst through cap-32 queues.
        assert source.pauses_received + fused.pauses_received > 0
        assert source.resumes_received + fused.resumes_received > 0


class TestFeedbackThroughFusion:
    def test_feedback_reaches_source_through_composite(self):
        out_schema = SCHEMA.concat(Schema([("double", "float")]))
        feedback = FeedbackPunctuation(
            FeedbackIntent.ASSUMED,
            Pattern.from_mapping(out_schema, {"sensor": 1}),
        )
        base = chain_flow().run(
            "simulated", feedback=[(1.0, "sink", feedback)]
        )
        opt = chain_flow().run(
            "simulated", feedback=[(1.0, "sink", feedback)],
            optimize=True,
        )
        assert data(base) == data(opt)
        for name in ("src",):
            b = base.metrics.operator_metrics[name]
            o = opt.metrics.operator_metrics[name]
            assert b.feedback_received == o.feedback_received > 0
            assert b.output_guard_drops == o.output_guard_drops > 0
        # The composite folded its stages' metrics into the report.
        assert "keep+ext+clip::keep" in opt.metrics.operator_metrics
        stage = opt.metrics.operator_metrics["keep+ext+clip::keep"]
        assert stage.feedback_received > 0

    def test_cross_shard_feedback_broadcast_with_optimize(self):
        """Lane interiors fuse (boundaries stay), the region record is
        rewritten to name the composites, and feedback still broadcasts
        across the region identically."""

        def shard_flow():
            flow = Flow("sharded")
            (
                flow.source(SCHEMA, rows(200, dt=0.05), name="src")
                .punctuate(on="ts", every=1.0)
                .shard(
                    2, key="sensor", name="region",
                    pipeline=lambda lane: lane
                    .where(lambda t: t["value"] >= 0.0)
                    .extend([("double", "float")],
                            lambda t: (t["value"] * 2,)),
                )
                .collect("sink")
            )
            return flow

        plan = shard_flow().build()
        report = optimize(plan)
        assert sorted(name for name, _ in report.fused) == [
            "where+map", "where_2+map_2"
        ]  # one composite per lane interior
        # The boundaries stay materialized (they anchor the region's
        # control plane) and the region record now names the composites.
        reasons = dict(report.declined)
        assert "Partition" in reasons["region"]
        assert "ShardMerge" in reasons["region_merge"]
        region = next(g for g in plan.shard_groups if g.name == "region")
        assert region.lanes == (("where+map",), ("where_2+map_2",))

        out_schema = SCHEMA.concat(Schema([("double", "float")]))
        feedback = FeedbackPunctuation(
            FeedbackIntent.ASSUMED,
            Pattern.from_mapping(out_schema, {"sensor": 1}),
        )
        base = shard_flow().run(
            "simulated", feedback=[(2.0, "sink", feedback)]
        )
        opt = shard_flow().run(
            "simulated", feedback=[(2.0, "sink", feedback)],
            optimize=True,
        )
        assert data(base) == data(opt)
        assert (
            base.metrics.operator_metrics["src"].output_guard_drops
            == opt.metrics.operator_metrics["src"].output_guard_drops
        )


class TestCheckpointsThroughFusion:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_marker_alignment_and_epoch_completion(self, engine):
        store = MemoryCheckpointStore()
        base = chain_flow().run(engine, checkpoint_every=100)
        opt = chain_flow().run(
            engine, checkpoint_every=100, checkpoint_store=store,
            optimize=True,
        )
        assert data(base) == data(opt)
        assert (
            opt.metrics.checkpoint_epochs
            == base.metrics.checkpoint_epochs
            == 4
        )
        # Epoch completion requires state per operator *name*: the
        # composite snapshots under its deterministic fused name.
        assert store.has_state(1, "keep+ext+clip")
        assert store.has_state(1, "sink")

    def test_markers_align_through_fused_union_arms(self):
        """Two fused arms into a union: the union still aligns markers
        arriving through the composites."""

        def union_flow():
            flow = Flow("aligned")
            a = (
                flow.source(SCHEMA, rows(120, dt=0.05), name="a")
                .punctuate(on="ts", every=1.0)
                .where(lambda t: t["sensor"] != 3, name="fa")
                .extend([("tag", "int")], lambda t: (0,), name="ea")
            )
            b = (
                flow.source(SCHEMA, rows(120, dt=0.05), name="b")
                .punctuate(on="ts", every=1.0)
                .where(lambda t: t["sensor"] != 2, name="fb")
                .extend([("tag", "int")], lambda t: (1,), name="eb")
            )
            a.union(b, name="merge").collect("sink")
            return flow

        base = union_flow().run(checkpoint_every=40)
        opt = union_flow().run(checkpoint_every=40, optimize=True)
        assert data(base) == data(opt)
        assert (
            opt.metrics.checkpoint_epochs
            == base.metrics.checkpoint_epochs
            >= 1
        )


class TestCompositeProtocolDirect:
    """FusedOperator unit behaviour that engine runs exercise only
    indirectly."""

    def test_set_now_reaches_stages(self):
        plan = chain_flow().build()
        optimize(plan)
        fused = plan.operator("keep+ext+clip")
        assert isinstance(fused, FusedOperator)
        fused.set_now(42.0)
        assert all(s.now() == 42.0 for s in fused.fused_stages)

    def test_stage_metrics_report(self):
        opt = chain_flow().run(optimize=True)
        fused_plan_metrics = opt.metrics.operator_metrics
        composite = fused_plan_metrics["keep+ext+clip"]
        stages = {
            name: fused_plan_metrics[f"keep+ext+clip::{name}"]
            for name in ("keep", "ext", "clip")
        }
        # Data flowed through every stage, and the composite's own
        # tuples_in matches the head stage's.
        assert composite.tuples_in == stages["keep"].tuples_in > 0
        assert stages["ext"].tuples_in == stages["keep"].tuples_out
        assert stages["clip"].tuples_in == stages["ext"].tuples_out

    def test_feedback_unaware_tail_stops_feedback(self):
        """A composite ending in a feedback-unaware stage ignores
        feedback exactly as the materialized chain would."""
        from repro.operators import PassThrough

        def flow_with_passthrough():
            flow = Flow("pt")
            (
                flow.source(SCHEMA, rows(50, dt=0.05), name="src")
                .punctuate(on="ts", every=1.0)
                .where(lambda t: t["sensor"] != 3, name="keep")
                .apply(lambda: PassThrough("pt", SCHEMA))
                .collect("sink")
            )
            return flow

        feedback = FeedbackPunctuation(
            FeedbackIntent.ASSUMED,
            Pattern.from_mapping(SCHEMA, {"sensor": 1}),
        )
        base = flow_with_passthrough().run(
            "simulated", feedback=[(1.0, "sink", feedback)]
        )
        opt = flow_with_passthrough().run(
            "simulated", feedback=[(1.0, "sink", feedback)],
            optimize=True,
        )
        assert data(base) == data(opt)
        assert (
            base.metrics.operator_metrics["src"].output_guard_drops
            == opt.metrics.operator_metrics["src"].output_guard_drops
            == 0  # the unaware stage stopped the relay in both plans
        )
