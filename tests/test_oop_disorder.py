"""Out-of-order processing: disorder-insensitivity via punctuation.

NiagaraST's OOP architecture (paper section 5) separates stream progress
from arrival order: operators key on punctuation, not on physical order.
These tests run the same logical stream in order and shuffled (with the
grace-aware punctuator) and require identical results, plus PACE's
behaviour under bursty arrivals.
"""


from repro.engine import QueryPlan, Simulator
from repro.operators import (
    AggregateKind,
    CollectSink,
    ListSource,
    WindowAggregate,
)
from repro.punctuation import ProgressPunctuator
from repro.stream import Schema, StreamTuple
from repro.workloads import inject_bursts, inject_disorder

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])


def logical_rows(n=120):
    return [
        StreamTuple(SCHEMA, (i * 0.5, i % 3, float(i))) for i in range(n)
    ]


def with_punctuation(timeline, grace):
    """Re-punctuate an arrival timeline with the given grace."""
    punctuator = ProgressPunctuator(SCHEMA, "ts", interval=6.0, grace=grace)
    out = []
    for arrival, tup in timeline:
        out.append((arrival, tup))
        for punct in punctuator.observe(tup["ts"]):
            out.append((arrival, punct))
    out.append((timeline[-1][0], punctuator.final()))
    return out


def run_aggregate(timeline):
    plan = QueryPlan("oop")
    source = ListSource("source", SCHEMA, timeline)
    agg = WindowAggregate(
        "agg", SCHEMA, kind=AggregateKind.SUM,
        window_attribute="ts", width=6.0,
        value_attribute="v", group_by=("seg",),
    )
    sink = CollectSink("sink", agg.output_schema)
    plan.add(source)
    plan.chain(source, agg, sink, page_size=8)
    Simulator(plan).run()
    return sorted(t.values for t in sink.results)


class TestOrderInsensitivity:
    def test_disorder_with_adequate_grace_gives_identical_results(self):
        rows = logical_rows()
        in_order = [(t["ts"], t) for t in rows]
        disordered = inject_disorder(
            in_order, fraction=0.4, max_delay=3.0, seed=11
        )
        # Grace must cover the injected delay so punctuation stays truthful.
        reference = run_aggregate(with_punctuation(in_order, grace=0.0))
        shuffled = run_aggregate(with_punctuation(disordered, grace=3.5))
        assert reference == shuffled

    def test_disorder_results_nonempty_and_complete(self):
        rows = logical_rows()
        in_order = [(t["ts"], t) for t in rows]
        disordered = inject_disorder(
            in_order, fraction=0.6, max_delay=2.0, seed=5
        )
        results = run_aggregate(with_punctuation(disordered, grace=2.5))
        total = sum(v for *_rest, v in results)
        assert total == sum(t["v"] for t in rows)

    def test_bursty_arrivals_same_results(self):
        rows = logical_rows()
        in_order = [(t["ts"], t) for t in rows]
        bursty = inject_bursts(in_order, period=10.0, burst_fraction=0.05)
        reference = run_aggregate(with_punctuation(in_order, grace=0.0))
        burst_run = run_aggregate(with_punctuation(bursty, grace=0.0))
        assert reference == burst_run

    def test_punctuation_timeliness_under_disorder(self):
        """State is still purged incrementally, not only at end of stream."""
        rows = logical_rows()
        in_order = [(t["ts"], t) for t in rows]
        disordered = inject_disorder(
            in_order, fraction=0.3, max_delay=2.0, seed=2
        )
        plan = QueryPlan("purge")
        source = ListSource(
            "source", SCHEMA, with_punctuation(disordered, grace=2.5)
        )
        agg = WindowAggregate(
            "agg", SCHEMA, kind=AggregateKind.SUM,
            window_attribute="ts", width=6.0,
            value_attribute="v", group_by=("seg",),
        )
        sink = CollectSink("sink", agg.output_schema)
        plan.add(source)
        plan.chain(source, agg, sink, page_size=8)
        Simulator(plan).run()
        # Peak live state far below total (window, seg) pairs: windows
        # closed as punctuation passed.
        total_pairs = len({(int(t["ts"] // 6.0), t["seg"]) for t in rows})
        assert agg.metrics.peak_state_size < total_pairs
