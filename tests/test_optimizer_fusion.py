"""Optimizer unit tests: rewrite primitives, pass mechanics, rendering.

The differential harness (``tests/test_optimizer_equivalence.py``)
proves whole-plan equivalence; this file pins the pieces: the
``QueryPlan`` rewrite API, the fusibility criteria and recorded
declines, guard pushdown and projection pruning in isolation, composite
construction errors, and honest ``describe()``/``to_dot()`` rendering
(including the ``(cap=N)`` queue-configuration regression).
"""

from __future__ import annotations

import pytest

from repro import (
    Flow,
    FusedOperator,
    Pattern,
    QueryPlan,
    Schema,
    Select,
    StreamTuple,
)
from repro.errors import PlanError
from repro.operators import ListSource, PassThrough, Project
from repro.optimizer import optimize
from repro.optimizer.fusion import fusible_reason, shard_bound_names

SCHEMA = Schema([
    ("ts", "timestamp", True), ("sensor", "int"), ("value", "float"),
])


def rows(n=40):
    return [
        (i * 0.1, StreamTuple(SCHEMA, (i * 0.1, i % 4, float(i))))
        for i in range(n)
    ]


def chain_flow():
    flow = Flow("unit")
    (
        flow.source(SCHEMA, rows(), name="src")
        .punctuate(on="ts", every=1.0)
        .where(lambda t: t["sensor"] != 3, name="keep")
        .extend([("double", "float")], lambda t: (t["value"] * 2,),
                name="ext")
        .where(lambda t: t["double"] >= 0.0, name="clip")
        .collect("sink")
    )
    return flow


class TestRewritePrimitives:
    def build(self):
        plan = QueryPlan("rw")
        src = plan.add(ListSource("src", SCHEMA, rows()))
        mid = plan.add(PassThrough("mid", SCHEMA))
        sink_flow = plan.add(PassThrough("tail", SCHEMA))
        e1 = plan.connect(src, mid, capacity=16, low_water=4, page_size=8)
        e2 = plan.connect(mid, sink_flow)
        return plan, src, mid, sink_flow, e1, e2

    def test_disconnect_frees_both_endpoints(self):
        plan, src, mid, _, e1, _ = self.build()
        plan.disconnect(e1)
        assert e1 not in src.outputs
        assert mid.inputs[0] is None
        assert e1 not in plan.edges

    def test_disconnect_unknown_edge_rejected(self):
        plan, *_, e1, _ = self.build()
        plan.disconnect(e1)
        with pytest.raises(PlanError):
            plan.disconnect(e1)

    def test_remove_operator_requires_full_unwiring(self):
        plan, _, mid, _, e1, e2 = self.build()
        with pytest.raises(PlanError):
            plan.remove_operator("mid")
        plan.disconnect(e1)
        with pytest.raises(PlanError):
            plan.remove_operator("mid")
        plan.disconnect(e2)
        assert plan.remove_operator("mid") is mid
        assert "mid" not in [op.name for op in plan]

    def test_connect_like_carries_queue_configuration(self):
        plan, src, _, tail, e1, e2 = self.build()
        plan.disconnect(e1)
        plan.disconnect(e2)
        plan.remove_operator("mid")
        new_edge = plan.connect_like(src, tail, e1)
        assert new_edge.queue.capacity == 16
        assert new_edge.queue.low_water == 4
        assert new_edge.queue.page_size == 8

    def test_connect_like_unbounded_edge_stays_unbounded(self):
        plan, src, _, tail, e1, e2 = self.build()
        plan.disconnect(e1)
        plan.disconnect(e2)
        plan.remove_operator("mid")
        new_edge = plan.connect_like(src, tail, e2)
        assert new_edge.queue.capacity is None

    def test_producer_of(self):
        plan, src, mid, _, e1, e2 = self.build()
        assert plan.producer_of(e1) is src
        assert plan.producer_of(e2) is mid


class TestFusibilityCriteria:
    def test_reasons(self):
        plan = chain_flow().build()
        shard_bound = shard_bound_names(plan)
        reasons = {
            op.name: fusible_reason(op, shard_bound) for op in plan
        }
        assert reasons["keep"] is None
        assert reasons["ext"] is None
        assert reasons["clip"] is None
        assert reasons["src"] == "source"
        assert "Sink" in reasons["sink"]

    def test_metered_stage_declines(self):
        flow = Flow("metered")
        (
            flow.source(SCHEMA, rows(), name="src")
            .where(lambda t: True, name="a", tuple_cost=0.001)
            .where(lambda t: True, name="b")
            .collect("sink")
        )
        plan = flow.build()
        report = optimize(plan)
        assert report.fused == []
        assert ("a", "cost-metered (virtual-time charging is per operator)"
                ) in report.declined

    def test_fanout_breaks_the_chain(self):
        """A split in the middle of a stateless run keeps the branch
        point materialized; only unary segments fuse."""
        flow = Flow("fanout")
        stem = (
            flow.source(SCHEMA, rows(), name="src")
            .where(lambda t: True, name="a")
            .extend([("d", "float")], lambda t: (t["value"],), name="b")
        )
        left, right = stem.split(2)
        left.where(lambda t: t["sensor"] == 0, name="l").collect("ls")
        right.where(lambda t: t["sensor"] != 0, name="r").collect("rs")
        plan = flow.build()
        report = optimize(plan)
        assert [name for name, _ in report.fused] == ["a+b"]

    def test_fused_composite_is_not_refused(self):
        """optimize() is idempotent: a second run leaves the plan alone."""
        plan = chain_flow().build()
        first = optimize(plan)
        assert first.changed
        second = optimize(plan)
        assert not second.changed
        assert any(
            "keep+ext+clip" == name and "stateful" in reason
            for name, reason in second.declined
        )


class TestCompositeConstruction:
    def unwired(self):
        return [
            Select("a", SCHEMA, lambda t: True),
            PassThrough("b", SCHEMA),
        ]

    def test_needs_two_stages(self):
        with pytest.raises(PlanError, match="at least two"):
            FusedOperator(self.unwired()[:1])

    def test_rejects_wired_stages(self):
        plan = QueryPlan("wired")
        a, b = (plan.add(op) for op in self.unwired())
        plan.connect(a, b)
        with pytest.raises(PlanError, match="still wired"):
            FusedOperator([a, b])

    def test_name_and_schema(self):
        fused = FusedOperator(self.unwired())
        assert fused.name == "a+b"
        assert fused.stage_names == ("a", "b")
        assert fused.output_schema == SCHEMA

    def test_composite_is_not_checkpoint_capable(self):
        """Stages are stateless, so the composite must not advertise
        snapshot state -- epoch completion skips it accordingly."""
        from repro.engine.plan import checkpoint_capable

        assert not checkpoint_capable(FusedOperator)


class TestPushdownUnit:
    def test_select_pushed_past_extend(self):
        flow = Flow("push")
        (
            flow.source(SCHEMA, rows(), name="src")
            .extend([("double", "float")], lambda t: (t["value"] * 2,),
                    name="ext")
            .where(Pattern.from_mapping(
                SCHEMA.concat(Schema([("double", "float")])),
                {"sensor": 1},
            ), name="guard")
            .collect("sink")
        )
        plan = flow.build()
        report = optimize(plan, fuse=False, prune=False)
        assert report.pushed == [("guard", "ext")]
        guard = plan.operator("guard")
        # The rebuilt guard now reads the *source* schema and feeds ext.
        assert guard.output_schema == SCHEMA
        assert plan.operator("ext").inputs[0].producer is guard

    def test_callable_select_stays_put(self):
        plan = chain_flow().build()
        report = optimize(plan, fuse=False, prune=False)
        assert report.pushed == []

    def test_pattern_on_derived_attribute_stays_put(self):
        """A guard constraining an attribute the upstream stage computes
        cannot move above it."""
        flow = Flow("derived")
        out_schema = SCHEMA.concat(Schema([("double", "float")]))
        (
            flow.source(SCHEMA, rows(), name="src")
            .extend([("double", "float")], lambda t: (t["value"] * 2,),
                    name="ext")
            .where(Pattern.from_mapping(out_schema, {"double": 4.0}),
                   name="guard")
            .collect("sink")
        )
        plan = flow.build()
        report = optimize(plan, fuse=False, prune=False)
        assert report.pushed == []


class TestPruningUnit:
    def test_adjacent_projections_compose(self):
        flow = Flow("prune")
        (
            flow.source(SCHEMA, rows(), name="src")
            .select("ts", "sensor", "value")
            .select("ts", "value", name="narrow")
            .collect("sink")
        )
        plan = flow.build()
        report = optimize(plan, fuse=False, pushdown=False)
        assert report.pruned  # at least one projection went away
        narrow = plan.operator("narrow")
        assert isinstance(narrow, Project)
        assert narrow.output_schema.names == ("ts", "value")
        # And it now reads the source schema directly.
        assert narrow.inputs[0].producer.name == "src"

    def test_identity_projection_eliminated(self):
        flow = Flow("identity")
        (
            flow.source(SCHEMA, rows(), name="src")
            .select("ts", "sensor", "value", name="noop")
            .where(lambda t: True, name="keep")
            .collect("sink")
        )
        plan = flow.build()
        report = optimize(plan, fuse=False, pushdown=False)
        assert "noop" in report.pruned
        assert "noop" not in [op.name for op in plan]


class TestRendering:
    def test_describe_shows_fused_trailer(self):
        plan = chain_flow().build()
        optimize(plan)
        text = plan.describe()
        assert "keep+ext+clip" in text
        assert "fused 'keep+ext+clip': keep (Select) -> ext (Map) " \
               "-> clip (Select)" in text

    def test_dot_renders_cluster_with_stage_nodes(self):
        plan = chain_flow().build()
        optimize(plan)
        dot = plan.to_dot()
        assert "cluster_fused_0" in dot
        assert '"keep+ext+clip::keep"' in dot
        assert '"keep+ext+clip::clip"' in dot
        # External edges attach to the head/tail stage nodes, never to a
        # bare composite node.
        assert '"src" -> "keep+ext+clip::keep"' in dot
        assert '"keep+ext+clip::clip" -> "sink"' in dot
        assert '"keep+ext+clip" ->' not in dot

    def test_capacity_label_survives_fusion(self):
        """Regression: per-edge queue configuration must be carried
        through optimizer rewrites and keep rendering as ``(cap=N)``."""
        flow = Flow("cap")
        (
            flow.source(SCHEMA, rows(), name="src")
            .where(lambda t: True, name="a", queue_capacity=64)
            .where(lambda t: True, name="b", queue_capacity=64)
            .collect("sink")
        )
        plan = flow.build()
        assert "(cap=64)" in plan.describe()
        optimize(plan)
        text = plan.describe()
        assert "a+b" in text
        assert "(cap=64)" in text
        feed = plan.operator("a+b").inputs[0]
        assert feed.queue.capacity == 64
