"""Section 4.4 end to end: supportable vs unsupportable feedback.

Runs the bid-auction stream through a guarded operator and verifies the
paper's three cases: time-bounded and auction-bounded feedback expire with
the punctuation that delimits them; amount-bounded feedback never expires
(and the punctuation scheme predicts all three outcomes up front).
"""

import pytest

from repro.core import FeedbackPunctuation
from repro.engine import QueryPlan, Simulator
from repro.engine.audit import audit_quiescence
from repro.operators import CollectSink, ListSource, Select
from repro.punctuation import AtLeast, AtMost, LessThan, Pattern
from repro.workloads.auction import AuctionWorkload, BID_SCHEMA


@pytest.fixture(scope="module")
def workload():
    return AuctionWorkload(auctions=5, bids_per_auction=30)


class TestWorkloadShape:
    def test_counts_and_order(self, workload):
        timeline = workload.timeline()
        arrivals = [t for t, _ in timeline]
        assert arrivals == sorted(arrivals)
        bids = [e for _, e in timeline if not e.is_punctuation]
        assert len(bids) == 5 * 30

    def test_close_punctuation_present_per_auction(self, workload):
        puncts = [e for _, e in workload.timeline() if e.is_punctuation]
        closes = [
            p for p in puncts
            if p.source == "auctioneer"
        ]
        assert len(closes) == 5

    def test_scheme_predictions(self, workload):
        scheme = workload.scheme()
        # "Do not show bids prior to 1:00 pm" -- supportable.
        assert scheme.supports(
            Pattern.from_mapping(BID_SCHEMA, {"timestamp": LessThan(30.0)})
        )
        # "No results for bidder #2 in auction #4" -- supportable (auction
        # ids are delimited by close punctuation).
        assert scheme.supports(
            Pattern.from_mapping(
                BID_SCHEMA, {"auction_id": 4, "bidder_id": 2}
            )
        )
        # "Don't show bids more than $1.00" -- unsupportable.
        assert not scheme.supports(
            Pattern.from_mapping(BID_SCHEMA, {"amount": AtLeast(1.0)})
        )

    def test_invalid_parameters(self):
        from repro.errors import WorkloadError
        with pytest.raises(WorkloadError):
            AuctionWorkload(auctions=0)
        with pytest.raises(WorkloadError):
            AuctionWorkload(duration=0)


def run_with_feedback(workload, pattern, *, drop_final_punctuation=False):
    timeline = workload.timeline()
    if drop_final_punctuation:
        # The end-of-stream punctuation covers everything and legitimately
        # releases every guard; drop it to observe mid-stream state.
        timeline = timeline[:-1]
    plan = QueryPlan("auction")
    source = ListSource("bids", BID_SCHEMA, timeline)
    show = Select("show", BID_SCHEMA, lambda t: True)
    sink = CollectSink("sink", BID_SCHEMA)
    plan.add(source)
    plan.chain(source, show, sink, page_size=8)
    simulator = Simulator(plan)
    fb = FeedbackPunctuation.assumed(pattern)
    simulator.at(0.0, lambda: show.receive_feedback(fb))
    simulator.run()
    return plan, show, sink


class TestExpiration:
    def test_time_bounded_feedback_expires(self, workload):
        pattern = Pattern.from_mapping(
            BID_SCHEMA, {"timestamp": AtMost(30.0)}
        )
        plan, show, sink = run_with_feedback(workload, pattern)
        port = show.input_port(0)
        assert port.guards.active == 0
        assert port.guards.guards_expired == 1
        # The relay pushed the guard all the way to the source, which is
        # where the suppression happened (show's own guard stayed idle).
        assert plan.operator("bids").metrics.output_guard_drops > 0
        # Strict audit: clean -- the source's guard expired too.
        assert audit_quiescence(plan, strict_guards=True).ok

    def test_auction_bounded_feedback_expires_at_close(self, workload):
        pattern = Pattern.from_mapping(
            BID_SCHEMA, {"auction_id": 1, "bidder_id": 2}
        )
        plan, show, sink = run_with_feedback(workload, pattern)
        port = show.input_port(0)
        # The auction-1 close punctuation covers the guard: released.
        assert port.guards.active == 0
        assert port.guards.guards_expired == 1

    def test_amount_bounded_feedback_never_expires(self, workload):
        pattern = Pattern.from_mapping(
            BID_SCHEMA, {"amount": AtLeast(1.0)}
        )
        plan, show, sink = run_with_feedback(
            workload, pattern, drop_final_punctuation=True
        )
        port = show.input_port(0)
        # The guard did its (incorrectly-scoped) job at the source...
        assert plan.operator("bids").metrics.output_guard_drops > 0
        # ...but no punctuation ever covers amounts: predicate-state leak
        # at every operator that enacted it, exactly the section 4.4
        # warning about unsupportable feedback.
        assert port.guards.active == 1
        strict = audit_quiescence(plan, strict_guards=True)
        assert not strict.ok
        assert "show:input[0]" in strict.lingering_guards
        assert "bids:output" in strict.lingering_guards
