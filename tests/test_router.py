"""Tests for the content-based Router and its per-output feedback."""

import pytest

from repro.core import ExploitAction, FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.errors import PlanError
from repro.operators.router import Router
from repro.punctuation import AtLeast, LessThan, Pattern, Punctuation
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])


def tup(ts, seg=0, v=0.0):
    return StreamTuple(SCHEMA, (ts, seg, v))


def make_router(**kwargs):
    routes = [
        Pattern.from_mapping(SCHEMA, {"v": LessThan(10.0)}),
        Pattern.from_mapping(SCHEMA, {"v": AtLeast(10.0)}),
    ]
    return Router("router", SCHEMA, routes, **kwargs)


class TestRouting:
    def test_routes_by_first_match(self):
        harness = OperatorHarness(make_router(), outputs=2)
        harness.push(tup(0, v=5.0))
        harness.push(tup(1, v=50.0))
        assert [t["v"] for t in harness.emitted_tuples(output=0)] == [5.0]
        assert [t["v"] for t in harness.emitted_tuples(output=1)] == [50.0]

    def test_default_output(self):
        router = Router(
            "r", SCHEMA,
            [Pattern.from_mapping(SCHEMA, {"seg": 1})],
            default_output=1,
        )
        harness = OperatorHarness(router, outputs=2)
        harness.push(tup(0, seg=9))
        assert len(harness.emitted_tuples(output=1)) == 1

    def test_unrouted_dropped_without_default(self):
        router = Router(
            "r", SCHEMA, [Pattern.from_mapping(SCHEMA, {"seg": 1})]
        )
        harness = OperatorHarness(router, outputs=1)
        harness.push(tup(0, seg=9))
        assert harness.emitted_tuples(output=0) == []
        assert router.unrouted_drops == 1

    def test_punctuation_broadcast(self):
        harness = OperatorHarness(make_router(), outputs=2)
        harness.push_punctuation(Punctuation.up_to(SCHEMA, "ts", 5.0))
        assert len(harness.emitted_punctuation(output=0)) == 1
        assert len(harness.emitted_punctuation(output=1)) == 1

    def test_validation(self):
        with pytest.raises(PlanError, match="at least one route"):
            Router("r", SCHEMA, [])
        with pytest.raises(PlanError, match="does not fit"):
            Router("r", SCHEMA, [Pattern.build(1)])


class TestPerOutputFeedback:
    def test_feedback_scoped_to_issuing_route(self):
        """Consumer 0 (v<10) rejecting seg=1 must not starve consumer 1."""
        router = make_router()
        harness = OperatorHarness(router, outputs=2)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"seg": 1})
            ),
            from_output=0,
        )
        assert actions == [ExploitAction.GUARD_INPUT,
                           ExploitAction.PROPAGATE]
        harness.push(tup(0, seg=1, v=5.0))    # route 0 + seg 1: dropped
        harness.push(tup(1, seg=1, v=50.0))   # route 1 + seg 1: delivered!
        harness.push(tup(2, seg=2, v=5.0))    # route 0, other seg: delivered
        assert harness.emitted_tuples(output=0) != []
        assert [t["v"] for t in harness.emitted_tuples(output=1)] == [50.0]
        assert router.metrics.input_guard_drops == 1

    def test_relay_carries_scoped_pattern(self):
        harness = OperatorHarness(make_router(), outputs=2)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"seg": 1})
            ),
            from_output=0,
        )
        relayed = harness.upstream_feedback(0)
        assert len(relayed) == 1
        # The relayed pattern is seg=1 AND v<10, not bare seg=1.
        assert relayed[0].pattern.matches((0.0, 1, 5.0))
        assert not relayed[0].pattern.matches((0.0, 1, 50.0))

    def test_disjoint_feedback_is_noop(self):
        """Feedback about tuples the consumer can never see: nothing."""
        harness = OperatorHarness(make_router(), outputs=2)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"v": AtLeast(50.0)})
            ),
            from_output=0,  # consumer 0 only sees v < 10
        )
        assert actions == []
        harness.push(tup(0, v=60.0))
        assert len(harness.emitted_tuples(output=1)) == 1

    def test_unknown_provenance_falls_back_to_output_guard(self):
        router = make_router()
        harness = OperatorHarness(router, outputs=2)
        actions = router.receive_feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"seg": 1})
            ),
            from_edge=None,
        )
        assert ExploitAction.GUARD_OUTPUT in actions

    def test_no_cross_consumer_agreement_needed(self):
        """Contrast with DUPLICATE: one consumer's feedback acts alone."""
        router = make_router()
        harness = OperatorHarness(router, outputs=2)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"seg": 3})
            ),
            from_output=1,
        )
        harness.push(tup(0, seg=3, v=50.0))
        assert harness.emitted_tuples(output=1) == []
        assert router.metrics.input_guard_drops == 1
