"""Unit tests for repro.stream.schema."""

import pytest

from repro.errors import SchemaError
from repro.stream import Attribute, AttributeOrigin, Schema, SchemaMapping


class TestAttribute:
    def test_base_name_strips_qualifier(self):
        assert Attribute("probe.speed").base_name == "speed"
        assert Attribute("speed").base_name == "speed"

    def test_qualified(self):
        attr = Attribute("speed", "float", progressing=False)
        q = attr.qualified("probe")
        assert q.name == "probe.speed"
        assert q.kind == "float"

    def test_requalify_replaces_prefix(self):
        assert Attribute("probe.speed").qualified("detector").name == "detector.speed"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestSchema:
    def test_of_builds_untyped(self):
        s = Schema.of("a", "b", "c")
        assert s.names == ("a", "b", "c")
        assert len(s) == 3

    def test_tuple_specs(self):
        s = Schema([("ts", "timestamp", True), ("v", "float")])
        assert s.attribute("ts").progressing is True
        assert s.attribute("v").kind == "float"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of("a", "b", "a")

    def test_index_of_known(self):
        s = Schema.of("a", "b", "c")
        assert s.index_of("b") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError, match="no attribute"):
            Schema.of("a").index_of("zzz")

    def test_base_name_lookup_when_unambiguous(self):
        s = Schema.of("probe.speed", "detector.id")
        assert s.index_of("speed") == 0
        assert s.index_of("id") == 1

    def test_base_name_lookup_ambiguous_not_indexed(self):
        s = Schema.of("probe.speed", "detector.speed")
        with pytest.raises(SchemaError):
            s.index_of("speed")

    def test_contains(self):
        s = Schema.of("a", "b")
        assert "a" in s
        assert "z" not in s

    def test_equality_and_hash(self):
        s1 = Schema.of("a", "b")
        s2 = Schema.of("a", "b")
        s3 = Schema.of("a", "c")
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != s3

    def test_project(self):
        s = Schema.of("a", "b", "c")
        assert s.project(["c", "a"]).names == ("c", "a")

    def test_concat(self):
        s = Schema.of("a").concat(Schema.of("b"))
        assert s.names == ("a", "b")

    def test_concat_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a").concat(Schema.of("a"))

    def test_qualify(self):
        s = Schema.of("x", "y").qualify("left")
        assert s.names == ("left.x", "left.y")

    def test_rename(self):
        s = Schema.of("x", "y").rename({"x": "z"})
        assert s.names == ("z", "y")

    def test_check_arity(self):
        s = Schema.of("a", "b")
        s.check_arity((1, 2))
        with pytest.raises(SchemaError, match="arity"):
            s.check_arity((1,))

    def test_progressing_indices(self):
        s = Schema([("ts", "timestamp", True), ("v", "float")])
        assert s.progressing_indices() == (0,)


class TestSchemaMapping:
    def test_identity(self):
        s = Schema.of("a", "b")
        m = SchemaMapping.identity(s)
        assert m.exact_origin_in("a", 0).input_attribute == "a"
        assert m.origins_of("b")[0].input_index == 0

    def test_for_join_layout_is_l_j_r(self, stream_a_schema, stream_b_schema):
        m = SchemaMapping.for_join(
            stream_a_schema, stream_b_schema, [("t", "t"), ("id", "id")]
        )
        assert m.output_schema.names == ("a", "t", "id", "b")

    def test_join_attr_has_origins_in_both_inputs(
        self, stream_a_schema, stream_b_schema
    ):
        m = SchemaMapping.for_join(
            stream_a_schema, stream_b_schema, [("t", "t"), ("id", "id")]
        )
        origins = m.origins_of("t")
        assert {o.input_index for o in origins} == {0, 1}

    def test_exclusive_attrs_have_single_origin(
        self, stream_a_schema, stream_b_schema
    ):
        m = SchemaMapping.for_join(
            stream_a_schema, stream_b_schema, [("t", "t"), ("id", "id")]
        )
        assert [o.input_index for o in m.origins_of("a")] == [0]
        assert [o.input_index for o in m.origins_of("b")] == [1]

    def test_computed_attribute_has_no_origin(self):
        out = Schema.of("minute", "avg_speed")
        inp = Schema.of("timestamp", "speed")
        m = SchemaMapping(out, (inp,), {"minute": ()})
        assert m.origins_of("avg_speed") == ()
        assert m.exact_origin_in("avg_speed", 0) is None

    def test_unknown_output_attribute_rejected(self):
        with pytest.raises(SchemaError):
            SchemaMapping(
                Schema.of("a"), (Schema.of("x"),),
                {"zzz": (AttributeOrigin(0, "x"),)},
            )

    def test_bad_input_index_rejected(self):
        with pytest.raises(SchemaError):
            SchemaMapping(
                Schema.of("a"), (Schema.of("x"),),
                {"a": (AttributeOrigin(5, "x"),)},
            )

    def test_unknown_input_attribute_rejected(self):
        with pytest.raises(SchemaError):
            SchemaMapping(
                Schema.of("a"), (Schema.of("x"),),
                {"a": (AttributeOrigin(0, "nope"),)},
            )
