"""Deep propagation chains: hop counts, distance, and attenuation."""


from repro.core import FeedbackPunctuation
from repro.engine import QueryPlan, Simulator
from repro.operators import CollectSink, ListSource, PassThrough, Select
from repro.punctuation import Pattern
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int")])


def rows(n):
    return [
        (i * 0.1, StreamTuple(SCHEMA, (i * 0.1, i % 4))) for i in range(n)
    ]


def build_chain(depth, *, unaware_at=None):
    """source -> select_0 .. select_{depth-1} -> sink."""
    plan = QueryPlan("deep")
    source = ListSource("source", SCHEMA, rows(80))
    plan.add(source)
    upstream = source
    stages = []
    for index in range(depth):
        if unaware_at is not None and index == unaware_at:
            stage = PassThrough(f"stage_{index}", SCHEMA)
        else:
            stage = Select(f"stage_{index}", SCHEMA, lambda t: True)
        plan.add(stage)
        plan.connect(upstream, stage, page_size=8)
        upstream = stage
        stages.append(stage)
    sink = CollectSink("sink", SCHEMA)
    plan.add(sink)
    plan.connect(upstream, sink, page_size=8)
    return plan, source, stages, sink


class TestDeepChains:
    def test_feedback_traverses_six_hops(self):
        plan, source, stages, sink = build_chain(6)
        simulator = Simulator(plan)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"seg": 2})
        )
        simulator.at(0.0, lambda: sink.inject_feedback(fb))
        result = simulator.run()
        assert source.metrics.feedback_received == 1
        # Hop count grows along the chain.
        hops = {
            e.operator: e.feedback.hops for e in result.feedback_log
            if e.operator.startswith("stage_") or e.operator == "source"
        }
        assert hops["stage_5"] == 0          # first receiver
        assert hops["stage_0"] == 5
        assert hops["source"] == 6
        # And suppression happened at the earliest point only.
        assert source.metrics.output_guard_drops == 20
        for stage in stages:
            assert stage.metrics.input_guard_drops == 0

    def test_unaware_stage_blocks_and_still_exploits_downstream(self):
        plan, source, stages, sink = build_chain(6, unaware_at=2)
        simulator = Simulator(plan)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"seg": 2})
        )
        simulator.at(0.0, lambda: sink.inject_feedback(fb))
        simulator.run()
        # The chain stops at the unaware stage_2.
        assert source.metrics.feedback_received == 0
        assert stages[1].metrics.feedback_received == 0
        assert stages[2].metrics.feedback_ignored == 1
        # But the stage right above the unaware one still guards.
        assert stages[3].metrics.input_guard_drops == 20
        # Result correctness is unaffected.
        assert not [r for r in sink.results if r["seg"] == 2]
        assert len(sink.results) == 60

    def test_control_latency_accumulates_per_hop(self):
        plan, source, stages, sink = build_chain(4)
        simulator = Simulator(plan, control_latency=1.0)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"seg": 2})
        )
        simulator.at(0.0, lambda: sink.inject_feedback(fb))
        result = simulator.run()
        times = {
            e.operator: e.time for e in result.feedback_log
            if e.operator == "source" or e.operator.startswith("stage_")
        }
        # Each hop adds at least the control latency.
        assert times["source"] >= times["stage_0"] + 1.0 - 1e-9
        assert times["stage_0"] >= times["stage_3"] + 3.0 - 1e-9
