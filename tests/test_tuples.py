"""Unit tests for repro.stream.tuples."""

import pytest

from repro.errors import SchemaError
from repro.stream import Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema.of("ts", "seg", "speed")


@pytest.fixture
def tup(schema):
    return StreamTuple(schema, (10.0, 3, 55.0))


class TestConstruction:
    def test_arity_checked(self, schema):
        with pytest.raises(SchemaError):
            StreamTuple(schema, (1, 2))

    def test_from_mapping(self, schema):
        t = StreamTuple.from_mapping(schema, {"ts": 1.0, "seg": 2, "speed": 3.0})
        assert t.values == (1.0, 2, 3.0)

    def test_from_mapping_missing_key(self, schema):
        with pytest.raises(SchemaError, match="missing value"):
            StreamTuple.from_mapping(schema, {"ts": 1.0})

    def test_is_not_punctuation(self, tup):
        assert tup.is_punctuation is False


class TestAccess:
    def test_positional(self, tup):
        assert tup[0] == 10.0
        assert tup[2] == 55.0

    def test_by_name(self, tup):
        assert tup["seg"] == 3

    def test_get_with_default(self, tup):
        assert tup.get("speed") == 55.0
        assert tup.get("nope", -1) == -1

    def test_iteration_and_len(self, tup):
        assert list(tup) == [10.0, 3, 55.0]
        assert len(tup) == 3

    def test_as_dict(self, tup):
        assert tup.as_dict() == {"ts": 10.0, "seg": 3, "speed": 55.0}


class TestImmutability:
    def test_setattr_blocked(self, tup):
        with pytest.raises(AttributeError):
            tup.values = (1, 2, 3)

    def test_replace_returns_new(self, tup):
        t2 = tup.replace(speed=60.0)
        assert t2["speed"] == 60.0
        assert tup["speed"] == 55.0


class TestDerivation:
    def test_project(self, tup):
        p = tup.project(["speed", "ts"])
        assert p.values == (55.0, 10.0)
        assert p.schema.names == ("speed", "ts")

    def test_rebind(self, tup):
        other = Schema.of("x", "y", "z")
        assert tup.rebind(other)["x"] == 10.0

    def test_concat(self, schema):
        left = StreamTuple(Schema.of("a"), (1,))
        right = StreamTuple(Schema.of("b"), (2,))
        joined = left.concat(right, Schema.of("a", "b"))
        assert joined.values == (1, 2)


class TestIdentity:
    def test_equal_same_values_and_names(self, schema):
        assert StreamTuple(schema, (1, 2, 3)) == StreamTuple(schema, (1, 2, 3))

    def test_unequal_different_values(self, schema):
        assert StreamTuple(schema, (1, 2, 3)) != StreamTuple(schema, (1, 2, 4))

    def test_hashable_for_multiset_semantics(self, schema):
        s = {StreamTuple(schema, (1, 2, 3)), StreamTuple(schema, (1, 2, 3))}
        assert len(s) == 1

    def test_repr_shows_names(self, tup):
        assert "seg=3" in repr(tup)
