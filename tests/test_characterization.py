"""Unit tests for the Table 1 / Table 2 characterization encodings."""

import pytest

from repro.core import (
    ConstraintShape,
    ExploitAction,
    PropagationBehavior,
    SchemaPartition,
    count_characterization,
    join_characterization,
    max_characterization,
    sum_characterization,
)
from repro.errors import FeedbackError
from repro.punctuation import AtLeast, AtMost, GreaterThan, InSet, LessThan, Pattern
from repro.stream import Schema


@pytest.fixture
def count_schema():
    return Schema.of("segment", "cnt")


@pytest.fixture
def count_char(count_schema):
    return count_characterization(count_schema, ["segment"], "cnt")


@pytest.fixture
def join_schema():
    # (L, J, R) = (a | t, id | b) from section 4.2.
    return Schema.of("a", "t", "id", "b")


@pytest.fixture
def join_char(join_schema):
    return join_characterization(join_schema, ["a"], ["t", "id"], ["b"])


class TestShapes:
    def test_atom_shapes(self):
        from repro.punctuation import Equals, Interval, WILDCARD
        assert ConstraintShape.of_atom(WILDCARD) is ConstraintShape.NONE
        assert ConstraintShape.of_atom(Equals(3)) is ConstraintShape.EXACT
        assert ConstraintShape.of_atom(InSet({1, 2})) is ConstraintShape.EXACT
        assert ConstraintShape.of_atom(AtLeast(5)) is ConstraintShape.LOWER
        assert ConstraintShape.of_atom(GreaterThan(5)) is ConstraintShape.LOWER
        assert ConstraintShape.of_atom(AtMost(5)) is ConstraintShape.UPPER
        assert ConstraintShape.of_atom(LessThan(5)) is ConstraintShape.UPPER
        assert ConstraintShape.of_atom(Interval(1, 5)) is ConstraintShape.RANGE
        assert ConstraintShape.of_atom(Interval(5, 5)) is ConstraintShape.EXACT

    def test_partition_validation(self, count_schema):
        with pytest.raises(FeedbackError, match="unknown"):
            SchemaPartition(count_schema, {"g": ("nope",), "a": ("cnt",)})
        with pytest.raises(FeedbackError, match="two partition groups"):
            SchemaPartition(
                count_schema, {"g": ("segment",), "a": ("segment", "cnt")}
            )
        with pytest.raises(FeedbackError, match="cover"):
            SchemaPartition(count_schema, {"g": ("segment",)})


class TestTable1Count:
    def test_group_feedback_purges_and_guards(self, count_char, count_schema):
        rule = count_char.classify(
            Pattern.from_mapping(count_schema, {"segment": 5})
        )
        assert rule.label == "¬[g, *]"
        assert ExploitAction.PURGE_STATE in rule.exploit
        assert ExploitAction.GUARD_INPUT in rule.exploit
        assert rule.propagation is PropagationBehavior.MAPPED

    def test_exact_count_guards_output_only(self, count_char, count_schema):
        rule = count_char.classify(
            Pattern.from_mapping(count_schema, {"cnt": 7})
        )
        assert rule.label == "¬[*, a]"
        assert rule.exploit == (ExploitAction.GUARD_OUTPUT,)
        assert rule.propagation is PropagationBehavior.NONE

    @pytest.mark.parametrize("atom", [AtLeast(10), GreaterThan(10)])
    def test_lower_bounded_count_purges_state_dependent(
        self, count_char, count_schema, atom
    ):
        rule = count_char.classify(
            Pattern.from_mapping(count_schema, {"cnt": atom})
        )
        assert rule.label.startswith("¬[*, >=a]")
        assert ExploitAction.PURGE_STATE in rule.exploit
        assert rule.propagation is PropagationBehavior.STATE_DEPENDENT

    @pytest.mark.parametrize("atom", [AtMost(10), LessThan(10)])
    def test_upper_bounded_count_guards_output_only(
        self, count_char, count_schema, atom
    ):
        rule = count_char.classify(
            Pattern.from_mapping(count_schema, {"cnt": atom})
        )
        assert rule.exploit == (ExploitAction.GUARD_OUTPUT,)
        assert rule.propagation is PropagationBehavior.NONE

    def test_set_valued_group_is_exact(self, count_char, count_schema):
        rule = count_char.classify(
            Pattern.from_mapping(count_schema, {"segment": InSet({1, 2})})
        )
        assert rule.label == "¬[g, *]"

    def test_unclassifiable_pattern_raises(self, count_char, count_schema):
        # Constraining both g and a at once is not in Table 1.
        pattern = Pattern.from_mapping(
            count_schema, {"segment": 1, "cnt": 2}
        )
        with pytest.raises(FeedbackError):
            count_char.classify(pattern)
        assert count_char.classify_or_none(pattern) is None

    def test_render_contains_all_rows(self, count_char):
        table = count_char.render_table()
        assert "COUNT" in table
        for label in ("¬[g, *]", "¬[*, a]", "¬[*, >=a]", "¬[*, <=a]"):
            assert label in table


class TestTable2Join:
    def test_join_attr_feedback(self, join_char, join_schema):
        rule = join_char.classify(
            Pattern.from_mapping(join_schema, {"t": 3, "id": 4})
        )
        assert rule.label == "¬[*, j∈J, *]"
        assert rule.propagation_targets == (0, 1)
        assert ExploitAction.PURGE_STATE in rule.exploit

    def test_left_only_feedback(self, join_char, join_schema):
        rule = join_char.classify(Pattern.from_mapping(join_schema, {"a": 50}))
        assert rule.label == "¬[l∈L, *, *]"
        assert rule.propagation_targets == (0,)

    def test_right_only_feedback(self, join_char, join_schema):
        rule = join_char.classify(Pattern.from_mapping(join_schema, {"b": 50}))
        assert rule.label == "¬[*, *, r∈R]"
        assert rule.propagation_targets == (1,)

    def test_both_sides_guard_output_no_propagation(
        self, join_char, join_schema
    ):
        rule = join_char.classify(
            Pattern.from_mapping(join_schema, {"a": 50, "b": 50})
        )
        assert rule.label == "¬[l∈L, *, r∈R]"
        assert rule.exploit == (ExploitAction.GUARD_OUTPUT,)
        assert rule.propagation is PropagationBehavior.NONE

    def test_render(self, join_char):
        table = join_char.render_table()
        assert "JOIN" in table and "¬[l∈L, *, r∈R]" in table


class TestMaxAndSum:
    def test_max_lower_bound_closes_windows(self):
        schema = Schema.of("minute", "max_speed")
        char = max_characterization(schema, ["minute"], "max_speed")
        rule = char.classify(
            Pattern.from_mapping(schema, {"max_speed": AtLeast(50)})
        )
        assert ExploitAction.CLOSE_WINDOWS in rule.exploit
        assert ExploitAction.GUARD_INPUT in rule.exploit

    def test_max_upper_bound_only_guards_output(self):
        schema = Schema.of("minute", "max_speed")
        char = max_characterization(schema, ["minute"], "max_speed")
        rule = char.classify(
            Pattern.from_mapping(schema, {"max_speed": AtMost(50)})
        )
        assert rule.exploit == (ExploitAction.GUARD_OUTPUT,)

    def test_sum_value_feedback_always_output_guard(self):
        schema = Schema.of("minute", "total")
        char = sum_characterization(schema, ["minute"], "total")
        for atom in (AtLeast(5), AtMost(5), GreaterThan(5), LessThan(5)):
            rule = char.classify(
                Pattern.from_mapping(schema, {"total": atom})
            )
            assert rule.exploit == (ExploitAction.GUARD_OUTPUT,)
            assert rule.propagation is PropagationBehavior.NONE

    def test_sum_group_feedback_purges(self):
        schema = Schema.of("minute", "total")
        char = sum_characterization(schema, ["minute"], "total")
        rule = char.classify(Pattern.from_mapping(schema, {"minute": 9}))
        assert ExploitAction.PURGE_STATE in rule.exploit
