"""Tests for the operator test harness itself and the error hierarchy."""

import pytest

import repro.errors as errors
from repro.core import FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.operators import Select
from repro.punctuation import Pattern, Punctuation
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int")])


def tup(ts, seg=0):
    return StreamTuple(SCHEMA, (ts, seg))


class TestOperatorHarness:
    def make(self):
        return OperatorHarness(Select("s", SCHEMA, lambda t: True))

    def test_emitted_is_cumulative(self):
        harness = self.make()
        harness.push(tup(1))
        assert len(harness.emitted_tuples()) == 1
        harness.push(tup(2))
        assert len(harness.emitted_tuples()) == 2  # includes the first

    def test_tuples_and_punctuation_do_not_shadow_each_other(self):
        harness = self.make()
        harness.push(tup(1))
        harness.push_punctuation(Punctuation.up_to(SCHEMA, "ts", 1.0))
        assert len(harness.emitted_tuples()) == 1
        assert len(harness.emitted_punctuation()) == 1

    def test_tick_advances_operator_clock(self):
        harness = self.make()
        harness.tick(2.5)
        assert harness.operator.now() == 2.5

    def test_feedback_returns_actions_and_counts(self):
        harness = self.make()
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"seg": 1})
            )
        )
        assert actions
        assert harness.operator.metrics.feedback_received == 1
        assert harness.input_guard_count() == 1

    def test_finish_runs_lifecycle(self):
        harness = self.make()
        harness.finish()
        assert harness.operator.finished
        assert all(p.done for p in harness.operator.inputs if p)

    def test_multiple_outputs(self):
        from repro.operators import Duplicate
        harness = OperatorHarness(Duplicate("d", SCHEMA), outputs=3)
        harness.push(tup(1))
        for output in range(3):
            assert len(harness.emitted_tuples(output=output)) == 1


class TestErrorHierarchy:
    @pytest.mark.parametrize("specific", [
        errors.SchemaError, errors.PatternError, errors.PlanError,
        errors.EngineError, errors.FeedbackError, errors.WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, specific):
        assert issubclass(specific, errors.ReproError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            Schema.of("a", "a")
        with pytest.raises(errors.ReproError):
            Pattern(())
