"""The asyncio engine: coroutine-per-operator policy over RuntimeCore.

Covers what the cross-engine parity suites (test_engine_core,
test_api_flow, test_backpressure, test_sharding -- all of which now run
an ``asyncio`` leg) do not: the async-native surface itself.

* ``Flow.run(engine="asyncio")`` from synchronous code, and
  ``AsyncioEngine.arun()`` awaited from inside a loop;
* ``run()`` inside a running loop is an error (it would deadlock the
  loop on itself), and engines are single-use like every backend;
* ``Flow.from_async_iterable`` ingests async generators on *all three*
  engines with identical content, and concurrent slow feeds overlap on
  one loop (the reason this backend exists);
* ``AwaitableSink`` resolves for concurrent client coroutines and after
  synchronous runs on every engine;
* scheduled actions (``at()``/declarative feedback) fire under the lock,
  their errors re-raise, and ``control_latency`` defers delivery on the
  wall clock exactly as on the threaded runtime;
* ``emulate_costs`` charges the cost model via ``asyncio.sleep`` and
  records it as ``busy_time``;
* the run-level watchdog turns a wedged plan into ``EngineError``.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api import Flow
from repro.core import FeedbackPunctuation
from repro.engine import AsyncioEngine, QueryPlan, create_engine
from repro.errors import EngineError
from repro.operators import (
    AsyncIterableSource,
    AwaitableSink,
    CollectSink,
    ListSource,
)
from repro.punctuation import Pattern
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("k", "int"), ("v", "float")])


def tup(i, keys=5):
    return StreamTuple(SCHEMA, (float(i), i % keys, float(i)))


def timeline(n):
    return [(0.0, tup(i)) for i in range(n)]


def feed(n, *, delay=0.0, keys=5):
    """Factory for an async generator of (arrival, element) pairs."""

    async def events():
        for i in range(n):
            if delay:
                await asyncio.sleep(delay)
            yield float(i), tup(i, keys)

    return events


def linear_flow(n=100):
    flow = Flow("aio")
    (flow.source(SCHEMA, timeline(n))
         .where(lambda t: t["v"] >= 0.0, name="keep")
         .collect("sink"))
    return flow


# ------------------------------------------------------------ entry points


class TestEntryPoints:
    def test_flow_run_by_name(self):
        result = linear_flow().run(engine="asyncio")
        assert len(result.sink("sink").results) == 100

    def test_arun_awaited_inside_a_loop(self):
        async def main():
            engine = create_engine("asyncio", linear_flow().build())
            return await engine.arun()

        result = asyncio.run(main())
        assert len(result.sink("sink").results) == 100

    def test_run_inside_a_running_loop_is_an_error(self):
        async def main():
            engine = create_engine("asyncio", linear_flow().build())
            with pytest.raises(EngineError, match="arun"):
                engine.run()

        asyncio.run(main())

    def test_engines_are_single_use(self):
        engine = AsyncioEngine(linear_flow().build())
        engine.run()
        with pytest.raises(EngineError, match="single-use"):
            engine.run()

    def test_at_after_start_rejected(self):
        engine = AsyncioEngine(linear_flow().build())
        engine.run()
        with pytest.raises(EngineError, match="before calling run"):
            engine.at(0.0, lambda: None)


# --------------------------------------------------------- async ingestion


class TestAsyncIterableSource:
    @pytest.mark.parametrize("engine", ["simulated", "threaded", "asyncio"])
    def test_same_content_on_every_engine(self, engine):
        flow = Flow("ingest")
        flow.from_async_iterable(SCHEMA, feed(40)).collect("sink")
        result = flow.run(engine)
        assert (
            [t["v"] for t in result.sink("sink").results]
            == [float(i) for i in range(40)]
        )

    def test_concurrent_feeds_overlap_on_one_loop(self):
        """Two feeds of N delays each finish in ~N delays, not ~2N: the
        loop parks one coroutine per feed instead of serialising them."""
        n, delay = 10, 0.01
        flow = Flow("overlap")
        a = flow.from_async_iterable(SCHEMA, feed(n, delay=delay), name="a")
        b = flow.from_async_iterable(SCHEMA, feed(n, delay=delay), name="b")
        a.union(b).collect("sink")
        start = time.perf_counter()
        result = flow.run("asyncio", timeout=30.0)
        wall = time.perf_counter() - start
        assert len(result.sink("sink").results) == 2 * n
        # Generous bound: well under the 2*n*delay a serial replay needs.
        assert wall < 1.75 * n * delay

    def test_factory_must_return_async_iterable(self):
        source = AsyncIterableSource("bad", SCHEMA, lambda: [1, 2, 3])
        with pytest.raises(Exception, match="not an async iterable"):
            source.aevents()

    def test_abandoned_sync_bridge_runs_async_cleanup(self):
        """Closing events() mid-stream (an engine aborting) must still
        drive the async generator's awaited cleanup -- a websocket-style
        'finally: await close()' cannot be skipped."""
        closed = []

        async def events():
            try:
                for i in range(100):
                    yield float(i), tup(i)
            finally:
                await asyncio.sleep(0)  # cleanup that genuinely awaits
                closed.append(True)

        source = AsyncIterableSource("feed", SCHEMA, lambda: events())
        bridge = source.events()
        assert next(bridge)[1]["v"] == 0.0
        bridge.close()  # abandonment, not exhaustion
        assert closed == [True]

    def test_feedback_reaches_async_source(self):
        """Assumed feedback installs an output guard on the async source
        exactly as on replayed sources."""
        flow = Flow("fb")
        flow.from_async_iterable(
            SCHEMA, feed(60, delay=0.002), name="src"
        ).where(lambda t: True, name="keep").collect("sink")
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"k": 2})
        )
        result = flow.run("asyncio", feedback=[(0.02, "sink", fb)],
                          timeout=30.0)
        source = result.metrics.operator_metrics["src"]
        assert source.feedback_received == 1
        assert source.output_guard_drops > 0
        late = [t for t in result.sink("sink").results
                if t["k"] == 2 and t["ts"] > 40]
        assert not late


# ---------------------------------------------------------- awaitable sink


class TestAwaitableSink:
    def test_awaited_concurrently_with_arun(self):
        flow = Flow("client")
        flow.from_async_iterable(
            SCHEMA, feed(20, delay=0.001)
        ).collect_awaitable("sink")

        async def main():
            plan = flow.build()
            engine = create_engine("asyncio", plan)
            run = asyncio.ensure_future(engine.arun())
            rows = await plan.operator("sink")  # AwaitableSink.__await__
            result = await run
            return rows, result

        rows, result = asyncio.run(main())
        assert [t["v"] for t in rows] == [float(i) for i in range(20)]
        assert result.sink("sink").results == rows or len(rows) == 20

    @pytest.mark.parametrize("engine", ["simulated", "threaded", "asyncio"])
    def test_resolves_after_synchronous_run(self, engine):
        flow = Flow("after")
        flow.source(SCHEMA, timeline(15)).collect_awaitable("sink")
        result = flow.run(engine)
        sink = result.sink("sink")
        assert isinstance(sink, AwaitableSink)
        rows = asyncio.run(sink.results_async())
        assert len(rows) == 15

    def test_threaded_run_resolves_waiting_loop(self):
        """The threaded runtime finishes the sink on an operator thread;
        completion must hop to the waiting loop via call_soon_threadsafe."""
        plan = QueryPlan("x-thread")
        source = ListSource("src", SCHEMA, timeline(25))
        sink = AwaitableSink("sink", SCHEMA)
        plan.add(source)
        plan.chain(source, sink)

        async def main():
            waiter = asyncio.ensure_future(sink.results_async())
            result = await asyncio.to_thread(
                create_engine("threaded", plan, timeout=30.0).run
            )
            rows = await waiter
            return rows, result

        rows, _result = asyncio.run(main())
        assert len(rows) == 25


# ----------------------------------------------- actions, latency, costs


class TestScheduledActions:
    def test_declarative_feedback_flows_upstream(self):
        flow = Flow("declared")
        flow.from_async_iterable(
            SCHEMA, feed(50, delay=0.002), name="src"
        ).collect("sink")
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"k": 1})
        )
        result = flow.run("asyncio", feedback=[(0.0, "sink", fb)],
                          timeout=30.0)
        assert result.metrics.operator_metrics["src"].feedback_received == 1

    def test_action_errors_re_raise_after_the_run(self):
        flow = linear_flow(500)

        def boom(_plan):
            raise RuntimeError("action exploded")

        with pytest.raises(RuntimeError, match="action exploded"):
            flow.run("asyncio", actions=[(0.0, boom)], timeout=30.0)

    def test_action_after_drain_never_fires(self):
        fired = []
        engine = AsyncioEngine(linear_flow(5).build())
        engine.at(30.0, lambda: fired.append(True))
        engine.run()  # drains in milliseconds; the action is cancelled
        assert fired == []

    def test_control_latency_defers_delivery_on_the_wall_clock(self):
        """Feedback in flight for 50ms lands mid-stream: the guard then
        suppresses later matching tuples (mirrors the threaded test)."""
        flow = Flow("latency")
        flow.from_async_iterable(
            SCHEMA, feed(20, delay=0.01, keys=2), name="src",
        ).collect("sink", page_size=1)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"k": 1})
        )
        result = flow.run(
            "asyncio", feedback=[(0.0, "sink", fb)],
            control_latency=0.05, timeout=30.0,
        )
        source = result.metrics.operator_metrics["src"]
        assert source.feedback_received == 1
        assert source.output_guard_drops > 0
        emitted_matching = [
            t for t in result.sink("sink").results if t["k"] == 1
        ]
        assert len(emitted_matching) < 10


class TestEmulatedCosts:
    def test_costs_slept_and_recorded_as_busy_time(self):
        flow = Flow("costs")
        (flow.source(SCHEMA, timeline(40))
             .where(lambda t: True, name="keep", tuple_cost=0.002)
             .collect("sink"))
        start = time.perf_counter()
        result = flow.run("asyncio", emulate_costs=True, timeout=30.0)
        wall = time.perf_counter() - start
        keep = result.metrics.operator_metrics["keep"]
        assert keep.busy_time == pytest.approx(40 * 0.002, rel=0.05)
        assert wall >= keep.busy_time * 0.9

    def test_costs_overlap_across_operator_coroutines(self):
        """Two independent costed branches sleep concurrently: makespan
        tracks one branch, not the sum (the threaded engine's modeled-
        cost parallelism, on coroutines)."""
        per_branch = 40 * 0.002
        flow = Flow("parallel-costs")
        a = flow.source(SCHEMA, timeline(40), name="sa")
        b = flow.source(SCHEMA, timeline(40), name="sb")
        a = a.where(lambda t: True, name="ka", tuple_cost=0.002)
        b = b.where(lambda t: True, name="kb", tuple_cost=0.002)
        a.union(b).collect("sink")
        start = time.perf_counter()
        flow.run("asyncio", emulate_costs=True, timeout=30.0)
        wall = time.perf_counter() - start
        assert wall < 1.8 * per_branch  # serial would be ~2x + overhead


class TestWatchdog:
    @staticmethod
    def _stuck_plan(sink):
        async def never():
            await asyncio.sleep(3600)
            yield  # pragma: no cover

        plan = QueryPlan("stuck")
        source = AsyncIterableSource("src", SCHEMA, never)
        plan.add(source)
        plan.chain(source, sink)
        return plan

    def test_wedged_plan_raises_engine_error(self):
        engine = AsyncioEngine(
            self._stuck_plan(CollectSink("sink", SCHEMA)), timeout=0.2
        )
        with pytest.raises(EngineError, match="did not finish"):
            engine.run()

    def test_aborted_run_fails_awaitable_sink_waiters(self):
        """A failed run must fail parked client coroutines, not leave
        them awaiting an on_finish that will never come."""
        sink = AwaitableSink("sink", SCHEMA)
        engine = AsyncioEngine(self._stuck_plan(sink), timeout=0.2)

        async def main():
            run = asyncio.ensure_future(engine.arun())
            waiter = asyncio.ensure_future(sink.results_async())
            with pytest.raises(EngineError, match="did not finish"):
                await run
            with pytest.raises(EngineError, match="aborted"):
                # Bounded: the abort settles the waiter; no hang.
                await asyncio.wait_for(waiter, timeout=5.0)

        asyncio.run(main())

    def test_results_async_after_failed_sync_run_raises(self):
        sink = AwaitableSink("sink", SCHEMA)
        engine = AsyncioEngine(self._stuck_plan(sink), timeout=0.2)
        with pytest.raises(EngineError):
            engine.run()
        with pytest.raises(EngineError, match="aborted"):
            asyncio.run(sink.results_async())
