"""Unit tests for PriorityBuffer, sources and sinks."""

import pytest

from repro.core import ExploitAction, FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.errors import WorkloadError
from repro.operators import (
    CollectSink,
    GeneratorSource,
    ListSource,
    OnDemandSink,
    PriorityBuffer,
    PunctuatedSource,
)
from repro.punctuation import Pattern, Punctuation
from repro.stream import Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema([("ts", "timestamp", True), ("seg", "int")])


def tup(schema, ts, seg=0):
    return StreamTuple(schema, (ts, seg))


class TestPriorityBuffer:
    def test_fifo_below_capacity_holds(self, schema):
        buffer = PriorityBuffer("buf", schema, capacity=10)
        harness = OperatorHarness(buffer)
        harness.push(tup(schema, 1.0))
        assert harness.emitted_tuples() == []  # held

    def test_capacity_forces_release_in_order(self, schema):
        buffer = PriorityBuffer("buf", schema, capacity=3)
        harness = OperatorHarness(buffer)
        for i in range(5):
            harness.push(tup(schema, float(i)))
        out = harness.emitted_tuples()
        assert [t["ts"] for t in out] == [0.0, 1.0, 2.0]

    def test_desired_feedback_jumps_queue(self, schema):
        buffer = PriorityBuffer("buf", schema, capacity=100)
        harness = OperatorHarness(buffer)
        for i in range(5):
            harness.push(tup(schema, float(i), seg=i))
        actions = harness.feedback(
            FeedbackPunctuation.desired(
                Pattern.from_mapping(schema, {"seg": 3})
            )
        )
        # Prioritised locally and relayed upstream (desired feedback is
        # always safe to relay: it cannot change any result).
        assert ExploitAction.PRIORITIZE in actions
        assert ExploitAction.PROPAGATE in actions
        out = harness.emitted_tuples()
        assert [t["seg"] for t in out] == [3]
        assert buffer.priority_releases == 1

    def test_desire_guides_future_releases(self, schema):
        buffer = PriorityBuffer("buf", schema, capacity=3)
        harness = OperatorHarness(buffer)
        harness.feedback(
            FeedbackPunctuation.desired(
                Pattern.from_mapping(schema, {"seg": 9})
            )
        )
        harness.push(tup(schema, 0.0, seg=1))
        harness.push(tup(schema, 1.0, seg=9))
        harness.push(tup(schema, 2.0, seg=2))  # hits capacity -> release
        out = harness.emitted_tuples()
        assert [t["seg"] for t in out] == [9]  # the desired one, not FIFO

    def test_punctuation_flushes_covered_pending(self, schema):
        buffer = PriorityBuffer("buf", schema, capacity=100)
        harness = OperatorHarness(buffer)
        harness.push(tup(schema, 1.0))
        harness.push(tup(schema, 20.0))
        harness.push_punctuation(Punctuation.up_to(schema, "ts", 5.0))
        out = harness.emitted_tuples()
        assert [t["ts"] for t in out] == [1.0]
        assert len(harness.emitted_punctuation()) == 1

    def test_assumed_feedback_purges_pending(self, schema):
        buffer = PriorityBuffer("buf", schema, capacity=100)
        harness = OperatorHarness(buffer)
        harness.push(tup(schema, 1.0, seg=1))
        harness.push(tup(schema, 2.0, seg=2))
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"seg": 1})
            )
        )
        harness.finish()
        assert [t["seg"] for t in harness.emitted_tuples()] == [2]

    def test_finish_drains(self, schema):
        buffer = PriorityBuffer("buf", schema, capacity=100)
        harness = OperatorHarness(buffer)
        harness.push(tup(schema, 1.0))
        harness.finish()
        assert len(harness.emitted_tuples()) == 1

    def test_max_desires_bounded(self, schema):
        buffer = PriorityBuffer("buf", schema, capacity=10, max_desires=2)
        harness = OperatorHarness(buffer)
        for seg in range(5):
            harness.feedback(
                FeedbackPunctuation.desired(
                    Pattern.from_mapping(schema, {"seg": seg})
                )
            )
        assert len(buffer._desires) == 2

    def test_bad_capacity(self, schema):
        with pytest.raises(ValueError):
            PriorityBuffer("buf", schema, capacity=0)


class TestSources:
    def test_list_source_replays_in_order(self, schema):
        timeline = [(0.0, tup(schema, 0.0)), (1.0, tup(schema, 1.0))]
        source = ListSource("src", schema, timeline)
        assert list(source.events()) == timeline

    def test_list_source_rejects_decreasing_times(self, schema):
        with pytest.raises(WorkloadError):
            ListSource("src", schema, [
                (1.0, tup(schema, 1.0)), (0.0, tup(schema, 0.0)),
            ])

    def test_generator_source_is_lazy(self, schema):
        calls = []

        def factory():
            calls.append(1)
            yield (0.0, tup(schema, 0.0))

        source = GeneratorSource("src", schema, factory)
        assert calls == []
        assert len(list(source.events())) == 1
        assert calls == [1]

    def test_punctuated_source_interleaves_progress(self, schema):
        timeline = [(float(i), tup(schema, float(i))) for i in range(25)]
        source = PunctuatedSource(
            "src", schema, timeline,
            punctuate_on="ts", punctuation_interval=10.0,
        )
        events = list(source.events())
        puncts = [e for _, e in events if e.is_punctuation]
        # Boundaries at 10 and 20, plus the final all-covering punctuation.
        assert len(puncts) == 3
        assert puncts[-1].pattern.is_all_wildcard

    def test_source_output_guard_suppresses_production(self, schema):
        source = ListSource("src", schema, [])
        harness = OperatorHarness(source)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"seg": 1})
            )
        )
        assert not source.emit(tup(schema, 0.0, seg=1))
        assert source.emit(tup(schema, 0.0, seg=2))
        assert source.metrics.output_guard_drops == 1


class TestSinks:
    def test_collect_sink_records_results_and_times(self, schema):
        sink = CollectSink("sink", schema)
        harness = OperatorHarness(sink, outputs=0)
        harness.tick(3.0)
        sink.process_element(0, tup(schema, 1.0))
        assert len(sink) == 1
        assert sink.arrivals[0][0] == 3.0

    def test_collect_sink_logs_to_runtime(self, schema):
        sink = CollectSink("sink", schema, tag="fig5")
        harness = OperatorHarness(sink, outputs=0)
        sink.process_element(0, tup(schema, 1.0))
        records = sink.runtime.output_log.tagged("fig5")
        assert len(records) == 1

    def test_collect_sink_punctuation_kept_when_asked(self, schema):
        sink = CollectSink("sink", schema, keep_punctuation=True)
        OperatorHarness(sink, outputs=0)
        sink.process_element(0, Punctuation.up_to(schema, "ts", 1.0))
        assert len(sink.punctuations) == 1

    def test_on_demand_sink_poll_sends_result_request(self, schema):
        sink = OnDemandSink("client", schema)
        harness = OperatorHarness(sink, outputs=0)
        sink.poll()
        control = harness._in_controls[0]
        message = control.receive_upstream()
        assert message is not None
        assert message.kind.value == "result_request"
        assert sink.polls == 1

    def test_on_demand_sink_demand_sends_demanded_feedback(self, schema):
        sink = OnDemandSink("client", schema)
        harness = OperatorHarness(sink, outputs=0)
        sink.demand(Pattern.from_mapping(schema, {"seg": 1}))
        sent = harness.upstream_feedback(0)
        assert len(sent) == 1 and sent[0].is_demanded
        assert sink.demands == 1
