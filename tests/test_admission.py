"""Property-based admission control: token buckets under generated load.

Pure-policy tests -- no sockets, no event loop, no wall clock.  The
:class:`~repro.serving.tenancy.TokenBucket` and
:class:`~repro.serving.tenancy.AdmissionController` take ``now`` as a
parameter, so hypothesis can drive thousands of arrival schedules
through them directly and check the two bounds the serving layer's
fairness story rests on:

* **rate bound** -- over any window ``[s, t]``, the number of admissions
  whose *conforming* time falls inside is at most
  ``burst + rate·(t-s)`` (plus one boundary admission);
* **isolation** -- a tenant's delays are a function of its own schedule
  only: interleaving another tenant's flood changes nothing.

Plus the structural invariants: reservations never drop (every delay is
finite and non-negative), conforming times preserve arrival order
(FIFO), and bucket exhausted/refilled transitions log alternating
pause/resume :class:`~repro.core.feedback.FlowControlPunctuation` on
the tenant's virtual edge.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.feedback import FlowControlKind
from repro.errors import ServingError
from repro.serving import AdmissionController, TenantPolicy, TokenBucket

# Bounded, well-conditioned parameter spaces: rates and bursts far from
# float extremes so the closed-form bound below is numerically honest.
rates = st.floats(min_value=0.5, max_value=1000.0)
bursts = st.floats(min_value=1.0, max_value=50.0)
arrivals = st.lists(
    st.floats(min_value=0.0, max_value=30.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60,
).map(sorted)


class TestTokenBucketProperties:
    @given(schedule=arrivals, rate=rates, burst=bursts)
    @settings(max_examples=120, deadline=None)
    def test_never_drops_and_preserves_order(self, schedule, rate, burst):
        bucket = TokenBucket(rate, burst)
        conforming = []
        for now in schedule:
            delay = bucket.reserve(now)
            assert delay >= 0.0
            assert math.isfinite(delay)
            conforming.append(now + delay)
        # FIFO: an earlier arrival never conforms after a later one
        assert conforming == sorted(conforming)
        assert bucket.reservations == len(schedule)

    @given(schedule=arrivals, rate=rates, burst=bursts)
    @settings(max_examples=120, deadline=None)
    def test_conforming_admissions_respect_the_rate_bound(
        self, schedule, rate, burst
    ):
        """No window admits more than burst + rate·window conforming."""
        bucket = TokenBucket(rate, burst)
        conforming = sorted(
            now + bucket.reserve(now) for now in schedule
        )
        for i in range(len(conforming)):
            for j in range(i, len(conforming)):
                window = conforming[j] - conforming[i]
                count = j - i + 1
                assert count <= burst + rate * window + 1.0 + 1e-6, (
                    f"{count} admissions conforming within {window:.4f}s "
                    f"exceeds burst={burst} + rate={rate}·window"
                )

    @given(schedule=arrivals, rate=rates, burst=bursts)
    @settings(max_examples=120, deadline=None)
    def test_peek_predicts_reserve(self, schedule, rate, burst):
        bucket = TokenBucket(rate, burst)
        for now in schedule:
            predicted = bucket.peek(now)
            assert bucket.reserve(now) == pytest.approx(predicted)

    @given(rate=rates, burst=bursts)
    @settings(max_examples=60, deadline=None)
    def test_burst_admits_instantly_from_idle(self, rate, burst):
        bucket = TokenBucket(rate, burst)
        for _ in range(int(math.floor(burst))):
            assert bucket.reserve(0.0) == 0.0

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ServingError, match="rate"):
            TokenBucket(0.0, 10.0)
        with pytest.raises(ServingError, match="burst"):
            TokenBucket(10.0, 0.5)


class TestTenantIsolationProperties:
    @given(
        schedule_a=arrivals,
        schedule_b=arrivals,
        rate_b=rates,
        burst_b=bursts,
    )
    @settings(max_examples=100, deadline=None)
    def test_a_tenants_delays_depend_only_on_its_own_schedule(
        self, schedule_a, schedule_b, rate_b, burst_b
    ):
        """Interleaving tenant A's flood leaves tenant B's delays exact.

        B's bucket is driven with the same ``now`` sequence either way,
        so the delays must be bit-for-bit identical -- fairness by
        construction, not by scheduling luck.
        """
        policy_b = TenantPolicy(rate=rate_b, burst=burst_b, max_flows=1)
        controller = AdmissionController()
        # A is deliberately starved: tiny allowance, heavy schedule
        controller.set_policy(
            "a", TenantPolicy(rate=0.5, burst=1.0, max_flows=1)
        )
        controller.set_policy("b", policy_b)
        merged = sorted(
            [(now, "a") for now in schedule_a]
            + [(now, "b") for now in schedule_b]
        )
        interleaved = [
            controller.reserve(tenant, now)
            for now, tenant in merged
            if tenant == "b"
        ]
        solo = policy_b.bucket()
        alone = [solo.reserve(now) for now in schedule_b]
        assert interleaved == alone

    @given(schedule=arrivals)
    @settings(max_examples=80, deadline=None)
    def test_control_log_alternates_pause_resume_per_tenant(self, schedule):
        controller = AdmissionController(
            TenantPolicy(rate=2.0, burst=1.0, max_flows=1)
        )
        for now in schedule:
            controller.reserve("t", now)
        log = [
            p for p in controller.control_log if p.edge == "t->serving"
        ]
        for index, punctuation in enumerate(log):
            expected = (
                FlowControlKind.PAUSE
                if index % 2 == 0
                else FlowControlKind.RESUME
            )
            assert punctuation.kind is expected
            assert punctuation.issuer == "serving"
        # the paused flag mirrors the last logged transition
        snapshot = controller.snapshot()["t"]
        if log:
            assert snapshot["paused"] == (
                log[-1].kind is FlowControlKind.PAUSE
            )
        else:
            assert not snapshot["paused"]

    @given(schedule=arrivals, rate=rates, burst=bursts)
    @settings(max_examples=80, deadline=None)
    def test_snapshot_counts_delays_consistently(
        self, schedule, rate, burst
    ):
        controller = AdmissionController()
        controller.set_policy(
            "t", TenantPolicy(rate=rate, burst=burst, max_flows=1)
        )
        delays = [controller.reserve("t", now) for now in schedule]
        snapshot = controller.snapshot()["t"]
        assert snapshot["reservations"] == len(schedule)
        assert snapshot["delayed"] == sum(1 for d in delays if d > 0)
        assert snapshot["delay_total"] == pytest.approx(sum(delays))


class TestFlowCaps:
    def test_max_flows_enforced_and_released(self):
        controller = AdmissionController(
            TenantPolicy(rate=10.0, burst=5.0, max_flows=2)
        )
        controller.admit_flow("t", "f1")
        controller.admit_flow("t", "f2")
        with pytest.raises(ServingError, match="limit"):
            controller.admit_flow("t", "f3")
        # another tenant is unaffected by t's saturation
        controller.admit_flow("u", "g1")
        controller.release_flow("t", "f1")
        controller.admit_flow("t", "f3")
        assert controller.flows_of("t") == {"f2", "f3"}

    def test_duplicate_flow_name_rejected(self):
        controller = AdmissionController()
        controller.admit_flow("t", "f")
        with pytest.raises(ServingError, match="already"):
            controller.admit_flow("t", "f")

    def test_policy_reprovisioning_rejected_once_live(self):
        controller = AdmissionController()
        controller.reserve("t", 0.0)
        with pytest.raises(ServingError, match="provisioned"):
            controller.set_policy("t", TenantPolicy())
