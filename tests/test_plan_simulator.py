"""Tests for plan construction/validation and simulator semantics."""

import pytest

from repro.engine import QueryPlan, Simulator
from repro.errors import EngineError, PlanError
from repro.operators import CollectSink, ListSource, PassThrough, Select
from repro.punctuation import Punctuation
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("v", "int")])


def tup(ts, v=0):
    return StreamTuple(SCHEMA, (ts, v))


def timeline(n, spacing=1.0):
    return [(i * spacing, tup(i * spacing, i)) for i in range(n)]


class TestQueryPlan:
    def test_duplicate_names_rejected(self):
        plan = QueryPlan("p")
        plan.add(PassThrough("x", SCHEMA))
        with pytest.raises(PlanError, match="already has"):
            plan.add(PassThrough("x", SCHEMA))

    def test_unconnected_input_rejected(self):
        plan = QueryPlan("p")
        plan.add(Select("lonely", SCHEMA, lambda t: True))
        with pytest.raises(PlanError, match="not connected"):
            plan.validate()

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError, match="empty"):
            QueryPlan("p").validate()

    def test_plan_without_source_rejected(self):
        plan = QueryPlan("p")
        a = PassThrough("a", SCHEMA)
        b = PassThrough("b", SCHEMA)
        plan.connect(a, b)
        with pytest.raises(PlanError):
            plan.validate()

    def test_cycle_detected(self):
        plan = QueryPlan("p")
        a = PassThrough("a", SCHEMA)
        b = PassThrough("b", SCHEMA)
        plan.connect(a, b)
        plan.connect(b, a)  # wiring succeeds; validation must catch it
        with pytest.raises(PlanError, match="cycle"):
            plan._check_acyclic()

    def test_chain_and_describe(self):
        plan = QueryPlan("p")
        src = ListSource("src", SCHEMA, timeline(1))
        mid = PassThrough("mid", SCHEMA)
        sink = CollectSink("sink", SCHEMA)
        plan.add(src)
        last = plan.chain(src, mid, sink)
        assert last is sink
        description = plan.describe()
        assert "src" in description and "(sink)" in description
        assert plan.sources() == [src]
        assert plan.sinks() == [sink]

    def test_operator_lookup(self):
        plan = QueryPlan("p")
        src = ListSource("src", SCHEMA, [])
        plan.add(src)
        assert plan.operator("src") is src
        with pytest.raises(PlanError):
            plan.operator("nope")


class TestSimulatorSemantics:
    def build(self, n=10, tuple_cost=0.0, page_size=4):
        plan = QueryPlan("sim")
        src = ListSource("src", SCHEMA, timeline(n))
        work = PassThrough("work", SCHEMA, tuple_cost=tuple_cost)
        sink = CollectSink("sink", SCHEMA)
        plan.add(src)
        plan.connect(src, work, page_size=page_size)
        plan.connect(work, sink, page_size=page_size)
        return plan, src, work, sink

    def test_all_tuples_delivered(self):
        plan, _, _, sink = self.build(n=10)
        Simulator(plan).run()
        assert len(sink.results) == 10

    def test_busy_time_accounted(self):
        plan, _, work, _ = self.build(n=10, tuple_cost=0.5)
        result = Simulator(plan).run()
        assert work.metrics.busy_time == pytest.approx(5.0)
        assert result.total_work == pytest.approx(5.0)

    def test_emission_times_reflect_processing_cost(self):
        """A slow operator's output carries its virtual completion time."""
        plan, _, _, sink = self.build(n=4, tuple_cost=10.0, page_size=1)
        Simulator(plan).run()
        times = [t for t, _ in sink.arrivals]
        # Tuple i finishes work at >= 10 * (i + 1).
        for i, when in enumerate(times):
            assert when >= 10.0 * (i + 1) - 1e-9

    def test_makespan_at_least_source_horizon(self):
        plan, *_ = self.build(n=10)
        result = Simulator(plan).run()
        assert result.makespan >= 9.0

    def test_determinism(self):
        runs = []
        for _ in range(2):
            plan, _, _, sink = self.build(n=20, tuple_cost=0.1)
            result = Simulator(plan).run()
            runs.append(
                (result.total_work, result.makespan,
                 [t for t, _ in sink.arrivals])
            )
        assert runs[0] == runs[1]

    def test_single_use(self):
        plan, *_ = self.build()
        simulator = Simulator(plan)
        simulator.run()
        with pytest.raises(EngineError):
            simulator.run()

    def test_actions_fire_at_scheduled_time(self):
        plan, _, _, sink = self.build(n=10)
        simulator = Simulator(plan)
        seen = []
        simulator.at(5.0, lambda: seen.append(simulator.clock.now()))
        simulator.run()
        assert seen == [5.0]

    def test_actions_after_start_rejected(self):
        plan, *_ = self.build()
        simulator = Simulator(plan)
        simulator.run()
        with pytest.raises(EngineError):
            simulator.at(1.0, lambda: None)

    def test_max_events_guard(self):
        plan, *_ = self.build(n=50)
        simulator = Simulator(plan, max_events=3)
        with pytest.raises(EngineError, match="max_events"):
            simulator.run()

    def test_control_latency_delays_feedback(self):
        from repro.core import FeedbackPunctuation
        from repro.punctuation import Pattern

        plan = QueryPlan("latency")
        src = ListSource("src", SCHEMA, timeline(30, spacing=1.0))
        keep = Select("keep", SCHEMA, lambda t: True)
        sink = CollectSink("sink", SCHEMA)
        plan.add(src)
        plan.chain(src, keep, sink)
        simulator = Simulator(plan, control_latency=5.0)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"v": 20})
        )
        simulator.at(10.0, lambda: sink.inject_feedback(fb))
        result = simulator.run()
        events = [e for e in result.feedback_log if e.operator == "keep"]
        assert events and events[0].time >= 15.0

    def test_punctuation_flushes_move_results_promptly(self):
        """With large pages, punctuation is what bounds delivery latency."""
        plan = QueryPlan("flush")
        elements = []
        for i in range(3):
            elements.append((float(i), tup(float(i), i)))
            elements.append(
                (float(i), Punctuation.up_to(SCHEMA, "ts", float(i)))
            )
        src = ListSource("src", SCHEMA, elements)
        sink = CollectSink("sink", SCHEMA)
        plan.add(src)
        plan.connect(src, sink, page_size=1000)
        Simulator(plan).run()
        times = [t for t, _ in sink.arrivals]
        assert times == [0.0, 1.0, 2.0]  # not all at end-of-stream
