"""Property-based tests of the pattern algebra (hypothesis).

The feedback framework's correctness rests on three algebraic relations:

* ``matches`` is the ground truth;
* ``subsumes`` is sound w.r.t. matches (if A subsumes B, everything B
  matches, A matches) -- guard expiration and UNION's punctuation
  alignment rely on it;
* ``intersect`` computes exactly the conjunction of match sets --
  DUPLICATE's agreement logic and the propagation planner rely on it.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.punctuation import (
    AtLeast,
    AtMost,
    Equals,
    GreaterThan,
    InSet,
    Interval,
    LessThan,
    Pattern,
    WILDCARD,
)

values = st.integers(min_value=-20, max_value=20)


@st.composite
def atoms(draw):
    kind = draw(st.sampled_from(
        ["wild", "eq", "lt", "le", "gt", "ge", "in", "interval"]
    ))
    if kind == "wild":
        return WILDCARD
    if kind == "eq":
        return Equals(draw(values))
    if kind == "lt":
        return LessThan(draw(values))
    if kind == "le":
        return AtMost(draw(values))
    if kind == "gt":
        return GreaterThan(draw(values))
    if kind == "ge":
        return AtLeast(draw(values))
    if kind == "in":
        members = draw(st.sets(values, min_size=1, max_size=4))
        return InSet(members)
    lo = draw(values)
    hi = draw(st.integers(min_value=lo, max_value=21))
    return Interval(lo, hi)


@st.composite
def patterns(draw, arity=3):
    return Pattern([draw(atoms()) for _ in range(arity)])


def sample_points(arity=3):
    return st.tuples(*([values] * arity))


class TestAtomLaws:
    @given(atoms(), values)
    def test_wildcard_matches_everything_atom_matches_decides(self, atom, v):
        assert WILDCARD.matches(v)
        # matches never raises on comparable ints
        atom.matches(v)

    @given(atoms(), atoms(), values)
    def test_subsumption_soundness(self, a, b, v):
        """a ⊇ b and b matches v ⇒ a matches v."""
        if a.subsumes(b) and b.matches(v):
            assert a.matches(v)

    @given(atoms(), atoms(), values)
    def test_intersection_exactness(self, a, b, v):
        """v ∈ a∩b  ⇔  v ∈ a and v ∈ b."""
        joint = a.intersect(b)
        both = a.matches(v) and b.matches(v)
        if joint is None:
            assert not both
        else:
            assert joint.matches(v) == both

    @given(atoms(), atoms())
    def test_intersection_commutes_on_match_sets(self, a, b):
        ab = a.intersect(b)
        ba = b.intersect(a)
        for v in range(-21, 22):
            ab_matches = ab.matches(v) if ab is not None else False
            ba_matches = ba.matches(v) if ba is not None else False
            assert ab_matches == ba_matches

    @given(atoms())
    def test_subsumes_is_reflexive(self, a):
        assert a.subsumes(a)

    @given(atoms(), atoms(), atoms())
    def test_subsumes_is_transitive(self, a, b, c):
        if a.subsumes(b) and b.subsumes(c):
            assert a.subsumes(c)

    @given(atoms(), atoms())
    def test_disjoint_means_no_common_value(self, a, b):
        if a.is_disjoint(b):
            for v in range(-21, 22):
                assert not (a.matches(v) and b.matches(v))


class TestPatternLaws:
    @given(patterns(), patterns(), sample_points())
    def test_pattern_subsumption_soundness(self, p, q, point):
        if p.subsumes(q) and q.matches(point):
            assert p.matches(point)

    @given(patterns(), patterns(), sample_points())
    def test_pattern_intersection_exactness(self, p, q, point):
        joint = p.intersect(q)
        both = p.matches(point) and q.matches(point)
        if joint is None:
            assert not both
        else:
            assert joint.matches(point) == both

    @given(patterns())
    def test_pattern_subsumes_reflexive(self, p):
        assert p.subsumes(p)

    @given(patterns(), sample_points())
    def test_widen_except_only_loosens(self, p, point):
        widened = p.widen_except([0])
        if p.matches(point):
            assert widened.matches(point)

    @given(patterns())
    def test_projection_preserves_atom_identity(self, p):
        projected = p.project([2, 0])
        assert projected.atoms == (p.atoms[2], p.atoms[0])

    @given(patterns(), sample_points())
    def test_constrained_indices_explain_matching(self, p, point):
        """Changing an unconstrained position never changes the verdict."""
        constrained = set(p.constrained_indices())
        base = p.matches(point)
        for i in range(len(point)):
            if i in constrained:
                continue
            mutated = list(point)
            mutated[i] = 999
            assert p.matches(mutated) == base


class TestGuardExpirationProperty:
    @given(patterns(), patterns())
    def test_expired_guard_could_never_fire_again(self, guard_pattern, punct_pattern):
        """If punctuation subsumes a guard, no punct-future tuple matches it.

        Punctuation semantics: no future tuple matches punct_pattern.  The
        guard is released only when punct ⊇ guard, so any tuple matching
        the guard would match the punctuation -- and thus cannot appear.
        """
        from repro.core import GuardSet
        from repro.punctuation import Punctuation

        guards = GuardSet()
        guards.install(guard_pattern)
        released = guards.expire_with(Punctuation(punct_pattern))
        if released:
            for v0 in range(-21, 22, 7):
                for v1 in range(-21, 22, 7):
                    for v2 in range(-21, 22, 7):
                        point = (v0, v1, v2)
                        if guard_pattern.matches(point):
                            assert punct_pattern.matches(point)
