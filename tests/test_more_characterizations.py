"""Tests for the AVG and MIN characterizations + live MIN conformance."""

import pytest

from repro.core import (
    ExploitAction,
    FeedbackPunctuation,
    PropagationBehavior,
    avg_characterization,
    min_characterization,
)
from repro.engine.harness import OperatorHarness
from repro.operators import AggregateKind, WindowAggregate
from repro.punctuation import AtLeast, AtMost, GreaterThan, LessThan, Pattern
from repro.stream import Schema, StreamTuple

OUT = Schema.of("window", "seg", "value")


class TestAvgCharacterization:
    @pytest.fixture
    def char(self):
        return avg_characterization(OUT, ["window", "seg"], "value")

    def test_group_feedback_purges(self, char):
        rule = char.classify(Pattern.from_mapping(OUT, {"seg": 1}))
        assert ExploitAction.PURGE_STATE in rule.exploit
        assert rule.propagation is PropagationBehavior.MAPPED

    @pytest.mark.parametrize(
        "atom", [AtLeast(5), AtMost(5), GreaterThan(5), LessThan(5)]
    )
    def test_every_value_shape_is_output_guard_only(self, char, atom):
        rule = char.classify(Pattern.from_mapping(OUT, {"value": atom}))
        assert rule.exploit == (ExploitAction.GUARD_OUTPUT,)
        assert rule.propagation is PropagationBehavior.NONE

    def test_render(self, char):
        assert "AVERAGE" in char.render_table()


class TestMinCharacterization:
    @pytest.fixture
    def char(self):
        return min_characterization(OUT, ["window", "seg"], "value")

    @pytest.mark.parametrize("atom", [AtMost(5), LessThan(5)])
    def test_upper_bound_is_certain(self, char, atom):
        rule = char.classify(Pattern.from_mapping(OUT, {"value": atom}))
        assert ExploitAction.CLOSE_WINDOWS in rule.exploit
        assert rule.propagation is PropagationBehavior.STATE_DEPENDENT

    @pytest.mark.parametrize("atom", [AtLeast(5), GreaterThan(5)])
    def test_lower_bound_guards_output_only(self, char, atom):
        rule = char.classify(Pattern.from_mapping(OUT, {"value": atom}))
        assert rule.exploit == (ExploitAction.GUARD_OUTPUT,)

    def test_exact_value_guards_output(self, char):
        rule = char.classify(Pattern.from_mapping(OUT, {"value": 5}))
        assert rule.exploit == (ExploitAction.GUARD_OUTPUT,)


SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])


class TestLiveMinConformance:
    """The live MIN operator behaves as min_characterization tabulates."""

    def make_harness(self):
        agg = WindowAggregate(
            "min", SCHEMA, kind=AggregateKind.MIN,
            window_attribute="ts", width=10.0,
            value_attribute="v", group_by=("seg",),
        )
        return OperatorHarness(agg)

    def test_upper_bound_purges_certain_windows(self):
        harness = self.make_harness()
        agg = harness.operator
        harness.push(StreamTuple(SCHEMA, (1.0, 0, 3.0)))   # min 3: certain
        harness.push(StreamTuple(SCHEMA, (1.0, 1, 9.0)))   # min 9: not
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(agg.output_schema,
                                     {"min_v": AtMost(5.0)})
            )
        )
        assert ExploitAction.PURGE_STATE in actions
        harness.finish()
        results = {r["seg"]: r["min_v"] for r in harness.emitted_tuples()}
        assert 0 not in results
        assert results[1] == 9.0

    def test_lower_bound_only_guards_output(self):
        harness = self.make_harness()
        agg = harness.operator
        harness.push(StreamTuple(SCHEMA, (1.0, 0, 9.0)))
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(agg.output_schema,
                                     {"min_v": AtLeast(5.0)})
            )
        )
        assert actions == [ExploitAction.GUARD_OUTPUT]
        # Min can still shrink below the bound: result survives.
        harness.push(StreamTuple(SCHEMA, (2.0, 0, 2.0)))
        harness.finish()
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["min_v"] == 2.0
