"""Unit tests for Duplicate (multi-consumer agreement), Union and PACE."""

import pytest

from repro.core import ExploitAction, FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.operators import Duplicate, Pace, Union
from repro.punctuation import AtMost, Pattern, Punctuation
from repro.stream import Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema([("ts", "timestamp", True), ("seg", "int")])


def tup(schema, ts, seg=0):
    return StreamTuple(schema, (ts, seg))


class TestDuplicate:
    def test_broadcasts_to_all_outputs(self, schema):
        dup = Duplicate("dup", schema)
        harness = OperatorHarness(dup, outputs=2)
        harness.push(tup(schema, 1.0))
        assert len(harness.emitted_tuples(output=0)) == 1
        assert len(harness.emitted_tuples(output=1)) == 1

    def test_single_consumer_feedback_enacted_directly(self, schema):
        dup = Duplicate("dup", schema)
        harness = OperatorHarness(dup, outputs=1)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"seg": 1})
            )
        )
        assert ExploitAction.GUARD_INPUT in actions
        harness.push(tup(schema, 0, seg=1))
        assert harness.emitted_tuples() == []

    def test_two_consumers_wait_for_agreement(self, schema):
        """One consumer's feedback alone must not suppress anything."""
        dup = Duplicate("dup", schema)
        harness = OperatorHarness(dup, outputs=2)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(schema, {"seg": 1})
        )
        actions = harness.feedback(fb, from_output=0)
        assert ExploitAction.GUARD_INPUT not in actions
        harness.push(tup(schema, 0, seg=1))
        # Both outputs still receive the tuple (identical outputs rule).
        assert len(harness.emitted_tuples(output=0)) == 1
        assert len(harness.emitted_tuples(output=1)) == 1

    def test_two_consumers_agree_on_intersection(self, schema):
        dup = Duplicate("dup", schema)
        harness = OperatorHarness(dup, outputs=2)
        fb0 = FeedbackPunctuation.assumed(
            Pattern.from_mapping(schema, {"seg": 1})
        )
        fb1 = FeedbackPunctuation.assumed(
            Pattern.from_mapping(schema, {"seg": 1, "ts": AtMost(10.0)})
        )
        harness.feedback(fb0, from_output=0)
        actions = harness.feedback(fb1, from_output=1)
        assert ExploitAction.GUARD_INPUT in actions
        # The agreed region is the intersection: seg=1 AND ts<=10.
        harness.push(tup(schema, 5.0, seg=1))    # in both -> dropped
        harness.push(tup(schema, 20.0, seg=1))   # only consumer 0 -> kept
        kept = harness.emitted_tuples(output=0)
        assert [t["ts"] for t in kept] == [20.0]

    def test_agreed_feedback_relays_upstream(self, schema):
        dup = Duplicate("dup", schema)
        harness = OperatorHarness(dup, outputs=2)
        pattern = Pattern.from_mapping(schema, {"seg": 2})
        harness.feedback(
            FeedbackPunctuation.assumed(pattern), from_output=0
        )
        assert harness.upstream_feedback(0) == []  # no agreement yet
        harness.feedback(
            FeedbackPunctuation.assumed(pattern), from_output=1
        )
        relayed = harness.upstream_feedback(0)
        assert len(relayed) == 1
        assert relayed[0].pattern.matches((0.0, 2))


class TestUnion:
    def test_interleaves_inputs(self, schema):
        union = Union("u", schema, arity=2)
        harness = OperatorHarness(union)
        harness.push(tup(schema, 1.0), port=0)
        harness.push(tup(schema, 2.0), port=1)
        assert len(harness.emitted_tuples()) == 2

    def test_punctuation_held_until_covered_on_all_inputs(self, schema):
        union = Union("u", schema, arity=2)
        harness = OperatorHarness(union)
        punct = Punctuation.up_to(schema, "ts", 10.0)
        harness.push_punctuation(punct, port=0)
        assert harness.emitted_punctuation() == []  # port 1 not covered yet
        harness.push_punctuation(punct, port=1)
        assert harness.emitted_punctuation() == [punct]

    def test_wider_punctuation_on_other_input_releases(self, schema):
        union = Union("u", schema, arity=2)
        harness = OperatorHarness(union)
        harness.push_punctuation(
            Punctuation.up_to(schema, "ts", 100.0), port=1
        )
        harness.push_punctuation(
            Punctuation.up_to(schema, "ts", 10.0), port=0
        )
        emitted = harness.emitted_punctuation()
        assert len(emitted) == 1  # the narrower one, now safe

    def test_done_input_counts_as_covered(self, schema):
        union = Union("u", schema, arity=2)
        harness = OperatorHarness(union)
        union.input_port(1).done = True
        union.on_input_done(1)
        harness.push_punctuation(
            Punctuation.up_to(schema, "ts", 10.0), port=0
        )
        assert len(harness.emitted_punctuation()) == 1

    def test_feedback_relays_to_all_inputs(self, schema):
        union = Union("u", schema, arity=3)
        harness = OperatorHarness(union)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"seg": 1})
            )
        )
        for port in range(3):
            assert len(harness.upstream_feedback(port)) == 1


class TestPace:
    def make(self, schema, **kwargs):
        defaults = dict(
            timestamp_attribute="ts", tolerance=5.0, feedback_interval=1.0
        )
        defaults.update(kwargs)
        return Pace("pace", schema, **defaults)

    def test_timely_tuples_pass(self, schema):
        harness = OperatorHarness(self.make(schema))
        harness.push(tup(schema, 10.0), port=0)
        harness.push(tup(schema, 7.0), port=1)  # within tolerance
        assert len(harness.emitted_tuples()) == 2

    def test_late_tuples_dropped(self, schema):
        pace = self.make(schema)
        harness = OperatorHarness(pace)
        harness.push(tup(schema, 10.0), port=0)
        harness.push(tup(schema, 4.0), port=1)  # 6 behind, tolerance 5
        assert len(harness.emitted_tuples()) == 1
        assert pace.late_drops == 1
        assert pace.late_drops_by_port[1] == 1

    def test_feedback_produced_with_watermark_bound(self, schema):
        pace = self.make(schema)
        harness = OperatorHarness(pace)
        harness.push(tup(schema, 10.0), port=0)
        harness.push(tup(schema, 4.0), port=1)
        sent = harness.upstream_feedback(1)
        assert len(sent) == 1
        assert sent[0].is_assumed
        # The paper's bound: everything behind the current high watermark.
        assert sent[0].pattern.matches((10.0, 0))
        assert not sent[0].pattern.matches((10.1, 0))

    def test_feedback_goes_to_lagging_input_only(self, schema):
        pace = self.make(schema)
        harness = OperatorHarness(pace)
        harness.push(tup(schema, 10.0), port=0)
        harness.push(tup(schema, 4.0), port=1)
        assert harness.upstream_feedback(0) == []
        assert len(harness.upstream_feedback(1)) == 1

    def test_no_feedback_when_disabled(self, schema):
        pace = self.make(schema, feedback_enabled=False)
        harness = OperatorHarness(pace)
        harness.push(tup(schema, 10.0), port=0)
        harness.push(tup(schema, 4.0), port=1)
        assert harness.upstream_feedback(1) == []
        assert pace.late_drops == 1  # policy still enforced

    def test_assumed_bound_drops_stragglers_without_new_feedback(self, schema):
        pace = self.make(schema)
        harness = OperatorHarness(pace)
        harness.push(tup(schema, 10.0), port=0)
        harness.push(tup(schema, 4.0), port=1)   # triggers ¬[ts<=10]
        assert pace.metrics.feedback_produced == 1
        harness.push(tup(schema, 9.0), port=1)   # behind assumed bound
        assert pace.metrics.feedback_produced == 1  # no escalation
        assert pace.late_drops == 2

    def test_assumed_progress_punctuation_emitted(self, schema):
        pace = self.make(schema)
        harness = OperatorHarness(pace)
        harness.push(tup(schema, 10.0), port=0)
        harness.push(tup(schema, 4.0), port=1)
        puncts = harness.emitted_punctuation()
        assert len(puncts) == 1
        assert puncts[0].covers(tup(schema, 9.9))

    def test_feedback_interval_rate_limits(self, schema):
        pace = self.make(schema, feedback_interval=100.0)
        harness = OperatorHarness(pace)
        harness.push(tup(schema, 10.0), port=0)
        harness.push(tup(schema, 4.0), port=1)
        harness.push(tup(schema, 20.0), port=0)
        harness.push(tup(schema, 5.0), port=1)  # late again, bound +10 only
        assert pace.metrics.feedback_produced == 1

    def test_tolerance_policy_declares_smaller_region(self, schema):
        pace = self.make(schema, feedback_bound="tolerance")
        harness = OperatorHarness(pace)
        harness.push(tup(schema, 10.0), port=0)
        harness.push(tup(schema, 4.0), port=1)
        sent = harness.upstream_feedback(1)
        assert sent[0].pattern.matches((5.0, 0))
        assert not sent[0].pattern.matches((6.0, 0))

    def test_invalid_bound_policy_rejected(self, schema):
        with pytest.raises(ValueError):
            self.make(schema, feedback_bound="nonsense")


class TestBatchParity:
    """Native on_page for Union/Duplicate must match the per-element path."""

    def elements(self, schema):
        data = [tup(schema, float(i), seg=i % 3) for i in range(20)]
        punct = Punctuation.up_to(schema, "ts", 10.0)
        return data[:10] + [punct] + data[10:]

    def test_union_page_matches_elements(self, schema):
        batched = Union("u_batch", schema, arity=2)
        h_batch = OperatorHarness(batched)
        elementwise = Union("u_elem", schema, arity=2)
        h_elem = OperatorHarness(elementwise)

        page = self.elements(schema)
        batched.process_page(0, page)
        for element in page:
            elementwise.process_element(0, element)

        assert (
            [t.values for t in h_batch.emitted_tuples()]
            == [t.values for t in h_elem.emitted_tuples()]
        )
        assert batched.metrics.tuples_in == elementwise.metrics.tuples_in
        assert batched.metrics.tuples_out == elementwise.metrics.tuples_out
        assert (
            batched.metrics.punctuations_in
            == elementwise.metrics.punctuations_in
        )
        assert batched.metrics.pages_batched == 1

    def test_union_batch_respects_input_guards(self, schema):
        batched = Union("u_batch", schema, arity=2)
        h_batch = OperatorHarness(batched)
        elementwise = Union("u_elem", schema, arity=2)
        h_elem = OperatorHarness(elementwise)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(schema, {"seg": 1})
        )
        for union in (batched, elementwise):
            union.input_port(0).guards.install(fb.pattern, origin=fb, at=0.0)

        page = self.elements(schema)
        batched.process_page(0, page)
        for element in page:
            elementwise.process_element(0, element)

        assert (
            [t.values for t in h_batch.emitted_tuples()]
            == [t.values for t in h_elem.emitted_tuples()]
        )
        assert (
            batched.metrics.input_guard_drops
            == elementwise.metrics.input_guard_drops
            > 0
        )

    def test_duplicate_page_matches_elements(self, schema):
        batched = Duplicate("d_batch", schema)
        h_batch = OperatorHarness(batched, outputs=2)
        elementwise = Duplicate("d_elem", schema)
        h_elem = OperatorHarness(elementwise, outputs=2)

        page = self.elements(schema)
        batched.process_page(0, page)
        for element in page:
            elementwise.process_element(0, element)

        for output in (0, 1):
            assert (
                [t.values for t in h_batch.emitted_tuples(output=output)]
                == [t.values for t in h_elem.emitted_tuples(output=output)]
            )
        assert batched.metrics.tuples_out == elementwise.metrics.tuples_out
        assert batched.metrics.pages_batched == 1

    def test_pace_subclass_keeps_elementwise_semantics(self, schema):
        """PACE overrides on_tuple; the Union batch path must not bypass it."""
        pace = Pace(
            "pace", schema, timestamp_attribute="ts", tolerance=1.0,
        )
        harness = OperatorHarness(pace)
        page = [tup(schema, 10.0), tup(schema, 0.5)]  # second is deep-late
        pace.process_page(0, page)
        assert len(harness.emitted_tuples()) == 1
        assert pace.late_drops == 1
