"""Plan wiring safety (duplicate connect) and the Graphviz export."""

import pytest

from repro import (
    CollectSink,
    ListSource,
    QueryPlan,
    Schema,
    Select,
    StreamTuple,
    Union,
)
from repro.errors import PlanError

SCHEMA = Schema.of("a", "b")


def source(name="src"):
    return ListSource(
        name, SCHEMA,
        [(float(i), StreamTuple(SCHEMA, (i, i))) for i in range(3)],
    )


class TestDuplicateWiring:
    def test_duplicate_consumer_port_rejected(self):
        plan = QueryPlan("dup-wire")
        first, second = source("s1"), source("s2")
        sink = CollectSink("out", SCHEMA)
        plan.connect(first, sink)
        with pytest.raises(PlanError, match="already connected"):
            plan.connect(second, sink)

    def test_rejected_connect_leaves_no_dangling_edge(self):
        """The producer must not keep an output edge nobody drains."""
        plan = QueryPlan("no-dangle")
        first, second = source("s1"), source("s2")
        sink = CollectSink("out", SCHEMA)
        plan.connect(first, sink)
        with pytest.raises(PlanError):
            plan.connect(second, sink)
        assert second.outputs == []
        assert len(plan.edges) == 1
        plan.validate()  # still a consistent plan

    def test_distinct_ports_still_wire(self):
        plan = QueryPlan("two-ports")
        union = Union("u", SCHEMA, arity=2)
        plan.connect(source("s1"), union, port=0)
        plan.connect(source("s2"), union, port=1)
        plan.connect(union, CollectSink("out", SCHEMA))
        plan.validate()

    def test_out_of_range_port_rejected_before_mutation(self):
        plan = QueryPlan("bad-port")
        src = source()
        sink = CollectSink("out", SCHEMA)
        with pytest.raises(PlanError, match="out of range"):
            plan.connect(src, sink, port=3)
        assert src.outputs == []


class TestToDot:
    def plan(self):
        plan = QueryPlan("dotted")
        src = source()
        keep = Select("keep", SCHEMA, lambda t: True)
        plan.chain(src, keep, CollectSink("out", SCHEMA))
        return plan

    def test_valid_digraph_shell(self):
        dot = self.plan().to_dot()
        assert dot.startswith('digraph "dotted" {')
        assert dot.rstrip().endswith("}")

    def test_nodes_and_edges_present(self):
        dot = self.plan().to_dot()
        for op in ("src", "keep", "out"):
            assert f'"{op}" [' in dot
        assert '"src" -> "keep" [label="[0]"];' in dot
        assert '"keep" -> "out" [label="[0]"];' in dot

    def test_shapes_by_role(self):
        dot = self.plan().to_dot()
        assert '"src" [label="src\\nListSource", shape=ellipse];' in dot
        assert 'peripheries=2' in dot  # the sink

    def test_ports_labelled_on_multi_input_operators(self):
        plan = QueryPlan("ports")
        union = Union("u", SCHEMA, arity=2)
        plan.connect(source("s1"), union, port=0)
        plan.connect(source("s2"), union, port=1)
        plan.connect(union, CollectSink("out", SCHEMA))
        dot = plan.to_dot()
        assert '"s1" -> "u" [label="[0]"];' in dot
        assert '"s2" -> "u" [label="[1]"];' in dot
