"""Smoke + shape tests for the experiment drivers (small scale).

The benchmarks run the paper-scale versions; these tests keep the drivers
healthy in the regular suite with scaled-down workloads.
"""

import pytest

from repro.core.centralized import CentralizedMonitor
from repro.engine.harness import OperatorHarness
from repro.experiments import (
    Exp1Config,
    Exp2Config,
    run_arm,
    run_cell,
    run_centralized_ablation,
    run_experiment_2,
    run_pace_bound_ablation,
)
from repro.stream import Schema, StreamTuple


@pytest.fixture(scope="module")
def exp1_config():
    return Exp1Config(tuples=1500)


@pytest.fixture(scope="module")
def exp2_config():
    return Exp2Config(horizon_hours=0.25)


class TestExperiment1:
    def test_no_feedback_arm_diverges(self, exp1_config):
        arm = run_arm(exp1_config, feedback=False)
        assert arm.drop_fraction > 0.85
        assert arm.feedback_messages == 0
        assert arm.clean_delivered == arm.total_clean

    def test_feedback_arm_recovers(self, exp1_config):
        arm = run_arm(exp1_config, feedback=True)
        assert arm.drop_fraction < 0.45
        assert arm.feedback_messages > 0
        assert arm.imputed_dropped_at_impute > 0
        assert arm.lookups_performed < arm.total_dirty

    def test_series_shapes(self, exp1_config):
        arm = run_arm(exp1_config, feedback=True)
        assert len(arm.clean_series) == arm.clean_delivered
        assert len(arm.imputed_series) == arm.imputed_delivered
        times = [t for t, _ in arm.imputed_series]
        assert times == sorted(times)

    def test_accounting_consistency(self, exp1_config):
        arm = run_arm(exp1_config, feedback=True)
        assert (
            arm.imputed_delivered + arm.imputed_dropped == arm.total_dirty
        )


class TestExperiment2:
    def test_scheme_ordering(self, exp2_config):
        cells = {
            scheme: run_cell(exp2_config, scheme, 2.0)
            for scheme in ("F0", "F1", "F2", "F3")
        }
        times = [cells[s].execution_time for s in ("F0", "F1", "F2", "F3")]
        assert times == sorted(times, reverse=True)

    def test_f0_reused_across_frequencies(self, exp2_config):
        table = run_experiment_2(
            exp2_config, schemes=("F0",), frequencies=(2.0, 4.0)
        )
        assert table["F0"][2.0] is table["F0"][4.0]

    def test_rendered_results_visible_segment_only(self, exp2_config):
        f3 = run_cell(exp2_config, "F3", 2.0)
        f0 = run_cell(exp2_config, "F0", 2.0)
        assert f3.results_rendered < f0.results_rendered
        assert f3.feedback_messages > 0

    def test_unknown_scheme_rejected(self, exp2_config):
        with pytest.raises(ValueError):
            run_cell(exp2_config, "F9", 2.0)


class TestAblations:
    def test_pace_bound_ablation_ordering(self, exp1_config):
        fractions = run_pace_bound_ablation(exp1_config)
        assert fractions["watermark"] < fractions["tolerance"]

    def test_centralized_ablation(self, exp2_config):
        comparison = run_centralized_ablation(exp2_config)
        assert comparison.localized_work < comparison.centralized_work
        assert comparison.centralized_data_shipped > 0
        assert "localized" in comparison.summary()


class TestCentralizedMonitor:
    def test_decision_cycle(self):
        schema = Schema([("ts", "timestamp", True), ("v", "int")])
        decisions = []
        monitor = CentralizedMonitor(
            "mon", schema,
            timestamp_attribute="ts",
            transfer_cost=0.1,
            decision_interval=10.0,
            on_decision=lambda when, seen: decisions.append((when, seen)),
        )
        harness = OperatorHarness(monitor, outputs=0)
        for i in range(25):
            harness.push(StreamTuple(schema, (float(i), i)))
        assert monitor.tuples_observed == 25
        assert monitor.decisions_made == 2  # at ts 10 and 20
        assert decisions[0][0] == pytest.approx(10.0)
        assert monitor.data_shipped == 25

    def test_transfer_cost_charged(self):
        schema = Schema([("ts", "timestamp", True)])
        monitor = CentralizedMonitor(
            "mon", schema, timestamp_attribute="ts",
            transfer_cost=0.5, decision_interval=100.0,
        )
        assert monitor.cost_of(StreamTuple(schema, (0.0,))) == 0.5
