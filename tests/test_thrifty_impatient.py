"""Unit tests for the adaptive joins: THRIFTY JOIN and IMPATIENT JOIN."""

import pytest

from repro.engine.harness import OperatorHarness
from repro.errors import PlanError
from repro.operators import ImpatientJoin, ThriftyJoin
from repro.punctuation import Pattern, Punctuation
from repro.stream import Schema, StreamTuple

# The paper's adaptive example: vehicle (probe) and sensor streams joined
# on (window, location).
PROBE = Schema.of("window", "location", "speed")
SENSOR = Schema.of("window", "location", "reading")


def probe(window, location, speed=30.0):
    return StreamTuple(PROBE, (window, location, speed))


def sensor(window, location, reading=1.0):
    return StreamTuple(SENSOR, (window, location, reading))


def window_done(schema, window):
    return Punctuation(Pattern.from_mapping(schema, {"window": window}))


class TestThriftyJoin:
    def make(self):
        return ThriftyJoin(
            "thrifty", PROBE, SENSOR,
            on=[("window", "window"), ("location", "location")],
            probe_inputs=(0,),
        )

    def test_empty_probe_window_triggers_feedback(self):
        join = self.make()
        harness = OperatorHarness(join)
        harness.push(probe(3, 1), port=0)       # window 3 has data
        harness.push_punctuation(window_done(PROBE, 3), port=0)
        assert harness.upstream_feedback(1) == []  # window 3 was not empty
        harness.push_punctuation(window_done(PROBE, 4), port=0)
        sent = harness.upstream_feedback(1)
        assert len(sent) == 1
        assert sent[0].is_assumed
        assert sent[0].pattern.matches((4, 9, 0.0))
        assert not sent[0].pattern.matches((5, 9, 0.0))
        assert join.empty_windows_detected == 1

    def test_local_guard_drops_sensor_tuples_of_empty_window(self):
        join = self.make()
        harness = OperatorHarness(join)
        harness.push_punctuation(window_done(PROBE, 4), port=0)
        harness.push(sensor(4, 1), port=1)
        assert join.metrics.input_guard_drops == 1
        assert harness.emitted_tuples() == []

    def test_results_unaffected_for_nonempty_windows(self):
        join = self.make()
        harness = OperatorHarness(join)
        harness.push(probe(3, 1), port=0)
        harness.push_punctuation(window_done(PROBE, 4), port=0)
        harness.push(sensor(3, 1), port=1)
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["window"] == 3

    def test_sensor_side_punctuation_does_not_trigger(self):
        join = self.make()
        harness = OperatorHarness(join)
        harness.push_punctuation(window_done(SENSOR, 7), port=1)
        assert harness.upstream_feedback(0) == []

    def test_outer_join_rejected(self):
        with pytest.raises(PlanError, match="inner join"):
            ThriftyJoin(
                "bad", PROBE, SENSOR,
                on=[("window", "window"), ("location", "location")],
                how="left_outer",
            )


class TestImpatientJoin:
    def make(self):
        return ImpatientJoin(
            "impatient", PROBE, SENSOR,
            on=[("window", "window"), ("location", "location")],
            eager_input=0,
        )

    def test_first_probe_arrival_requests_priority(self):
        join = self.make()
        harness = OperatorHarness(join)
        harness.push(probe(7, 3), port=0)
        sent = harness.upstream_feedback(1)
        assert len(sent) == 1
        assert sent[0].is_desired
        # The paper's ?[7, 3, *] under (period, segment, data).
        assert repr(sent[0].pattern) == "[7, 3, *]"

    def test_one_request_per_key(self):
        join = self.make()
        harness = OperatorHarness(join)
        harness.push(probe(7, 3), port=0)
        harness.push(probe(7, 3, speed=99.0), port=0)
        assert len(harness.upstream_feedback(1)) == 1
        assert join.desired_sent == 1

    def test_desired_feedback_does_not_change_results(self):
        join = self.make()
        harness = OperatorHarness(join)
        harness.push(probe(7, 3), port=0)
        harness.push(sensor(7, 3), port=1)
        out = harness.emitted_tuples()
        assert len(out) == 1

    def test_sensor_arrivals_do_not_request(self):
        join = self.make()
        harness = OperatorHarness(join)
        harness.push(sensor(7, 3), port=1)
        assert harness.upstream_feedback(0) == []
