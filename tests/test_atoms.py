"""Unit tests for pattern atoms: matching, subsumption, intersection."""

import pytest

from repro.errors import PatternError
from repro.punctuation import (
    AtLeast,
    AtMost,
    Equals,
    GreaterThan,
    InSet,
    Interval,
    LessThan,
    WILDCARD,
    Wildcard,
    atom_from_literal,
)


class TestMatching:
    def test_wildcard_matches_everything(self):
        assert WILDCARD.matches(5)
        assert WILDCARD.matches("x")
        assert WILDCARD.matches(None)

    def test_equals(self):
        assert Equals(3).matches(3)
        assert not Equals(3).matches(4)

    def test_equals_none_matches_none_only(self):
        assert Equals(None).matches(None)
        assert not Equals(None).matches(0)

    def test_inset(self):
        atom = InSet({1, 2})
        assert atom.matches(1)
        assert not atom.matches(3)

    def test_inset_empty_rejected(self):
        with pytest.raises(PatternError):
            InSet([])

    @pytest.mark.parametrize(
        "atom, yes, no",
        [
            (LessThan(5), 4, 5),
            (AtMost(5), 5, 6),
            (GreaterThan(5), 6, 5),
            (AtLeast(5), 5, 4),
        ],
    )
    def test_order_atoms(self, atom, yes, no):
        assert atom.matches(yes)
        assert not atom.matches(no)

    def test_order_atoms_never_match_none(self):
        for atom in (LessThan(5), AtMost(5), GreaterThan(5), AtLeast(5)):
            assert not atom.matches(None)

    def test_order_atom_incomparable_type_no_match(self):
        assert not AtLeast(5).matches("fifty")

    def test_interval_inclusive_bounds(self):
        atom = Interval(1, 3)
        assert atom.matches(1) and atom.matches(3) and atom.matches(2)
        assert not atom.matches(0) and not atom.matches(4)

    def test_interval_exclusive_bounds(self):
        atom = Interval(1, 3, lo_inclusive=False, hi_inclusive=False)
        assert not atom.matches(1) and not atom.matches(3)
        assert atom.matches(2)

    def test_interval_empty_rejected(self):
        with pytest.raises(PatternError):
            Interval(5, 1)
        with pytest.raises(PatternError):
            Interval(5, 5, lo_inclusive=False)

    def test_strings_compare_lexicographically(self):
        assert AtMost("2008-12-08 09:00").matches("2008-12-08 08:59")
        assert not AtMost("2008-12-08 09:00").matches("2008-12-08 09:01")


class TestSubsumption:
    def test_wildcard_subsumes_all(self):
        assert WILDCARD.subsumes(Equals(1))
        assert WILDCARD.subsumes(AtLeast(5))
        assert not Equals(1).subsumes(WILDCARD)

    def test_range_subsumes_narrower_range(self):
        assert AtMost(10).subsumes(AtMost(5))
        assert AtMost(10).subsumes(LessThan(10))
        assert not LessThan(10).subsumes(AtMost(10))
        assert AtLeast(0).subsumes(GreaterThan(0))

    def test_range_subsumes_contained_point(self):
        assert AtMost(10).subsumes(Equals(10))
        assert not AtMost(10).subsumes(Equals(11))

    def test_set_subsumes_subset(self):
        assert InSet({1, 2, 3}).subsumes(InSet({1, 2}))
        assert not InSet({1, 2}).subsumes(InSet({1, 4}))

    def test_set_subsumes_point_interval_only(self):
        assert InSet({1, 2}).subsumes(Interval(1, 1))
        # Conservative: finite sets never subsume a dense-looking interval.
        assert not InSet({1, 2}).subsumes(Interval(1, 2))

    def test_interval_subsumes_interval(self):
        assert Interval(0, 10).subsumes(Interval(2, 8))
        assert not Interval(2, 8).subsumes(Interval(0, 10))

    def test_equal_atoms_subsume_each_other(self):
        assert AtMost(5).subsumes(AtMost(5))
        assert Equals(3).subsumes(Equals(3))


class TestIntersection:
    def test_wildcard_identity(self):
        assert WILDCARD.intersect(AtLeast(5)) == AtLeast(5)
        assert AtLeast(5).intersect(WILDCARD) == AtLeast(5)

    def test_disjoint_ranges_empty(self):
        assert AtMost(3).intersect(AtLeast(5)) is None
        assert AtMost(3).is_disjoint(AtLeast(5))

    def test_touching_ranges(self):
        atom = AtMost(5).intersect(AtLeast(5))
        assert atom is not None and atom.is_point and atom.point_value() == 5

    def test_touching_open_ranges_empty(self):
        assert LessThan(5).intersect(AtLeast(5)) is None
        assert AtMost(5).intersect(GreaterThan(5)) is None

    def test_overlapping_ranges(self):
        atom = AtLeast(2).intersect(AtMost(8))
        assert atom.matches(2) and atom.matches(8)
        assert not atom.matches(1) and not atom.matches(9)

    def test_set_with_range(self):
        atom = InSet({1, 5, 9}).intersect(AtMost(5))
        assert atom == InSet({1, 5})

    def test_set_with_set(self):
        assert InSet({1, 2}).intersect(InSet({2, 3})) == InSet({2})
        assert InSet({1}).intersect(InSet({2})) is None

    def test_point_with_range(self):
        assert Equals(5).intersect(AtLeast(3)) == InSet({5})
        assert Equals(2).intersect(AtLeast(3)) is None


class TestLiterals:
    def test_star_is_wildcard(self):
        assert isinstance(atom_from_literal("*"), Wildcard)
        assert isinstance(atom_from_literal(None), Wildcard)

    def test_set_literal(self):
        assert atom_from_literal({1, 2}) == InSet({1, 2})

    def test_scalar_literal(self):
        assert atom_from_literal(5) == Equals(5)

    def test_atom_passthrough(self):
        atom = AtLeast(5)
        assert atom_from_literal(atom) is atom

    def test_reprs(self):
        assert repr(WILDCARD) == "*"
        assert repr(AtLeast(50)) == ">=50"
        assert repr(LessThan(5)) == "<5"
