"""Columnar page codec: exact round-trips across the process boundary.

:func:`~repro.stream.pages.encode_page` /
:func:`~repro.stream.pages.decode_page` are the multiprocess engine's
wire format -- every page crossing a worker boundary takes this path, so
the codec must preserve *everything* the in-process queues preserve:

* element interleaving (tuples and embedded punctuations, in order),
* per-tuple values, of every kind a schema can carry,
* schema identity (interned per process, rebuilt once per signature),
* the page's ``available_at`` stamp and completion state,
* the capacity (flush thresholds survive re-enqueueing downstream).

The property tests drive random interleavings through
encode -> pickle -> unpickle -> decode -- the exact multiprocess queue
trip -- and compare element-by-element.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EngineError
from repro.punctuation import Equals, InSet, Pattern, Punctuation
from repro.stream import Schema, StreamTuple
from repro.stream.pages import Page, decode_page, encode_page

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])
OTHER = Schema([("k", "int"), ("label", "str")])


def roundtrip(page: Page) -> Page:
    """The exact multiprocess boundary: encode, pickle, unpickle, decode."""
    wire = pickle.loads(pickle.dumps(encode_page(page)))
    return decode_page(wire)


def assert_pages_equal(original: Page, decoded: Page) -> None:
    assert decoded.capacity == original.capacity
    assert decoded.available_at == original.available_at
    assert decoded.complete == original.complete
    assert len(decoded.elements) == len(original.elements)
    for ours, theirs in zip(original.elements, decoded.elements):
        assert theirs.is_punctuation == ours.is_punctuation
        if ours.is_punctuation:
            assert theirs == ours
        else:
            assert theirs.values == ours.values
            assert theirs.schema == ours.schema


def make_page(elements, *, capacity=64, available_at=None, seal=False):
    page = Page(capacity)
    page.elements.extend(elements)
    page.available_at = available_at
    if seal:
        page.seal()
    return page


class TestExplicitRoundTrips:
    def test_empty_page(self):
        decoded = roundtrip(make_page([], capacity=8))
        assert decoded.empty
        assert decoded.capacity == 8
        assert decoded.available_at is None
        assert not decoded.complete

    def test_empty_sealed_page_stays_sealed(self):
        decoded = roundtrip(make_page([], seal=True, available_at=3.5))
        assert decoded.empty
        assert decoded.complete
        assert decoded.available_at == 3.5

    def test_punctuation_mid_page_preserves_interleaving(self):
        punct = Punctuation(
            Pattern.from_mapping(SCHEMA, {"ts": Equals(1.0)}), source="src"
        )
        elements = [
            StreamTuple(SCHEMA, (0.5, 1, 2.0)),
            StreamTuple(SCHEMA, (1.0, 2, 3.0)),
            punct,
            StreamTuple(SCHEMA, (1.5, 3, 4.0)),
        ]
        decoded = roundtrip(make_page(elements))
        assert_pages_equal(make_page(elements), decoded)
        assert decoded.elements[2].is_punctuation
        assert decoded.elements[2].source == "src"
        # the split runs re-join into tuples on either side
        assert decoded.tuple_count() == 3
        assert decoded.punctuation_count() == 1

    def test_heterogeneous_value_kinds(self):
        schema = Schema([
            ("i", "int"), ("f", "float"), ("s", "str"),
            ("b", "bool"), ("n", "any"),
        ])
        rows = [
            (1, 1.5, "alpha", True, None),
            (-7, float("inf"), "", False, (1, 2)),
            (0, -0.0, "uniçode", True, 3.25),
        ]
        elements = [StreamTuple(schema, row) for row in rows]
        decoded = roundtrip(make_page(elements))
        assert [t.values for t in decoded.elements] == rows
        assert decoded.elements[0].schema == schema

    def test_available_at_preserved(self):
        page = make_page(
            [StreamTuple(SCHEMA, (0.0, 1, 1.0))], available_at=17.25
        )
        assert roundtrip(page).available_at == 17.25

    def test_mixed_schemas_build_one_table_row_each(self):
        elements = [
            StreamTuple(SCHEMA, (0.0, 1, 1.0)),
            StreamTuple(OTHER, (3, "x")),
            StreamTuple(SCHEMA, (1.0, 2, 2.0)),
        ]
        wire = encode_page(make_page(elements))
        schema_table = wire[4]
        # three runs, but only two distinct schema signatures
        assert len(schema_table) == 2
        assert_pages_equal(make_page(elements), decode_page(wire))

    def test_decoded_schemas_are_interned(self):
        pages = [
            make_page([StreamTuple(SCHEMA, (float(i), i, 0.0))])
            for i in range(3)
        ]
        decoded = [roundtrip(p) for p in pages]
        first = decoded[0].elements[0].schema
        assert all(p.elements[0].schema is first for p in decoded)

    def test_punctuation_pattern_survives_wire(self):
        punct = Punctuation(
            Pattern.from_mapping(SCHEMA, {"seg": InSet({1, 2})}),
            source="probe",
        )
        decoded = roundtrip(make_page([punct]))
        restored = decoded.elements[0]
        assert restored == punct
        assert restored.pattern.matches(StreamTuple(SCHEMA, (0.0, 2, 0.0)))
        assert not restored.pattern.matches(
            StreamTuple(SCHEMA, (0.0, 4, 0.0))
        )

    def test_unknown_codec_version_rejected(self):
        wire = list(encode_page(make_page([])))
        wire[0] = "colpage/99"
        with pytest.raises(EngineError, match="codec"):
            decode_page(tuple(wire))


# ---------------------------------------------------------------- property


_seg_values = st.integers(min_value=-5, max_value=5)


@st.composite
def elements_strategy(draw):
    """A random interleaving of tuples (two schemas) and punctuations."""
    kind = draw(st.sampled_from(["main", "other", "punct"]))
    if kind == "main":
        return StreamTuple(SCHEMA, (
            draw(st.floats(min_value=0.0, max_value=100.0,
                           allow_nan=False)),
            draw(_seg_values),
            draw(st.floats(allow_nan=False, allow_infinity=False)),
        ))
    if kind == "other":
        return StreamTuple(OTHER, (
            draw(_seg_values), draw(st.text(max_size=8)),
        ))
    return Punctuation(
        Pattern.from_mapping(SCHEMA, {"seg": Equals(draw(_seg_values))}),
        source=draw(st.sampled_from(["a", "b", ""])),
    )


class TestPropertyRoundTrips:
    @settings(max_examples=80, deadline=None)
    @given(
        elements=st.lists(elements_strategy(), max_size=24),
        capacity=st.integers(min_value=1, max_value=64),
        available_at=st.none() | st.floats(min_value=0.0, max_value=1e6,
                                           allow_nan=False),
        sealed=st.booleans(),
    )
    def test_roundtrip_is_exact(
        self, elements, capacity, available_at, sealed
    ):
        page = make_page(
            elements, capacity=capacity, available_at=available_at,
            seal=sealed,
        )
        assert_pages_equal(page, roundtrip(page))

    @settings(max_examples=60, deadline=None)
    @given(elements=st.lists(elements_strategy(), max_size=16))
    def test_roundtrip_is_idempotent(self, elements):
        once = roundtrip(make_page(elements))
        assert_pages_equal(once, roundtrip(once))
