"""Partition-parallel sharded plans: data, punctuation, control, metrics.

The shard region (``flow.shard(n, key=...)`` -> ``Partition`` fan-out +
``ShardMerge`` fan-in) must preserve the paper's semantics across the
parallelism boundary:

* sharded and unsharded runs produce the same result **multiset** on both
  engines, and ``n=1`` compiles to a plan byte-identical to unsharded;
* a region punctuation passes the merge only when **every** replica has
  reported it, and then exactly once;
* feedback injected downstream of the merge **broadcasts** to every
  replica and -- once all replicas agree (or the pattern carries the
  partition key: **key routing**) -- crosses the partition toward the
  source;
* backpressure is **per lane**: one congested replica pauses only the
  partitioner's lane to it, not the whole source, until the lane stash
  fills (``stash_limit``) and the pause turns transitive;
* unknown control kinds still forward hop-by-hop through both boundary
  operators;
* queue metrics key by ``(producer, consumer, port)`` so replicated
  edges report distinctly, and shard groups roll up per lane with a skew
  report.
"""

from __future__ import annotations

import pytest

from repro.api import Flow, avg
from repro.core import FeedbackPunctuation
from repro.engine import QueryPlan, Simulator, fork_available
from repro.engine.harness import OperatorHarness
from repro.errors import FlowError, PlanError, SchemaError
from repro.operators import (
    CollectSink,
    ListSource,
    Partition,
    ShardMerge,
    Union,
)
from repro.punctuation import Pattern, Punctuation
from repro.stream import Schema, StreamTuple
from repro.stream.control import ControlMessage, ControlMessageKind, Direction

SCHEMA = Schema([("ts", "timestamp", True), ("k", "int"), ("v", "float")])

#: The multiprocess engine rides the same parity legs as the in-process
#: engines wherever the plan crosses a shard region -- each lane becomes a
#: worker process, so these tests double as serialization-boundary tests.
MULTIPROCESS = pytest.param(
    "multiprocess",
    marks=pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    ),
)


def tup(ts, k, v):
    return StreamTuple(SCHEMA, (float(ts), k, float(v)))


def timeline(n, keys=7, spacing=0.05):
    return [(i * spacing, tup(i, i % keys, i)) for i in range(n)]


def shard_flow(n, *, tuples=200, lane_cost=None, queue_capacity=None,
               stash_limit=256, punctuate_every=25.0, spacing=0.05,
               shard_queue_capacity=None):
    """source -> punctuate -> shard(n, where+window) -> sink."""
    flow = Flow(f"shard-{n}")

    def pipeline(lane, index):
        cost = 0.0 if lane_cost is None else lane_cost(index)
        return (lane
                .where(lambda t: t["v"] >= 0.0, tuple_cost=cost,
                       queue_capacity=queue_capacity)
                .window(avg("v"), by="k", on="ts", width=punctuate_every))

    (flow.source(SCHEMA, timeline(tuples, spacing=spacing), name="src")
         .punctuate(on="ts", every=punctuate_every)
         .shard(n, key="k", pipeline=pipeline, stash_limit=stash_limit,
                queue_capacity=shard_queue_capacity)
         .collect("sink", keep_punctuation=True))
    return flow


def sink_multiset(result):
    return sorted(tuple(t.values) for t in result.sink("sink").results)


def lanes_by_key(fanout, keys=range(100)):
    """Map lane -> example keys, using Partition's stable hash."""
    probe = Partition("probe", SCHEMA, key="k", fanout=fanout)
    lanes: dict[int, list] = {}
    for k in keys:
        lanes.setdefault(probe.lane_of_key(k), []).append(k)
    return lanes


# ------------------------------------------------------------- equivalence


class TestShardedEquivalence:
    @pytest.mark.parametrize("n", [2, 4, 8])
    @pytest.mark.parametrize(
        "engine", ["simulated", "threaded", "asyncio", MULTIPROCESS]
    )
    def test_sharded_matches_unsharded_multiset(self, n, engine):
        base = shard_flow(1).run("simulated")
        sharded = shard_flow(n).run(engine)
        assert sink_multiset(sharded) == sink_multiset(base)

    def test_n1_compiles_byte_identical_to_unsharded(self):
        unsharded = Flow("shard-1")
        (unsharded.source(SCHEMA, timeline(200), name="src")
                  .punctuate(on="ts", every=25.0)
                  .where(lambda t: t["v"] >= 0.0, tuple_cost=0.0)
                  .window(avg("v"), by="k", on="ts", width=25.0)
                  .collect("sink", keep_punctuation=True))
        sharded = shard_flow(1)
        assert sharded.describe() == unsharded.describe()
        assert sharded.describe() == sharded.build().describe()
        left = sharded.run("simulated")
        right = unsharded.run("simulated")
        assert (
            [tuple(t.values) for t in left.sink("sink").results]
            == [tuple(t.values) for t in right.sink("sink").results]
        )

    @pytest.mark.parametrize("n", [2, 4])
    def test_region_punctuation_exactly_once_downstream(self, n):
        base = shard_flow(1).run("simulated")
        sharded = shard_flow(n).run("simulated")
        base_patterns = [p.pattern for p in base.sink("sink").punctuations]
        patterns = [p.pattern for p in sharded.sink("sink").punctuations]
        assert len(patterns) == len(set(patterns))  # exactly once each
        assert set(patterns) == set(base_patterns)  # and none lost

    def test_numerically_equal_keys_route_to_one_lane(self):
        """1, 1.0 and True are one group to an unsharded group-by, so
        they must be one lane to the partitioner (regression: repr-based
        hashing used to split them across replicas)."""
        probe = Partition("probe", SCHEMA, key="k", fanout=4)
        assert (
            probe.lane_of_key(1)
            == probe.lane_of_key(1.0)
            == probe.lane_of_key(True)
        )
        events = [
            (i * 0.01, StreamTuple(SCHEMA, (float(i), k, 1.0)))
            for i, k in enumerate([1, 1.0, 2, 2.0, 1, 2] * 20)
        ]

        def build(n):
            flow = Flow(f"mixed-{n}")
            (flow.source(SCHEMA, events, name="src")
                 .punctuate(on="ts", every=30.0)
                 .shard(n, key="k", pipeline=lambda lane: lane
                        .window(avg("v"), by="k", on="ts", width=30.0))
                 .collect("sink"))
            return flow

        base = build(1).run("simulated")
        sharded = build(4).run("simulated")
        assert sink_multiset(sharded) == sink_multiset(base)

    def test_simulator_runs_are_deterministic(self):
        first = shard_flow(4).run("simulated")
        second = shard_flow(4).run("simulated")
        assert (
            [(rec.time, tuple(rec.element.values))
             for rec in first.output_log.tuples()]
            == [(rec.time, tuple(rec.element.values))
                for rec in second.output_log.tuples()]
        )


# ------------------------------------------------------------ flow surface


class TestShardFlowSurface:
    def test_describe_and_dot_render_the_region(self):
        flow = shard_flow(2)
        described = flow.describe()
        assert "shard 'shard' x2 by (k): shard -> shard_merge" in described
        assert "lane 0:" in described and "lane 1:" in described
        assert flow.describe() == flow.build().describe()
        dot = flow.to_dot()
        assert "subgraph cluster_shard_0" in dot
        assert flow.to_dot() == flow.build().to_dot()

    def test_shard_group_registered_in_plan(self):
        plan = shard_flow(2).build()
        [group] = plan.shard_groups
        assert group.partition == "shard"
        assert group.merge == "shard_merge"
        assert group.n == 2
        assert group.key == ("k",)
        assert len(group.lanes) == 2
        for lane in group.lanes:
            assert len(lane) == 2  # where + window per replica

    def test_failing_pipeline_leaves_flow_untouched(self):
        flow = Flow("atomic")
        handle = flow.source(SCHEMA, timeline(5), name="src")
        with pytest.raises(FlowError):
            handle.shard(2, key="k", pipeline=lambda lane: lane)
        # The source handle is reusable and the flow has no orphan stages.
        assert [node.name for node in flow._nodes] == ["src"]
        out = handle.shard(
            2, key="k",
            pipeline=lambda lane: lane.where(lambda t: True),
        )
        assert out.name == "shard_merge"

    def test_bad_arguments(self):
        flow = Flow("bad")
        handle = flow.source(SCHEMA, timeline(5), name="src")
        with pytest.raises(FlowError):
            handle.shard(0, key="k", pipeline=lambda lane: lane)
        with pytest.raises(FlowError):
            handle.shard(2, key="k", pipeline="not-callable")
        with pytest.raises(SchemaError):
            handle.shard(2, key="missing",
                         pipeline=lambda lane: lane.where(lambda t: True))
        # Failed attempts left the handle consumable.
        assert [node.name for node in flow._nodes] == ["src"]

    def test_register_shard_group_validates_names(self):
        from repro.engine import ShardGroup

        plan = QueryPlan("p")
        src = ListSource("src", SCHEMA, timeline(1))
        sink = CollectSink("sink", SCHEMA)
        plan.connect(src, sink)
        with pytest.raises(PlanError):
            plan.register_shard_group(
                ShardGroup("g", "ghost", "sink", ("k",), 1, (("src",),))
            )


# --------------------------------------------------------- merge semantics


class TestShardMergeHoldsRegions:
    def drive_merge(self):
        merge = ShardMerge("merge", SCHEMA, arity=2)
        return merge, OperatorHarness(merge)

    def test_region_held_until_every_replica_reports(self):
        merge, harness = self.drive_merge()
        punct = Punctuation(Pattern.from_mapping(SCHEMA, {"ts": 10}))
        harness.push_punctuation(punct, port=0)
        assert harness.emitted_punctuation() == []
        assert merge.regions_held == 1
        harness.push_punctuation(
            Punctuation(Pattern.from_mapping(SCHEMA, {"ts": 10})), port=1
        )
        assert len(harness.emitted_punctuation()) == 1
        assert merge.regions_released == 1

    def test_closed_replica_counts_as_covering(self):
        merge, harness = self.drive_merge()
        port = merge.inputs[1]
        port.done = True
        merge.on_input_done(1)
        harness.push_punctuation(
            Punctuation(Pattern.from_mapping(SCHEMA, {"ts": 10})), port=0
        )
        assert len(harness.emitted_punctuation()) == 1

    def test_tuples_interleave_unheld(self):
        merge, harness = self.drive_merge()
        harness.push(tup(0, 1, 1.0), port=0)
        harness.push(tup(0, 2, 2.0), port=1)
        assert len(harness.emitted_tuples()) == 2

    def test_merge_is_a_union_subclass_with_batch_path(self):
        merge = ShardMerge("merge", SCHEMA, arity=2)
        assert isinstance(merge, Union)
        harness = OperatorHarness(merge)
        harness.push_page([tup(0, 1, 1.0), tup(0, 2, 2.0)], port=0)
        assert len(harness.emitted_tuples()) == 2
        assert merge.metrics.pages_batched == 1


# ----------------------------------------------------- feedback broadcast


class TestFeedbackAcrossShards:
    def test_broadcast_reaches_every_replica_and_the_source(self):
        n = 4
        flow = Flow("fb")

        def pipeline(lane):
            return lane.where(lambda t: True)

        (flow.source(SCHEMA, timeline(400), name="src")
             .shard(n, key="k", pipeline=pipeline)
             .collect("sink"))
        unneeded = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"v": 399.0})
        )
        result = flow.run(
            "simulated", feedback=[(0.0, "sink", unneeded)]
        )
        metrics = result.metrics.operator_metrics
        # The merge relayed the sink's feedback to every replica...
        assert metrics["shard_merge"].feedback_received == 1
        assert metrics["shard_merge"].feedback_relayed == n
        lanes = ["where", "where_2", "where_3", "where_4"]
        for name in lanes:
            assert metrics[name].feedback_received == 1
        # ...each replica relayed it to the partition, which reached
        # agreement across all lanes and relayed once to the source.
        assert metrics["shard"].feedback_received == n
        assert metrics["shard"].feedback_relayed == 1
        assert metrics["src"].feedback_received == 1
        # The source exploited it: the matching tuple never entered the
        # plan (guards installed before the stream drained).
        assert metrics["src"].output_guard_drops >= 1

    def test_key_routed_feedback_enacts_from_one_lane(self):
        partition = Partition("part", SCHEMA, key="k", fanout=2)
        harness = OperatorHarness(partition, outputs=2)
        owner = partition.lane_of_key(5)
        pinned = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"k": 5, "v": 1.0})
        )
        actions = harness.feedback(pinned, from_output=owner)
        assert actions  # enacted immediately, no agreement round needed
        assert partition.key_routed_feedback == 1
        assert harness.input_guard_count(0) == 1
        [relayed] = harness.upstream_feedback(0)
        assert relayed.pattern.atom_at("k").matches(5)

    def test_unpinned_feedback_waits_for_agreement(self):
        partition = Partition("part", SCHEMA, key="k", fanout=2)
        harness = OperatorHarness(partition, outputs=2)
        broad = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"v": 1.0})  # key unconstrained
        )
        assert harness.feedback(broad, from_output=0) == []
        assert harness.upstream_feedback(0) == []
        assert harness.input_guard_count(0) == 0
        # The sibling lane's matching declaration completes the agreement.
        actions = harness.feedback(broad, from_output=1)
        assert actions
        assert harness.input_guard_count(0) >= 1
        assert len(harness.upstream_feedback(0)) == 1

    def test_feedback_for_foreign_lane_key_is_not_enacted_alone(self):
        partition = Partition("part", SCHEMA, key="k", fanout=2)
        harness = OperatorHarness(partition, outputs=2)
        owner = partition.lane_of_key(5)
        pinned = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"k": 5})
        )
        # Issued by the lane that can never see key 5: not key-routable.
        assert harness.feedback(pinned, from_output=1 - owner) == []
        assert partition.key_routed_feedback == 0


# ------------------------------------------------------ per-lane pressure


class TestPerLaneBackpressure:
    def test_one_congested_replica_pauses_only_its_lane(self):
        """Burst input, slow lane 0: the pause stops at the partitioner.

        The whole stream lands before the slow replica can drain, so the
        lane queue crosses its high-water mark while the partition still
        has pages to route -- the paused lane's traffic goes to the stash
        while the fast sibling keeps receiving, and the source (whose
        edge is unbounded) never hears a pause.
        """
        flow = shard_flow(
            2, tuples=300, spacing=0.0,
            lane_cost=lambda index: 0.02 if index == 0 else 0.0,
            queue_capacity=8, stash_limit=10_000,
        )
        result = flow.run("simulated")
        metrics = result.metrics.operator_metrics
        partition = result.plan.operator("shard")
        # The slow lane pushed back on the partitioner...
        assert metrics["shard"].pauses_received > 0
        assert partition.tuples_stashed > 0
        assert partition.lane_pauses > 0
        # ...but the partition absorbed it: the source never paused, and
        # the fast sibling still processed its full share.
        assert metrics["src"].pauses_received == 0
        group = result.metrics.shard_metrics["shard"]
        assert all(lane.tuples_in > 0 for lane in group.lanes)
        assert sink_multiset(result) == sink_multiset(
            shard_flow(2, tuples=300).run("simulated")
        )

    def test_full_stash_turns_the_pause_transitive(self):
        """A bounded stash makes partition pressure reach the source.

        Paced input with a bounded source->partition edge: while the
        partition absorbs (large stash) the source never pauses; with a
        tiny stash the partition reports holding_pressure, stops
        draining, and the source edge's own watermark pauses the source.
        """
        def run(stash_limit):
            # The source edge's capacity (64) exceeds the page-flush
            # interval (punctuation every 25 elements), so its watermark
            # can only trip when the partition actually stops draining.
            flow = shard_flow(
                2, tuples=300, spacing=0.005,
                lane_cost=lambda index: 0.05 if index == 0 else 0.0,
                queue_capacity=8, stash_limit=stash_limit,
                shard_queue_capacity=64,
            )
            return flow.run("simulated")

        absorbing = run(10_000)
        assert absorbing.metrics.operator_metrics[
            "src"].pauses_received == 0
        holding = run(4)
        metrics = holding.metrics.operator_metrics
        assert metrics["shard"].pauses_received > 0
        assert metrics["src"].pauses_received > 0
        assert sink_multiset(holding) == sink_multiset(
            shard_flow(2, tuples=300).run("simulated")
        )

    @pytest.mark.parametrize(
        "engine", ["simulated", "threaded", "asyncio", MULTIPROCESS]
    )
    def test_bounded_sharded_run_completes_on_both_engines(self, engine):
        flow = shard_flow(
            2, tuples=200, spacing=0.0,
            lane_cost=lambda index: 0.001 if index == 0 else 0.0,
            queue_capacity=8, stash_limit=16, shard_queue_capacity=8,
        )
        result = flow.run(engine)
        assert sink_multiset(result) == sink_multiset(
            shard_flow(2, tuples=200).run("simulated")
        )


# ------------------------------------------------- unknown control kinds


class TestUnknownControlThroughShardBoundary:
    def test_forwards_hop_by_hop_partition_and_merge(self):
        flow = Flow("fwd")
        (flow.source(SCHEMA, timeline(60), name="src")
             .shard(2, key="k",
                    pipeline=lambda lane: lane.where(lambda t: True))
             .collect("sink", tuple_cost=0.01))
        plan = flow.build()
        engine = Simulator(plan)
        sink = plan.operator("sink")
        merge = plan.operator("shard_merge")

        def send_alien():
            sink.inputs[0].control.send(
                ControlMessage(
                    ControlMessageKind.SHUTDOWN,
                    Direction.UPSTREAM,
                    payload="client stop",
                    sender="sink",
                    sent_at=engine.now(),
                )
            )
            engine.notify_control(merge)

        engine.at(0.1, send_alien)
        engine.run()
        metrics = {op.name: op.metrics for op in plan}
        assert metrics["shard_merge"].control_forwarded == 1
        # Each replica forwarded its copy toward the partition...
        assert (
            metrics["where"].control_forwarded
            + metrics["where_2"].control_forwarded
            == 2
        )
        # ...and the partition forwarded each copy toward the source.
        assert metrics["shard"].control_forwarded == 2
        assert metrics["src"].control_forwarded == 2


# -------------------------------------------------------- metrics keying


class TestQueueMetricsKeying:
    def test_replicated_edges_report_distinct_metrics(self):
        result = shard_flow(4).run("simulated")
        queues = result.metrics.queue_metrics
        plan_edges = sum(len(op.outputs) for op in result.plan)
        assert len(queues) == plan_edges  # no entry collapsed another
        for lane, where in enumerate(
            ["where", "where_2", "where_3", "where_4"]
        ):
            entry = result.metrics.edge("shard", where)
            assert entry.producer == "shard"
            assert entry.consumer == where
            assert entry.port == 0
            assert entry.elements_enqueued > 0

    def test_multi_input_operator_edges_keyed_by_port(self):
        result = shard_flow(2).run("simulated")
        merge_in_0 = result.metrics.edge("window", "shard_merge", 0)
        merge_in_1 = result.metrics.edge("window_2", "shard_merge", 1)
        assert merge_in_0.port == 0 and merge_in_1.port == 1
        assert merge_in_0.edge_key != merge_in_1.edge_key

    def test_colliding_queue_names_cannot_collapse_entries(self):
        """Hand-built plans may reuse queue display names; the rollup
        keys by topology, so both edges still report."""
        plan = QueryPlan("dup-names")
        src = ListSource("src", SCHEMA, timeline(10))
        a = CollectSink("a", SCHEMA)
        b = CollectSink("b", SCHEMA)
        plan.connect(src, a)
        plan.connect(src, b)
        for edge in src.outputs:
            edge.queue.name = "same-name"
        result = Simulator(plan).run()
        assert len(result.metrics.queue_metrics) == 2
        assert result.metrics.edge("src", "a").name == "same-name"
        assert result.metrics.edge("src", "b").name == "same-name"


class TestShardMetricsRollup:
    def test_skew_report_structure(self):
        result = shard_flow(4).run("simulated")
        group = result.metrics.shard_metrics["shard"]
        assert group.n == 4
        assert len(group.lanes) == 4
        assert sum(lane.ingress for lane in group.lanes) > 0
        assert group.skew() >= 1.0
        report = result.metrics.shard_report()
        assert "shard 'shard' x4 by (k)" in report
        assert "lane" in report

    def test_balanced_keys_have_low_skew(self):
        lanes = lanes_by_key(2)
        # Build a stream sending the same volume to each lane.
        per_lane = [lanes[0][:1], lanes[1][:1]]
        events = []
        for i in range(100):
            for keys in per_lane:
                events.append((i * 0.01, tup(i, keys[0], i)))
        flow = Flow("balanced")
        (flow.source(SCHEMA, events, name="src")
             .shard(2, key="k",
                    pipeline=lambda lane: lane.where(lambda t: True))
             .collect("sink"))
        result = flow.run("simulated")
        assert result.metrics.shard_metrics["shard"].skew() == pytest.approx(
            1.0
        )

    def test_unsharded_plan_reports_no_groups(self):
        result = shard_flow(1).run("simulated")
        assert result.metrics.shard_metrics == {}
        assert result.metrics.shard_report() == "(no shard groups)"
