"""Tests for the desired/demanded correctness notions (paper future work)."""


from repro.core import (
    FeedbackPunctuation,
    check_demanded_exploitation,
    check_desired_content,
    check_desired_prioritization,
)
from repro.engine.harness import OperatorHarness
from repro.operators import AggregateKind, PriorityBuffer, WindowAggregate
from repro.punctuation import Pattern
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int")])


def tup(ts, seg=0):
    return StreamTuple(SCHEMA, (ts, seg))


class TestDesiredContent:
    def test_identical_streams_ok(self):
        stream = [tup(1), tup(2)]
        assert check_desired_content(stream, list(stream)).ok

    def test_reordering_is_fine(self):
        report = check_desired_content([tup(1), tup(2)], [tup(2), tup(1)])
        assert report.ok

    def test_missing_tuple_flagged(self):
        report = check_desired_content([tup(1), tup(2)], [tup(1)])
        assert not report.ok and report.missing == [tup(2)]

    def test_extra_tuple_flagged(self):
        report = check_desired_content([tup(1)], [tup(1), tup(9)])
        assert not report.ok and report.extra == [tup(9)]


class TestDesiredPrioritization:
    def test_moved_earlier_ok(self):
        pattern = Pattern.from_mapping(SCHEMA, {"seg": 1})
        reference = [tup(1, 0), tup(2, 0), tup(3, 1)]
        exploited = [tup(3, 1), tup(1, 0), tup(2, 0)]
        report = check_desired_prioritization(reference, exploited, pattern)
        assert report.ok
        assert report.rank_improvement == 2.0

    def test_moved_later_fails(self):
        pattern = Pattern.from_mapping(SCHEMA, {"seg": 1})
        reference = [tup(3, 1), tup(1, 0), tup(2, 0)]
        exploited = [tup(1, 0), tup(2, 0), tup(3, 1)]
        report = check_desired_prioritization(reference, exploited, pattern)
        assert not report.ok

    def test_content_violation_fails_even_if_earlier(self):
        pattern = Pattern.from_mapping(SCHEMA, {"seg": 1})
        reference = [tup(1, 0), tup(3, 1)]
        exploited = [tup(3, 1)]  # dropped a tuple: not allowed for desired
        report = check_desired_prioritization(reference, exploited, pattern)
        assert not report.ok

    def test_live_priority_buffer_satisfies_the_notion(self):
        """PriorityBuffer's desired handling passes the formal check."""
        stream = [tup(float(i), seg=i % 4) for i in range(12)]

        def run(feedback):
            buffer = PriorityBuffer("buf", SCHEMA, capacity=6)
            harness = OperatorHarness(buffer)
            if feedback is not None:
                harness.feedback(feedback)
            harness.push_all(list(stream))
            harness.finish()
            return harness.emitted_tuples()

        pattern = Pattern.from_mapping(SCHEMA, {"seg": 3})
        reference = run(None)
        exploited = run(FeedbackPunctuation.desired(pattern))
        report = check_desired_prioritization(reference, exploited, pattern)
        assert report.ok, (report.missing, report.extra)
        assert (report.rank_improvement or 0) > 0


AGG_SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])


class TestDemanded:
    def out(self, window, seg, value):
        schema = Schema.of("window", "seg", "avg_v")
        return StreamTuple(schema, (window, seg, value))

    def test_exact_results_preserved_with_partials_ok(self):
        schema = Schema.of("window", "seg", "avg_v")
        pattern = Pattern.from_mapping(schema, {"window": 2})
        reference = [self.out(1, 0, 5.0), self.out(2, 0, 7.0)]
        exploited = [self.out(2, 0, 6.5),  # partial for the demand
                     self.out(1, 0, 5.0), self.out(2, 0, 7.0)]
        report = check_demanded_exploitation(reference, exploited, pattern)
        assert report.ok
        assert report.partials == [self.out(2, 0, 6.5)]

    def test_losing_uncovered_exact_result_fails(self):
        schema = Schema.of("window", "seg", "avg_v")
        pattern = Pattern.from_mapping(schema, {"window": 2})
        reference = [self.out(1, 0, 5.0), self.out(2, 0, 7.0)]
        exploited = [self.out(2, 0, 7.0)]  # window 1 exact result lost
        report = check_demanded_exploitation(reference, exploited, pattern)
        assert not report.ok
        assert report.lost_exact_results == [self.out(1, 0, 5.0)]

    def test_foreign_extras_fail(self):
        schema = Schema.of("window", "seg", "avg_v")
        pattern = Pattern.from_mapping(schema, {"window": 2})
        reference = [self.out(1, 0, 5.0)]
        exploited = [self.out(1, 0, 5.0), self.out(9, 0, 1.0)]
        report = check_demanded_exploitation(reference, exploited, pattern)
        assert not report.ok
        assert report.foreign_extras == [self.out(9, 0, 1.0)]

    def test_live_aggregate_demand_satisfies_the_notion(self):
        stream = [
            StreamTuple(AGG_SCHEMA, (float(i) * 0.5, i % 2, float(i)))
            for i in range(20)
        ]

        def run(demand):
            agg = WindowAggregate(
                "avg", AGG_SCHEMA, kind=AggregateKind.AVG,
                window_attribute="ts", width=5.0,
                value_attribute="v", group_by=("seg",),
            )
            harness = OperatorHarness(agg)
            for element in stream[:12]:
                harness.push(element)
            if demand is not None:
                harness.feedback(demand)
            for element in stream[12:]:
                harness.push(element)
            harness.finish()
            return agg, harness.emitted_tuples()

        agg, reference = run(None)
        pattern = Pattern.from_mapping(agg.output_schema, {"window": 1})
        _, exploited = run(FeedbackPunctuation.demanded(pattern))
        report = check_demanded_exploitation(reference, exploited, pattern)
        assert report.ok, (report.lost_exact_results, report.foreign_extras)
        assert report.partials  # the mid-stream demand emitted a partial
