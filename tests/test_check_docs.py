"""The docs checker: all-failures reporting and anchor link-checking.

``tools/check_docs.py`` gates the CI docs job; these tests pin the two
behaviours the job depends on:

* a file with several broken snippets reports *every* failure with its
  ``file:line`` (one bad block must not hide the rest, and a failing
  block must not poison later ones -- namespaces are per snippet);
* relative links are checked down to the anchor: in-page ``(#section)``
  and cross-file ``(other.md#section)`` fragments must match a real
  heading (GitHub-style slugs, duplicate ``-N`` suffixes included), and
  headings inside fenced code blocks do not count.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parents[1] / "tools" / "check_docs.py"

spec = importlib.util.spec_from_file_location("check_docs", TOOL)
check_docs = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_docs", check_docs)
spec.loader.exec_module(check_docs)


def run_main(capsys, *files):
    code = check_docs.main([str(f) for f in files])
    return code, capsys.readouterr().out


class TestAllFailuresReported:
    def test_every_failing_snippet_lands_in_the_summary(
        self, tmp_path, capsys
    ):
        doc = tmp_path / "broken.md"
        doc.write_text(
            "# Broken\n\n"
            "```python\nraise ValueError('first')\n```\n\n"
            "```python\nok = 1\n```\n\n"
            "```python\nraise ValueError('second')\n```\n",
            encoding="utf-8",
        )
        code, out = run_main(capsys, doc)
        assert code == 1
        # Both failures reported, with their 1-based snippet lines.
        assert f"{doc}:4: snippet raised" in out
        assert f"{doc}:12: snippet raised" in out
        assert "2 failure(s)" in out
        assert out.count("FAIL") == 2

    def test_failure_does_not_poison_later_snippets(self, tmp_path, capsys):
        doc = tmp_path / "isolated.md"
        doc.write_text(
            "```python\npoison = 'set'\nraise RuntimeError('boom')\n```\n\n"
            "```python\nassert 'poison' not in dir()\n```\n",
            encoding="utf-8",
        )
        code, out = run_main(capsys, doc)
        assert code == 1
        assert "1 failure(s)" in out  # the second snippet passed

    def test_all_green_exits_zero(self, tmp_path, capsys):
        doc = tmp_path / "fine.md"
        doc.write_text("```python\nassert 1 + 1 == 2\n```\n", encoding="utf-8")
        code, out = run_main(capsys, doc)
        assert code == 0
        assert "0 failure(s)" in out

    def test_no_run_fences_are_skipped(self, tmp_path, capsys):
        doc = tmp_path / "skip.md"
        doc.write_text(
            "```python no-run\nraise SystemExit('never runs')\n```\n",
            encoding="utf-8",
        )
        code, out = run_main(capsys, doc)
        assert code == 0
        assert "0 snippet(s)" in out


class TestAnchorChecking:
    def test_in_page_anchor_must_match_a_heading(self, tmp_path, capsys):
        doc = tmp_path / "page.md"
        doc.write_text(
            "# Title\n\n## Real Section\n\n"
            "[good](#real-section) and [bad](#missing-section)\n",
            encoding="utf-8",
        )
        code, out = run_main(capsys, doc)
        assert code == 1
        assert "broken anchor -> #missing-section" in out
        assert "#real-section" not in out.split("failure(s)")[1]

    def test_cross_file_anchor_checked_in_target(self, tmp_path, capsys):
        target = tmp_path / "target.md"
        target.write_text("# Target\n\n## Known Heading\n", encoding="utf-8")
        doc = tmp_path / "refer.md"
        doc.write_text(
            "[ok](target.md#known-heading)\n"
            "[broken](target.md#unknown-heading)\n"
            "[missing-file](gone.md#anything)\n",
            encoding="utf-8",
        )
        code, out = run_main(capsys, doc)
        assert code == 1
        assert "broken anchor -> target.md#unknown-heading" in out
        assert "broken link -> gone.md#anything" in out
        assert "known-heading)" not in out.split("failure(s)")[1]

    def test_headings_inside_fences_do_not_count(self, tmp_path, capsys):
        doc = tmp_path / "fenced.md"
        doc.write_text(
            "# Real\n\n"
            "```text\n# Not A Heading\n```\n\n"
            "[bad](#not-a-heading)\n",
            encoding="utf-8",
        )
        code, out = run_main(capsys, doc)
        assert code == 1
        assert "broken anchor -> #not-a-heading" in out

    def test_duplicate_headings_get_suffixed_slugs(self, tmp_path, capsys):
        doc = tmp_path / "dups.md"
        doc.write_text(
            "## Setup\n\n## Setup\n\n"
            "[first](#setup) [second](#setup-1) [none](#setup-2)\n",
            encoding="utf-8",
        )
        code, out = run_main(capsys, doc)
        assert code == 1
        assert "broken anchor -> #setup-2" in out
        assert "1 failure(s)" in out

    def test_slugification_matches_github_style(self):
        slug = check_docs.github_slug
        assert slug("The `asyncio` Engine") == "the-asyncio-engine"
        assert slug("Async-native sources & sinks") == (
            "async-native-sources--sinks"
        )
        assert slug("Running: engines, feedback") == (
            "running-engines-feedback"
        )

    def test_absolute_urls_ignored(self, tmp_path, capsys):
        doc = tmp_path / "urls.md"
        doc.write_text(
            "[site](https://example.com/page#frag) "
            "[mail](mailto:x@example.com)\n",
            encoding="utf-8",
        )
        code, _out = run_main(capsys, doc)
        assert code == 0


class TestRepoDocsStayGreen:
    def test_shipped_docs_pass_the_checker(self, capsys):
        """The committed docs themselves: every snippet runs, every link
        and anchor resolves (the CI docs job, as a tier-1 test)."""
        code, out = run_main(capsys)
        assert code == 0, out


@pytest.fixture(autouse=True)
def _restore_sys_path():
    saved = list(sys.path)
    yield
    sys.path[:] = saved
