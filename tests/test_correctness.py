"""Unit tests for Definition 1 checking (correct exploitation)."""

import pytest

from repro.core import check_correct_exploitation, max_exploitation, subset
from repro.punctuation import AtLeast, Pattern
from repro.stream import Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema.of("ts", "v")


@pytest.fixture
def reference(schema):
    return [StreamTuple(schema, (i, i * 10)) for i in range(6)]


@pytest.fixture
def pattern(schema):
    # Feedback covering v >= 30, i.e. tuples 3, 4, 5.
    return Pattern.from_mapping(schema, {"v": AtLeast(30)})


class TestSubset:
    def test_subset(self, reference, pattern):
        covered = subset(reference, pattern)
        assert [t["ts"] for t in covered] == [3, 4, 5]

    def test_max_exploitation(self, reference, pattern):
        kept = max_exploitation(reference, pattern)
        assert [t["ts"] for t in kept] == [0, 1, 2]


class TestCheck:
    def test_null_response_is_correct(self, reference, pattern):
        report = check_correct_exploitation(reference, reference, pattern)
        assert report.ok
        assert report.exploitation == 0.0

    def test_max_exploitation_is_correct(self, reference, pattern):
        exploited = max_exploitation(reference, pattern)
        report = check_correct_exploitation(reference, exploited, pattern)
        assert report.ok
        assert report.exploitation == 1.0

    def test_partial_exploitation_is_correct(self, reference, pattern, schema):
        exploited = [t for t in reference if t["ts"] != 4]  # drop one covered
        report = check_correct_exploitation(reference, exploited, pattern)
        assert report.ok
        assert report.exploitation == pytest.approx(1 / 3)

    def test_inventing_tuples_is_incorrect(self, reference, pattern, schema):
        exploited = reference + [StreamTuple(schema, (99, 990))]
        report = check_correct_exploitation(reference, exploited, pattern)
        assert not report.ok
        assert len(report.invented) == 1

    def test_suppressing_uncovered_tuple_is_incorrect(
        self, reference, pattern
    ):
        exploited = [t for t in reference if t["ts"] != 1]  # v=10, not covered
        report = check_correct_exploitation(reference, exploited, pattern)
        assert not report.ok
        assert [t["ts"] for t in report.wrongly_suppressed] == [1]

    def test_multiset_semantics_duplicate_must_be_kept_twice(
        self, schema, pattern
    ):
        dup = StreamTuple(schema, (1, 10))
        reference = [dup, dup]
        report = check_correct_exploitation(reference, [dup], pattern)
        assert not report.ok  # one mandatory copy is missing

    def test_multiset_semantics_extra_copy_is_invented(self, schema, pattern):
        t = StreamTuple(schema, (1, 10))
        report = check_correct_exploitation([t], [t, t], pattern)
        assert not report.ok
        assert report.invented == [t]

    def test_exploitation_none_when_nothing_coverable(self, schema):
        reference = [StreamTuple(schema, (1, 0))]
        pattern = Pattern.from_mapping(schema, {"v": AtLeast(1000)})
        report = check_correct_exploitation(reference, reference, pattern)
        assert report.ok
        assert report.exploitation is None

    def test_summary_strings(self, reference, pattern):
        good = check_correct_exploitation(reference, reference, pattern)
        assert "correct exploitation" in good.summary()
        bad = check_correct_exploitation(reference, [], pattern)
        assert "INCORRECT" in bad.summary()
        assert bool(bad) is False
