"""Tests for the Operator base-class plumbing and edge cases."""

import pytest

from repro.core import ExploitAction, FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.errors import FeedbackError, PlanError
from repro.operators import Duplicate, ListSource, Select
from repro.operators.base import Operator
from repro.punctuation import Pattern, Punctuation
from repro.stream import (
    ControlChannel,
    DataQueue,
    Schema,
    StreamTuple,
)

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int")])


def tup(ts, seg=0):
    return StreamTuple(SCHEMA, (ts, seg))


class TestWiring:
    def test_empty_name_rejected(self):
        with pytest.raises(PlanError):
            Select("", SCHEMA, lambda t: True)

    def test_port_out_of_range(self):
        op = Select("s", SCHEMA, lambda t: True)
        with pytest.raises(PlanError, match="out of range"):
            op.attach_input(5, DataQueue(), ControlChannel(), None)

    def test_double_connect_rejected(self):
        op = Select("s", SCHEMA, lambda t: True)
        op.attach_input(0, DataQueue(), ControlChannel(), None)
        with pytest.raises(PlanError, match="already connected"):
            op.attach_input(0, DataQueue(), ControlChannel(), None)

    def test_unconnected_port_lookup(self):
        op = Select("s", SCHEMA, lambda t: True)
        with pytest.raises(PlanError, match="not connected"):
            op.input_port(0)
        assert op.connected is False

    def test_source_rejects_tuples(self):
        source = ListSource("src", SCHEMA, [])
        with pytest.raises(PlanError):
            source.on_tuple(0, tup(0))


class TestEmission:
    def test_emit_to_targets_single_output(self):
        dup = Duplicate("d", SCHEMA)
        harness = OperatorHarness(dup, outputs=2)
        dup.emit_to(1, tup(1))
        assert harness.emitted_tuples(output=0) == []
        assert len(harness.emitted_tuples(output=1)) == 1

    def test_emit_counts_once_across_outputs(self):
        dup = Duplicate("d", SCHEMA)
        harness = OperatorHarness(dup, outputs=3)
        harness.push(tup(1))
        assert dup.metrics.tuples_out == 1  # one logical emission

    def test_emit_punctuation_expires_output_guards(self):
        op = Select("s", SCHEMA, lambda t: True)
        harness = OperatorHarness(op)
        from repro.punctuation import AtMost
        op.output_guards.install(
            Pattern.from_mapping(SCHEMA, {"ts": AtMost(5.0)})
        )
        op.emit_punctuation(Punctuation.up_to(SCHEMA, "ts", 5.0))
        assert op.output_guards.active == 0

    def test_flush_outputs_ships_open_pages(self):
        op = Select("s", SCHEMA, lambda t: True)
        harness = OperatorHarness(op)
        harness.push(tup(1))
        # The element sits in the open page until flushed.
        queue = op.outputs[0].queue
        assert queue.ready_pages == 0
        op.flush_outputs()
        assert queue.ready_pages == 1


class TestFeedbackPlumbing:
    def test_arity_mismatch_raises(self):
        op = Select("s", SCHEMA, lambda t: True)
        OperatorHarness(op)
        with pytest.raises(FeedbackError, match="arity"):
            op.receive_feedback(
                FeedbackPunctuation.assumed(Pattern.build(1))
            )

    def test_relay_disabled_stops_propagation(self):
        op = Select("s", SCHEMA, lambda t: True)
        op.relay_enabled = False
        harness = OperatorHarness(op)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"seg": 1})
            )
        )
        assert ExploitAction.PROPAGATE not in actions
        assert harness.upstream_feedback(0) == []

    def test_operator_without_mapping_does_not_relay(self):
        class Opaque(Operator):
            feedback_aware = True

            def on_tuple(self, port_index, t):
                self.emit(t)

        op = Opaque("opaque", SCHEMA)
        harness = OperatorHarness(op)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"seg": 1})
            )
        )
        # Default exploitation (output guard), but nothing to relay.
        assert ExploitAction.GUARD_OUTPUT in actions
        assert harness.upstream_feedback(0) == []

    def test_default_output_guard_is_always_correct(self):
        class Opaque(Operator):
            feedback_aware = True

            def on_tuple(self, port_index, t):
                self.emit(t)

        pattern = Pattern.from_mapping(SCHEMA, {"seg": 1})
        op = Opaque("opaque", SCHEMA)
        harness = OperatorHarness(op)
        harness.feedback(FeedbackPunctuation.assumed(pattern))
        harness.push(tup(0, seg=1))
        harness.push(tup(1, seg=2))
        out = harness.emitted_tuples()
        assert [t["seg"] for t in out] == [2]

    def test_feedback_log_records_events(self):
        op = Select("s", SCHEMA, lambda t: True)
        harness = OperatorHarness(op)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"seg": 1})
            )
        )
        log = op.runtime.feedback_log
        assert len(log) == 1
        assert log.by_operator("s")
        assert log.with_action(ExploitAction.GUARD_INPUT)

    def test_desired_and_demanded_default_to_noop(self):
        op = Select("s", SCHEMA, lambda t: True)
        harness = OperatorHarness(op)
        pattern = Pattern.from_mapping(SCHEMA, {"seg": 1})
        desired = harness.feedback(FeedbackPunctuation.desired(pattern))
        demanded = harness.feedback(FeedbackPunctuation.demanded(pattern))
        # Stateless select has nothing to reorder or partially emit, but
        # both are still relayed (they are harmless upstream).
        assert ExploitAction.GUARD_INPUT not in desired
        assert ExploitAction.GUARD_INPUT not in demanded

    def test_guarded_drop_hook_called(self):
        seen = []

        class Watchful(Select):
            def on_guarded_drop(self, port_index, t):
                seen.append(t)

        op = Watchful("w", SCHEMA, lambda t: True)
        harness = OperatorHarness(op)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"seg": 1})
            )
        )
        harness.push(tup(0, seg=1))
        assert seen == [tup(0, seg=1)]

    def test_guards_expired_hook_called(self):
        seen = []

        class Watchful(Select):
            def on_guards_expired(self, port_index, punct, released):
                seen.extend(released)

        from repro.punctuation import AtMost
        op = Watchful("w", SCHEMA, lambda t: True)
        harness = OperatorHarness(op)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(SCHEMA, {"ts": AtMost(5.0)})
            )
        )
        harness.push_punctuation(Punctuation.up_to(SCHEMA, "ts", 10.0))
        assert len(seen) == 1
