"""Unit tests for stateless unary operators: Select, Project, Map, PassThrough."""

import pytest

from repro.core import ExploitAction, FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.operators import Map, PassThrough, Project, QualityFilter, Select
from repro.punctuation import AtLeast, Pattern, Punctuation
from repro.stream import Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])


def tup(schema, ts, seg=0, v=1.0):
    return StreamTuple(schema, (ts, seg, v))


class TestSelect:
    def test_predicate_filtering(self, schema):
        select = Select("keep", schema, lambda t: t["v"] > 2.0)
        harness = OperatorHarness(select)
        harness.push(tup(schema, 0, v=1.0))
        harness.push(tup(schema, 1, v=3.0))
        kept = harness.emitted_tuples()
        assert [t["ts"] for t in kept] == [1]

    def test_pattern_predicate(self, schema):
        select = Select(
            "keep", schema, Pattern.from_mapping(schema, {"seg": 2})
        )
        harness = OperatorHarness(select)
        harness.push(tup(schema, 0, seg=2))
        harness.push(tup(schema, 1, seg=3))
        assert len(harness.emitted_tuples()) == 1

    def test_punctuation_passes_through(self, schema):
        select = Select("keep", schema, lambda t: True)
        harness = OperatorHarness(select)
        punct = Punctuation.up_to(schema, "ts", 5.0)
        harness.push_punctuation(punct)
        assert harness.emitted_punctuation() == [punct]

    def test_assumed_feedback_becomes_input_guard(self, schema):
        select = Select("keep", schema, lambda t: True)
        harness = OperatorHarness(select)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"seg": 1})
            )
        )
        assert ExploitAction.GUARD_INPUT in actions
        harness.push(tup(schema, 0, seg=1))
        harness.push(tup(schema, 1, seg=2))
        assert [t["seg"] for t in harness.emitted_tuples()] == [2]
        assert select.metrics.input_guard_drops == 1

    def test_select_relays_feedback_upstream(self, schema):
        select = Select("keep", schema, lambda t: True)
        harness = OperatorHarness(select)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(schema, {"seg": 1})
        )
        actions = harness.feedback(fb)
        assert ExploitAction.PROPAGATE in actions
        relayed = harness.upstream_feedback(0)
        assert len(relayed) == 1
        assert relayed[0].pattern == fb.pattern
        assert relayed[0].hops == 1

    def test_quality_filter_carries_cost(self, schema):
        quality = QualityFilter(
            "q", schema, lambda t: True, tuple_cost=0.5
        )
        assert quality.cost_of(tup(schema, 0)) == 0.5

    def test_guarded_drop_costs_guard_check_not_tuple_cost(self, schema):
        select = Select("keep", schema, lambda t: True, tuple_cost=1.0)
        harness = OperatorHarness(select)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"seg": 1})
            )
        )
        assert select.admission_cost(0, tup(schema, 0, seg=1)) == 0.0
        assert select.admission_cost(0, tup(schema, 0, seg=2)) == 1.0


class TestProject:
    def test_projection(self, schema):
        project = Project("p", schema, ["v", "seg"])
        harness = OperatorHarness(project)
        harness.push(tup(schema, 5, seg=2, v=9.0))
        out = harness.emitted_tuples()[0]
        assert out.values == (9.0, 2)
        assert out.schema.names == ("v", "seg")

    def test_punctuation_projected_when_lossless(self, schema):
        project = Project("p", schema, ["ts", "seg"])
        harness = OperatorHarness(project)
        harness.push_punctuation(Punctuation.up_to(schema, "ts", 5.0))
        puncts = harness.emitted_punctuation()
        assert len(puncts) == 1
        assert puncts[0].pattern.arity == 2

    def test_punctuation_on_dropped_attribute_absorbed(self, schema):
        project = Project("p", schema, ["ts", "seg"])
        harness = OperatorHarness(project)
        harness.push_punctuation(
            Punctuation(Pattern.from_mapping(schema, {"v": AtLeast(5)}))
        )
        assert harness.emitted_punctuation() == []

    def test_feedback_back_mapped_to_input_guard(self, schema):
        project = Project("p", schema, ["v", "seg"])
        harness = OperatorHarness(project)
        out_pattern = Pattern.from_mapping(
            project.output_schema, {"seg": 1}
        )
        actions = harness.feedback(FeedbackPunctuation.assumed(out_pattern))
        assert ExploitAction.GUARD_INPUT in actions
        harness.push(tup(schema, 0, seg=1))
        assert harness.emitted_tuples() == []
        assert project.metrics.input_guard_drops == 1


class TestMap:
    def test_extending_adds_computed_attribute(self, schema):
        window_map = Map.extending(
            "win", schema, [("window", "int", True)],
            lambda t: (int(t["ts"] // 10),),
        )
        harness = OperatorHarness(window_map)
        harness.push(tup(schema, 25.0))
        out = harness.emitted_tuples()[0]
        assert out["window"] == 2
        assert out["ts"] == 25.0

    def test_feedback_on_carried_attribute_relays(self, schema):
        window_map = Map.extending(
            "win", schema, [("window", "int", True)],
            lambda t: (int(t["ts"] // 10),),
        )
        harness = OperatorHarness(window_map)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(window_map.output_schema, {"seg": 3})
        )
        actions = harness.feedback(fb)
        assert ExploitAction.GUARD_INPUT in actions
        assert harness.upstream_feedback(0) != []

    def test_feedback_on_computed_attribute_guards_output_only(self, schema):
        window_map = Map.extending(
            "win", schema, [("window", "int", True)],
            lambda t: (int(t["ts"] // 10),),
        )
        harness = OperatorHarness(window_map)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(window_map.output_schema, {"window": 2})
        )
        actions = harness.feedback(fb)
        assert ExploitAction.GUARD_OUTPUT in actions
        assert harness.upstream_feedback(0) == []
        # The output guard suppresses matching results.
        harness.push(tup(schema, 25.0))
        harness.push(tup(schema, 35.0))
        assert [t["window"] for t in harness.emitted_tuples()] == [3]

    def test_punctuation_forwarding_on_carried_attrs(self, schema):
        window_map = Map.extending(
            "win", schema, [("window", "int", True)],
            lambda t: (int(t["ts"] // 10),),
        )
        harness = OperatorHarness(window_map)
        harness.push_punctuation(Punctuation.up_to(schema, "ts", 9.0))
        puncts = harness.emitted_punctuation()
        assert len(puncts) == 1
        assert puncts[0].pattern.arity == len(window_map.output_schema)


class TestPassThrough:
    def test_forwards_everything(self, schema):
        passthrough = PassThrough("parse", schema, tuple_cost=0.25)
        harness = OperatorHarness(passthrough)
        harness.push(tup(schema, 0))
        harness.push_punctuation(Punctuation.up_to(schema, "ts", 1.0))
        emitted = harness.emitted()
        assert len(emitted) == 2

    def test_ignores_feedback(self, schema):
        passthrough = PassThrough("parse", schema)
        harness = OperatorHarness(passthrough)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"seg": 1})
            )
        )
        assert actions == [ExploitAction.IGNORE]
        assert harness.upstream_feedback(0) == []
        assert passthrough.metrics.feedback_ignored == 1
        # Matching tuples still pass: null response.
        harness.push(tup(schema, 0, seg=1))
        assert len(harness.emitted_tuples()) == 1
