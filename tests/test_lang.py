"""Tests for the punctuation mini-language (parse / format round trips)."""

import pytest

from repro.core import FeedbackIntent
from repro.errors import PatternError
from repro.lang import (
    format_feedback,
    format_pattern,
    parse_feedback,
    parse_pattern,
    parse_punctuation,
)
from repro.punctuation import (
    AtLeast,
    AtMost,
    Equals,
    GreaterThan,
    InSet,
    LessThan,
)
from repro.stream import Schema


class TestParsePattern:
    def test_wildcards(self):
        p = parse_pattern("[*, *, *]")
        assert p.is_all_wildcard and p.arity == 3

    def test_paper_timestamp_example(self):
        # [*, *, <='2008-12-08 9:00 AM'] from section 3.1.
        p = parse_pattern("[*, *, <='2008-12-08 9:00 AM']")
        assert p.atoms[2] == AtMost("2008-12-08 9:00 AM")

    def test_comparisons(self):
        p = parse_pattern("[<5, <=5, >5, >=5, =5]")
        assert p.atoms == (
            LessThan(5), AtMost(5), GreaterThan(5), AtLeast(5), Equals(5)
        )

    def test_unicode_comparisons(self):
        p = parse_pattern("[≤10, ≥20]")
        assert p.atoms == (AtMost(10), AtLeast(20))

    def test_set_literal(self):
        p = parse_pattern("[in{1, 2, 3}, *]")
        assert p.atoms[0] == InSet({1, 2, 3})

    def test_numbers_and_strings(self):
        p = parse_pattern("[42, 3.5, 'hello', plain]")
        assert p.atoms[0] == Equals(42)
        assert p.atoms[1] == Equals(3.5)
        assert p.atoms[2] == Equals("hello")
        assert p.atoms[3] == Equals("plain")

    def test_none_and_bool(self):
        p = parse_pattern("[None, True, False]")
        assert p.atoms[0] == Equals(None)
        assert p.atoms[1] == Equals(True)
        assert p.atoms[2] == Equals(False)

    def test_schema_binding(self):
        schema = Schema.of("period", "segment", "data")
        p = parse_pattern("[7, 3, *]", schema=schema)
        assert p.constrained_names() == ("period", "segment")

    def test_errors(self):
        with pytest.raises(PatternError):
            parse_pattern("7, 3")          # no brackets
        with pytest.raises(PatternError):
            parse_pattern("[7, 3] extra")  # trailing junk
        with pytest.raises(PatternError):
            parse_pattern("[in{}]")        # empty set
        with pytest.raises(PatternError):
            parse_pattern("['unterminated]")


class TestParseFeedback:
    @pytest.mark.parametrize("glyph, intent", [
        ("¬", FeedbackIntent.ASSUMED),
        ("~", FeedbackIntent.ASSUMED),
        ("?", FeedbackIntent.DESIRED),
        ("!", FeedbackIntent.DEMANDED),
    ])
    def test_intents(self, glyph, intent):
        fb = parse_feedback(f"{glyph}[*, >=50]")
        assert fb.intent is intent
        assert fb.pattern.atoms[1] == AtLeast(50)

    def test_papers_impatient_example(self):
        fb = parse_feedback("?[7, 3, *]")
        assert fb.is_desired and fb.pattern.atoms[0] == Equals(7)

    def test_issuer_recorded(self):
        fb = parse_feedback("¬[*, 1]", issuer="pace")
        assert fb.issuer == "pace"

    def test_missing_glyph_rejected(self):
        with pytest.raises(PatternError):
            parse_feedback("[*, 1]")


class TestParsePunctuation:
    def test_embedded(self):
        punct = parse_punctuation("[*, <=9.0]")
        assert punct.is_punctuation
        assert punct.covers((1, 5.0))


class TestRoundTrips:
    @pytest.mark.parametrize("text", [
        "[*, *]",
        "[<=5, *]",
        "[>=50, <3, >7]",
        "[in{1, 2}, *]",
        "['a b', 42]",
        "[3.5, *]",
    ])
    def test_pattern_round_trip(self, text):
        pattern = parse_pattern(text)
        assert parse_pattern(format_pattern(pattern)) == pattern

    @pytest.mark.parametrize("text", ["¬[*, >=50]", "?[7, 3, *]", "![<=5, *]"])
    def test_feedback_round_trip(self, text):
        fb = parse_feedback(text)
        again = parse_feedback(format_feedback(fb))
        assert again == fb

    def test_format_feedback_uses_glyph(self):
        assert format_feedback(parse_feedback("~[*, 1]")).startswith("¬")
