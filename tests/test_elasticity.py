"""Elastic autoscaling: runtime re-partitioning over the control plane.

Covers the elasticity subsystem end to end: slot routing (elastic-off
stays byte-identical to plain hashing), scale/greedy policies as pure
functions, the two-phase cut/install protocol on every engine that
supports it, the abort path, the decline ledger, adaptive watermarks,
and the metrics rollups across a lane-count change.  The hypothesis
property pins the migration invariant: a rebalance moves *exactly* the
state of keys whose lane changed -- no more, no less -- while the sink's
multiset and exact punctuation sequence are preserved.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import Flow, Schema, StreamTuple
from repro.api import avg, count
from repro.core.feedback import RebalancePunctuation
from repro.elasticity import (
    ElasticConfig,
    GreedySlotPolicy,
    Observations,
    RebalanceAction,
    RebalanceRouter,
    ScaleAction,
    ScriptedPolicy,
    scale_assignments,
)
from repro.elasticity.rebalance import key_digest
from repro.engine import create_engine, fork_available
from repro.errors import EngineError, FeedbackError, PlanError
from repro.stream.queues import DataQueue

SCHEMA = Schema([
    ("ts", "timestamp", True), ("sensor", "int"), ("value", "float"),
])


def rows(n, *, keys=(0, 1, 2, 3), dt=0.05):
    return [
        (i * dt, StreamTuple(
            SCHEMA, (i * dt, keys[i % len(keys)], float(i))
        ))
        for i in range(n)
    ]


def shard_flow(
    n=2, *, n_rows=200, keys=(0, 1, 2, 3), dt=0.05, every=1.0,
    width=1.0, pipeline=None, **flow_kwargs,
):
    flow = Flow("elastic", **flow_kwargs)
    lane_pipeline = pipeline or (
        lambda lane: lane.window(count(), on="ts", width=width, by="sensor")
    )
    (flow.source(SCHEMA, rows(n_rows, keys=keys, dt=dt), name="src")
         .punctuate(on="ts", every=every)
         .shard(n, key="sensor", name="region", pipeline=lane_pipeline)
         .collect("sink", keep_punctuation=True))
    return flow


def sink_rows(result):
    return sorted(
        tuple(t.values)
        for t in result.sink("sink").results
        if not t.is_punctuation
    )


def sink_punct_patterns(result):
    return [p.pattern for p in result.sink("sink").punctuations]


def slot_of(key, num_slots):
    return key_digest((key,)) % num_slots


def move_for(key, num_slots, fanout):
    """A RebalanceAction relocating ``key``'s slot to the other lane."""
    slot = slot_of(key, num_slots)
    dest = (slot % fanout + 1) % fanout
    return RebalanceAction.moving({slot: dest}), slot, dest


# ---------------------------------------------------------------- routing


class TestRouter:
    def test_identity_matches_plain_hashing(self):
        # Elastic-off stays byte-identical: the identity table routes
        # every key exactly where digest % fanout always did.
        for fanout in (2, 3, 4, 8):
            router = RebalanceRouter.identity(fanout, 16)
            for key in range(200):
                digest = key_digest((key,))
                assert (
                    router.lane_of_key(key) == digest % fanout
                ), f"key {key} fanout {fanout}"

    def test_with_assignments_and_lanes_in_use(self):
        router = RebalanceRouter.identity(2, 4)
        assert router.lanes_in_use == frozenset({0, 1})
        moved = router.with_assignments({0: 1, 2: 1, 4: 1, 6: 1})
        assert moved.lanes_in_use == frozenset({1})
        assert router.table != moved.table  # original untouched

    def test_scale_assignments_minimal_moves(self):
        table = tuple(s % 4 for s in range(16))
        down = scale_assignments(table, 2)
        # Every slot on a parked lane moves; no slot already on a
        # surviving lane moves unless leveling requires it.
        new_table = list(table)
        for slot, dest in down.items():
            new_table[slot] = dest
        assert set(new_table) == {0, 1}
        counts = [new_table.count(lane) for lane in (0, 1)]
        assert max(counts) - min(counts) <= 1
        assert scale_assignments(table, 4) == {}  # already there

    def test_scale_assignments_bounds(self):
        table = tuple(s % 4 for s in range(16))
        with pytest.raises(PlanError):
            scale_assignments(table, 0)
        with pytest.raises(PlanError):
            scale_assignments(table, 17)


# ---------------------------------------------------------------- policies


def obs(table, loads, *, fanout=None, min_lanes=1, max_lanes=None):
    fanout = fanout if fanout is not None else max(table) + 1
    return Observations(
        group="g", fanout=fanout, table=tuple(table),
        slot_loads=tuple(loads),
        lane_occupancy=(0,) * fanout,
        min_lanes=min_lanes,
        max_lanes=fanout if max_lanes is None else max_lanes,
    )


class TestGreedySlotPolicy:
    def test_balanced_is_left_alone(self):
        policy = GreedySlotPolicy(imbalance=1.25)
        assert policy.decide(obs([0, 1, 0, 1], [5, 5, 5, 5])) is None
        assert policy.decide(obs([0, 1, 0, 1], [0, 0, 0, 0])) is None

    def test_hot_slot_moves_to_coolest_lane(self):
        action = GreedySlotPolicy(imbalance=1.1).decide(
            obs([0, 1, 0, 1], [90, 1, 10, 1])
        )
        assert isinstance(action, RebalanceAction)
        # Slot 0 is the hottest movable slot on lane 0; lane 1 is cold.
        assert dict(action.assignments) == {0: 1}

    def test_monster_key_is_never_relocated_alone(self):
        # One slot carries the whole lane: moving it just moves the
        # hotspot, so the policy must decline.
        policy = GreedySlotPolicy(imbalance=1.1)
        assert policy.decide(obs([0, 1, 0, 1], [100, 1, 0, 1])) is None

    def test_max_moves_caps_a_decision(self):
        action = GreedySlotPolicy(imbalance=1.1, max_moves=1).decide(
            obs([0, 1, 0, 1, 0, 1], [50, 0, 40, 0, 30, 0])
        )
        assert isinstance(action, RebalanceAction)
        assert len(action.assignments) == 1

    def test_scale_to_load_requests_more_lanes(self):
        policy = GreedySlotPolicy(scale_to_load=100)
        action = policy.decide(
            obs([0] * 8, [40] * 8, fanout=4)
        )  # 320 total on 1 active lane -> wants ceil(320/100) = 4
        assert action == ScaleAction(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            GreedySlotPolicy(imbalance=0.5)
        with pytest.raises(ValueError):
            GreedySlotPolicy(max_moves=0)


class TestElasticConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"min_lanes": 0},
        {"min_lanes": 3, "max_lanes": 2},
        {"interval": 0.0},
        {"slots_per_lane": 0},
        {"queue_headroom": 0.0},
        {"min_capacity": 1},
        {"min_capacity": 8, "max_capacity": 4},
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ElasticConfig(**kwargs)

    def test_elastic_wants_a_config(self):
        plan = shard_flow().build()
        with pytest.raises(EngineError, match="ElasticConfig"):
            create_engine("simulated", plan, elastic={"interval": 1.0})

    def test_elastic_and_checkpoints_refuse_to_combine(self):
        plan = shard_flow().build()
        with pytest.raises(EngineError, match="checkpoint"):
            create_engine(
                "simulated", plan,
                elastic=ElasticConfig(), checkpoint_every=1.0,
            )


# ------------------------------------------------------------- punctuation


class TestRebalancePunctuation:
    def test_phase_validation(self):
        with pytest.raises(FeedbackError):
            RebalancePunctuation(1, "migrate")

    def test_immutable(self):
        marker = RebalancePunctuation(1, "cut", issuer="region")
        with pytest.raises(AttributeError):
            marker.phase = "install"
        assert marker.is_punctuation


# ---------------------------------------------------------------- declines


class TestDeclines:
    @pytest.mark.skipif(
        not fork_available(), reason="multiprocess needs fork"
    )
    def test_multiprocess_engine_declines(self):
        result = shard_flow().run(
            "multiprocess", elastic=ElasticConfig()
        )
        assert any(
            what == "engine" and "multiprocess" in why
            for what, why in result.metrics.elastic_declines
        )
        assert sink_rows(result) == sink_rows(shard_flow().run("simulated"))

    def test_plan_without_shard_regions_declines(self):
        flow = Flow("flat")
        (flow.source(SCHEMA, rows(40), name="src")
             .punctuate(on="ts", every=1.0)
             .collect("sink"))
        result = flow.run("simulated", elastic=ElasticConfig())
        assert ("plan", "no shard regions to rebalance") in (
            result.metrics.elastic_declines
        )

    def test_single_lane_shard_declines_as_planless(self):
        # shard(1) compiles inline -- no partition, no merge, no shard
        # group -- so elasticity sees a plan with nothing to rebalance.
        result = shard_flow(1).run("simulated", elastic=ElasticConfig())
        assert ("plan", "no shard regions to rebalance") in (
            result.metrics.elastic_declines
        )

    def test_non_migratable_member_declines(self):
        # Aggregating by an attribute set that misses the partition key
        # leaves no keyed extraction path; the region must decline and
        # run statically rather than corrupt state.
        flow = shard_flow(
            2,
            pipeline=lambda lane: lane.window(
                avg("value"), on="ts", width=1.0
            ),
        )
        result = flow.run(
            "simulated",
            elastic=ElasticConfig(
                interval=0.5,
                policy=ScriptedPolicy([RebalanceAction.moving({0: 1})]),
            ),
        )
        declines = dict(result.metrics.elastic_declines)
        assert "region" in declines
        assert "sensor" in declines["region"]
        assert result.metrics.shard_metrics["region"].rebalances == 0


# ----------------------------------------------------- the rebalance protocol


class TestRebalanceParity:
    def test_simulated_migration_preserves_everything(self):
        baseline = shard_flow().run("simulated")
        action, slot, dest = move_for(0, 2 * 4, 2)
        elastic = shard_flow().run(
            "simulated",
            elastic=ElasticConfig(
                interval=1.0, slots_per_lane=4,
                policy=ScriptedPolicy([None, action]),
            ),
        )
        assert sink_rows(elastic) == sink_rows(baseline)
        assert (
            sink_punct_patterns(elastic) == sink_punct_patterns(baseline)
        )
        group = elastic.metrics.shard_metrics["region"]
        assert group.rebalances == 1

    def test_elastic_off_is_byte_identical(self):
        # No elastic= -> not a single marker, counter or stash in the
        # path: ordered output matches exactly, and the armed-but-idle
        # identity run matches too (identity table == plain hashing).
        plain = shard_flow().run("simulated")
        again = shard_flow().run("simulated")
        idle = shard_flow().run(
            "simulated",
            elastic=ElasticConfig(policy=ScriptedPolicy([])),
        )

        def ordered(r):
            return [tuple(t.values) for t in r.sink("sink").results]

        assert ordered(plain) == ordered(again) == ordered(idle)

    @pytest.mark.parametrize("engine", ["threaded", "asyncio"])
    def test_concurrent_engine_parity(self, engine):
        import time

        baseline = shard_flow().run("simulated")
        action, _, _ = move_for(0, 2 * 4, 2)

        def paced_flow():
            # Pace the stream *upstream* of the partition (wall-clock
            # engines replay the source as fast as possible): ~200ms of
            # partition lifetime against a 5ms ticker, so the scripted
            # move lands and the install round-trips mid-stream.
            def pace(t):
                time.sleep(0.001)
                return True

            flow = Flow("elastic", page_size=1)
            (flow.source(SCHEMA, rows(200), name="src")
                 .punctuate(on="ts", every=1.0)
                 .where(pace, name="pace")
                 .shard(2, key="sensor", name="region",
                        pipeline=lambda lane: lane.window(
                            count(), on="ts", width=1.0, by="sensor"
                        ))
                 .collect("sink", keep_punctuation=True))
            return flow

        elastic = paced_flow().run(
            engine,
            elastic=ElasticConfig(
                interval=0.005, slots_per_lane=4,
                policy=ScriptedPolicy([action]),
            ),
        )
        assert sink_rows(elastic) == sink_rows(baseline)
        assert (
            sink_punct_patterns(elastic) == sink_punct_patterns(baseline)
        )
        assert result_rebalances(elastic) >= 1

    def test_scale_down_parks_a_lane(self):
        baseline = shard_flow(
            2, keys=(0, 4)  # one key per lane under identity routing
        ).run("simulated")
        elastic = shard_flow(2, keys=(0, 4)).run(
            "simulated",
            elastic=ElasticConfig(
                interval=1.0, min_lanes=1,
                policy=ScriptedPolicy([None, ScaleAction(1)]),
            ),
        )
        assert sink_rows(elastic) == sink_rows(baseline)
        group = elastic.metrics.shard_metrics["region"]
        assert group.rebalances == 1
        active = [lane.active for lane in group.lanes]
        assert active.count(False) == 1
        # The parked lane is excluded from skew and from the
        # peak-occupancy rollup (satellite: no stale edges).
        assert group.skew() >= 1.0
        assert len(elastic.metrics.inactive_edges) > 0
        for edge_key in elastic.metrics.inactive_edges:
            assert "->" in edge_key  # "producer->consumer[port]" keys
            assert edge_key in elastic.metrics.queue_metrics
        live_peak = elastic.metrics.peak_queue_occupancy()
        all_peaks = max(
            q.peak_occupancy
            for q in elastic.metrics.queue_metrics.values()
        )
        assert 0 <= live_peak <= all_peaks
        assert "(parked)" in elastic.metrics.shard_report()


def result_rebalances(result):
    return result.metrics.shard_metrics["region"].rebalances


# ---------------------------------------------------------- minimal migration


class TestMinimalMigration:
    @given(
        data=st.data(),
        n_keys=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_exactly_the_moved_keys_migrate(self, data, n_keys):
        """A rebalance migrates the state of exactly the keys whose
        lane changed -- the minimal set -- and preserves the sink's
        multiset and punctuation sequence."""
        num_slots = 2 * 4
        keys = tuple(range(n_keys))
        moved_slots = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=num_slots - 1),
                min_size=1, max_size=4,
            )
        )
        table = RebalanceRouter.identity(2, 4).table
        moves = {
            slot: (table[slot] + 1) % 2 for slot in sorted(moved_slots)
        }
        action = RebalanceAction.moving(moves)

        # One wide window so each key holds exactly one open state
        # entry at the cut, and page_size=1 so every key's state is in
        # place (not buffered in an open page) by the first tick.
        flow_kwargs = dict(
            n_rows=120, keys=keys, dt=0.05, every=100.0, width=100.0,
            page_size=1,
        )
        baseline = shard_flow(**flow_kwargs).run("simulated")
        elastic = shard_flow(**flow_kwargs).run(
            "simulated",
            elastic=ElasticConfig(
                interval=1.0, slots_per_lane=4,
                policy=ScriptedPolicy([action]),
            ),
        )
        assert sink_rows(elastic) == sink_rows(baseline)
        assert (
            sink_punct_patterns(elastic) == sink_punct_patterns(baseline)
        )
        expected = {
            key for key in keys
            if slot_of(key, num_slots) in moves
        }
        report = elastic.metrics.shard_metrics["region"]
        assert report.rebalances == 1
        # One open window per key at the cut, so migrated state entries
        # == distinct keys whose slot moved: the minimal set, exactly.
        assert report.keys_migrated == len(expected)


# ------------------------------------------------------- adaptive watermarks


class TestAdaptiveWatermarks:
    def test_queue_resize_validation(self):
        unbounded = DataQueue("q")
        with pytest.raises(EngineError):
            unbounded.resize(16)
        bounded = DataQueue("q", capacity=32)
        with pytest.raises(EngineError):
            bounded.resize(0)
        with pytest.raises(EngineError):
            bounded.resize(16, low_water=16)
        bounded.resize(16)
        assert bounded.capacity == 16
        assert bounded.low_water == 8

    def test_capacities_track_drain_rate(self):
        plan = shard_flow(2, n_rows=400, dt=0.01).build(
            queue_capacity=64
        )
        engine = create_engine(
            "simulated", plan,
            elastic=ElasticConfig(
                interval=0.25, adapt_queues=True,
                policy=ScriptedPolicy([]),
                min_capacity=8,
            ),
        )
        result = engine.run()
        assert engine.elastic.ticks > 1
        assert engine.elastic.queue_resizes > 0
        assert sink_rows(result) == sink_rows(
            shard_flow(2, n_rows=400, dt=0.01).run("simulated")
        )
        for edge in plan.edges:
            if edge.queue.bounded:
                assert edge.queue.capacity >= 8


# ------------------------------------------------- metrics across composites


class TestFusedLaneMetrics:
    def test_fused_stage_metrics_carry_their_lane(self):
        flow = Flow("fuse-lane")
        (flow.source(SCHEMA, rows(80), name="src")
             .punctuate(on="ts", every=1.0)
             .shard(2, key="sensor", name="region",
                    pipeline=lambda lane: lane
                    .where(lambda t: t["value"] >= 0.0)
                    .extend([("d", "float")], lambda t: (t["value"],)))
             .collect("sink"))
        result = flow.run("simulated", optimize=True)
        lane_stage_keys = [
            name for name in result.metrics.operator_metrics
            if name.startswith("region[") and "::" in name
        ]
        assert "region[0]::where+map::where" in lane_stage_keys
        assert "region[1]::where_2+map_2::map_2" in lane_stage_keys
        # Lane rollups resolve the composite: ingress counted per lane.
        group = result.metrics.shard_metrics["region"]
        assert len(group.lanes) == 2
        assert sum(lane.tuples_in for lane in group.lanes) > 0

    def test_unsharded_composites_keep_the_plain_key(self):
        flow = Flow("fuse-flat")
        (flow.source(SCHEMA, rows(40), name="src")
             .punctuate(on="ts", every=1.0)
             .where(lambda t: True, name="keep")
             .extend([("d", "float")], lambda t: (t["value"],), name="ext")
             .collect("sink"))
        result = flow.run("simulated", optimize=True)
        assert "keep+ext::keep" in result.metrics.operator_metrics
