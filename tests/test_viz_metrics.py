"""Tests for ASCII rendering and metrics containers."""

from repro.engine.metrics import (
    OperatorMetrics,
    OutputLog,
    PlanMetrics,
)
from repro.stream import Schema, StreamTuple
from repro.viz import grouped_bars, scatter, series_summary

SCHEMA = Schema.of("x")


def tup(x):
    return StreamTuple(SCHEMA, (x,))


class TestScatter:
    def test_renders_marks_and_legend(self):
        chart = scatter(
            {"clean": [(0, 0), (10, 10)], "imputed": [(5, 2)]},
            width=20, height=5, title="demo",
        )
        assert "demo" in chart
        assert "C = clean" in chart and "I = imputed" in chart
        bottom_row = chart.splitlines()[-3]  # above the axis and x-range
        assert "C" in bottom_row and "I" in bottom_row

    def test_empty(self):
        assert "(no data)" in scatter({}, title="t")

    def test_single_point_no_crash(self):
        chart = scatter({"one": [(1.0, 1.0)]}, width=10, height=3)
        assert "O = one" in chart


class TestGroupedBars:
    def test_bars_scale_to_peak(self):
        chart = grouped_bars(
            {"2 min": {"F0": 100.0, "F1": 50.0}},
            width=20, title="fig7",
        )
        lines = chart.splitlines()
        f0_line = next(l for l in lines if l.strip().startswith("F0"))
        f1_line = next(l for l in lines if l.strip().startswith("F1"))
        assert f0_line.count("#") == 20
        assert f1_line.count("#") == 10

    def test_empty(self):
        assert "(no data)" in grouped_bars({})


class TestSeriesSummary:
    def test_summary(self):
        text = series_summary([(0, 1), (10, 5)], name="s")
        assert "n=2" in text and "s:" in text

    def test_empty(self):
        assert "empty" in series_summary([])


class TestOperatorMetrics:
    def test_state_gauges(self):
        m = OperatorMetrics()
        m.grow_state(3)
        assert m.state_size == 3 and m.peak_state_size == 3
        m.shrink_state(2, purged=True)
        assert m.state_size == 1 and m.state_purged == 2
        m.shrink_state(99)
        assert m.state_size == 0  # clamped

    def test_snapshot_keys(self):
        snap = OperatorMetrics().snapshot()
        assert snap["tuples_in"] == 0
        assert "busy_time" in snap


class TestOutputLog:
    def test_tags_and_series(self):
        log = OutputLog()
        log.record(1.0, tup(1), sink="s", tag="a")
        log.record(2.0, tup(2), sink="s", tag="b")
        assert len(log) == 2
        assert len(log.tagged("a")) == 1
        assert log.series("b") == [(2.0, tup(2))]
        assert len(log.tuples()) == 2


class TestPlanMetrics:
    def test_work_of_and_table(self):
        metrics = PlanMetrics()
        m1, m2 = OperatorMetrics(), OperatorMetrics()
        m1.busy_time, m2.busy_time = 2.0, 3.0
        metrics.operator_metrics = {"a": m1, "b": m2}
        metrics.total_work = 5.0
        assert metrics.work_of("a", "b") == 5.0
        table = metrics.table()
        assert "a" in table and "total work" in table
