"""Unit tests for windowed aggregates: windows, punctuation, feedback."""

import pytest

from repro.core import ExploitAction, FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.errors import PlanError
from repro.operators import AggregateKind, WindowAggregate
from repro.punctuation import AtLeast, AtMost, Interval, Pattern, Punctuation
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([
    ("ts", "timestamp", True), ("seg", "int"), ("speed", "float"),
])


def tup(ts, seg=0, speed=50.0):
    return StreamTuple(SCHEMA, (ts, seg, speed))


def make(kind=AggregateKind.AVG, **kwargs):
    defaults = dict(
        window_attribute="ts", width=10.0,
        value_attribute=None if kind == AggregateKind.COUNT else "speed",
        group_by=("seg",),
    )
    defaults.update(kwargs)
    return WindowAggregate("agg", SCHEMA, kind=kind, **defaults)


def progress(bound):
    return Punctuation.up_to(SCHEMA, "ts", bound, inclusive=False)


class TestWindows:
    def test_window_assignment_tumbling(self):
        agg = make()
        assert list(agg.window_ids(0.0)) == [0]
        assert list(agg.window_ids(9.99)) == [0]
        assert list(agg.window_ids(10.0)) == [1]

    def test_window_assignment_sliding(self):
        agg = make(width=10.0, slide=5.0)
        assert list(agg.window_ids(12.0)) == [1, 2]

    def test_window_bounds(self):
        agg = make()
        assert agg.window_bounds(3) == (30.0, 40.0)

    def test_invalid_parameters(self):
        with pytest.raises(PlanError):
            make(width=-1)
        with pytest.raises(PlanError):
            make(slide=20.0)  # slide > width
        with pytest.raises(PlanError):
            WindowAggregate("x", SCHEMA, kind="median",
                            window_attribute="ts", width=1.0)
        with pytest.raises(PlanError):
            WindowAggregate("x", SCHEMA, kind="sum",
                            window_attribute="ts", width=1.0)  # no value attr
        with pytest.raises(PlanError):
            make(exploit_level=3)


class TestAggregation:
    @pytest.mark.parametrize("kind, expected", [
        (AggregateKind.COUNT, 3),
        (AggregateKind.SUM, 90.0),
        (AggregateKind.AVG, 30.0),
        (AggregateKind.MAX, 40.0),
        (AggregateKind.MIN, 20.0),
    ])
    def test_kinds(self, kind, expected):
        agg = make(kind)
        harness = OperatorHarness(agg)
        for speed in (20.0, 30.0, 40.0):
            harness.push(tup(1.0, seg=0, speed=speed))
        harness.finish()
        result = harness.emitted_tuples()[0]
        assert result.values[-1] == expected

    def test_grouping(self):
        agg = make(AggregateKind.COUNT)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, seg=0))
        harness.push(tup(1.0, seg=1))
        harness.push(tup(2.0, seg=1))
        harness.finish()
        results = {r["seg"]: r["count"] for r in harness.emitted_tuples()}
        assert results == {0: 1, 1: 2}

    def test_sliding_window_tuple_in_multiple_windows(self):
        agg = make(AggregateKind.COUNT, width=10.0, slide=5.0)
        harness = OperatorHarness(agg)
        harness.push(tup(7.0))
        harness.finish()
        windows = sorted(r["window"] for r in harness.emitted_tuples())
        assert windows == [0, 1]


class TestPunctuationDriven:
    def test_progress_punctuation_closes_windows(self):
        agg = make(AggregateKind.COUNT)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0))
        harness.push(tup(12.0))
        harness.push_punctuation(progress(10.0))
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["window"] == 0
        # Window 1 is still open.
        assert agg.metrics.state_size == 1

    def test_emits_window_punctuation_downstream(self):
        agg = make(AggregateKind.COUNT)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0))
        harness.push_punctuation(progress(10.0))
        puncts = harness.emitted_punctuation()
        assert len(puncts) == 1
        assert puncts[0].pattern.matches((0, 99, 99))     # window 0 closed
        assert not puncts[0].pattern.matches((1, 99, 99))

    def test_group_punctuation_closes_group(self):
        agg = make(AggregateKind.COUNT)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, seg=0))
        harness.push(tup(1.0, seg=1))
        harness.push_punctuation(
            Punctuation(Pattern.from_mapping(SCHEMA, {"seg": 0}))
        )
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["seg"] == 0
        assert agg.metrics.state_size == 1

    def test_all_wildcard_punctuation_closes_everything(self):
        agg = make(AggregateKind.COUNT)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0))
        harness.push(tup(25.0))
        harness.push_punctuation(
            Punctuation(Pattern.all_wildcards(3, schema=SCHEMA))
        )
        assert len(harness.emitted_tuples()) == 2
        assert agg.metrics.state_size == 0


class TestGroupFeedback:
    def test_window_and_group_feedback_purges_and_guards(self):
        agg = make(AggregateKind.AVG)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, seg=1))
        harness.push(tup(1.0, seg=2))
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(agg.output_schema, {"window": 0, "seg": 1})
        )
        actions = harness.feedback(fb)
        assert ExploitAction.PURGE_STATE in actions
        assert ExploitAction.GUARD_INPUT in actions
        assert agg.metrics.state_purged == 1
        # Re-forming the purged window is prevented: on tumbling windows
        # the input guard intercepts the tuple before window assignment.
        harness.push(tup(2.0, seg=1))
        assert agg.metrics.input_guard_drops == 1
        harness.finish()
        results = harness.emitted_tuples()
        assert not [r for r in results if r["seg"] == 1 and r["window"] == 0]
        assert [r for r in results if r["seg"] == 2]

    def test_relay_translates_window_to_timestamp_range(self):
        agg = make(AggregateKind.AVG)
        harness = OperatorHarness(agg)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(
                agg.output_schema, {"window": Interval(2, 4), "seg": 1}
            )
        )
        harness.feedback(fb)
        relayed = harness.upstream_feedback(0)
        assert len(relayed) == 1
        pattern = relayed[0].pattern
        assert pattern.matches((25.0, 1, 0.0))
        assert pattern.matches((49.9, 1, 0.0))
        assert not pattern.matches((50.0, 1, 0.0))
        assert not pattern.matches((25.0, 2, 0.0))

    def test_sliding_windows_forbid_input_guard_and_relay(self):
        """Example 2: a filter at the bottom of the plan is incorrect."""
        agg = make(AggregateKind.AVG, width=10.0, slide=5.0)
        harness = OperatorHarness(agg)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(agg.output_schema, {"window": 3})
        )
        actions = harness.feedback(fb)
        assert ExploitAction.GUARD_INPUT not in actions
        assert harness.upstream_feedback(0) == []
        assert harness.input_guard_count() == 0
        # But the aggregate itself avoids the unneeded window: a tuple in
        # windows {2, 3} accumulates only into window 2.
        harness.push(tup(17.0))
        harness.finish()
        windows = sorted(r["window"] for r in harness.emitted_tuples())
        assert windows == [2]
        assert agg.windows_skipped == 1

    def test_exploit_level_1_output_guard_only(self):
        agg = make(AggregateKind.AVG, exploit_level=1)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, seg=1))
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(agg.output_schema, {"seg": 1})
            )
        )
        assert actions == [ExploitAction.GUARD_OUTPUT,
                           ExploitAction.PROPAGATE]
        assert agg.metrics.state_purged == 0


class TestValueFeedback:
    def test_avg_value_feedback_output_guard_only(self):
        """Section 3.5: purging on partial average 51 would be a mistake."""
        agg = make(AggregateKind.AVG)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, speed=51.0))
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(
                    agg.output_schema, {"avg_speed": AtLeast(50.0)}
                )
            )
        )
        assert actions == [ExploitAction.GUARD_OUTPUT]
        assert agg.metrics.state_purged == 0
        # A later small value drags the average below 50: result survives.
        harness.push(tup(2.0, speed=9.0))
        harness.finish()
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["avg_speed"] == 30.0

    def test_max_lower_bound_closes_certain_windows(self):
        """Section 3.5's MAX: partial >= bound is certain to match."""
        agg = make(AggregateKind.MAX)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, seg=0, speed=55.0))  # certain
        harness.push(tup(1.0, seg=1, speed=40.0))  # not certain
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(
                    agg.output_schema, {"max_speed": AtLeast(50.0)}
                )
            )
        )
        assert ExploitAction.PURGE_STATE in actions
        assert ExploitAction.GUARD_INPUT in actions
        # The guard stops the purged window from re-forming on value 40
        # (the paper's "incorrect partial aggregate" hazard).
        harness.push(tup(2.0, seg=0, speed=40.0))
        harness.finish()
        results = {r["seg"]: r["max_speed"] for r in harness.emitted_tuples()}
        assert 0 not in results           # certain window suppressed
        assert results[1] == 40.0         # uncertain window survives

    def test_max_late_bloomer_caught_by_output_guard(self):
        agg = make(AggregateKind.MAX)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, seg=1, speed=40.0))
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(
                    agg.output_schema, {"max_speed": AtLeast(50.0)}
                )
            )
        )
        harness.push(tup(2.0, seg=1, speed=70.0))  # grows past the bound
        harness.finish()
        assert harness.emitted_tuples() == []  # suppressed at the output

    def test_count_state_dependent_relay(self):
        agg = make(AggregateKind.COUNT)
        harness = OperatorHarness(agg)
        for _ in range(5):
            harness.push(tup(1.0, seg=2))
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(agg.output_schema, {"count": AtLeast(5)})
            )
        )
        relayed = harness.upstream_feedback(0)
        assert len(relayed) == 1
        # The propagated G names window 0 x segment 2 in input terms.
        assert relayed[0].pattern.matches((5.0, 2, 0.0))
        assert not relayed[0].pattern.matches((5.0, 3, 0.0))
        assert not relayed[0].pattern.matches((15.0, 2, 0.0))

    def test_min_symmetry_upper_bound_is_certain(self):
        agg = make(AggregateKind.MIN)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, seg=0, speed=10.0))
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(
                    agg.output_schema, {"min_speed": AtMost(20.0)}
                )
            )
        )
        assert ExploitAction.PURGE_STATE in actions

    def test_sum_is_never_certain(self):
        agg = make(AggregateKind.SUM)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, speed=100.0))
        for atom in (AtLeast(50.0), AtMost(500.0)):
            actions = harness.feedback(
                FeedbackPunctuation.assumed(
                    Pattern.from_mapping(
                        agg.output_schema, {"sum_speed": atom}
                    )
                )
            )
            assert ExploitAction.PURGE_STATE not in actions


class TestDemandedAndPolling:
    def test_demanded_emits_partial_now(self):
        agg = make(AggregateKind.AVG)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, seg=0, speed=30.0))
        actions = harness.feedback(
            FeedbackPunctuation.demanded(
                Pattern.from_mapping(agg.output_schema, {"window": 0})
            )
        )
        assert actions[0] is ExploitAction.EMIT_PARTIAL
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["avg_speed"] == 30.0

    def test_demanded_matches_on_current_value_too(self):
        agg = make(AggregateKind.AVG)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, speed=30.0))
        harness.feedback(
            FeedbackPunctuation.demanded(
                Pattern.from_mapping(
                    agg.output_schema, {"avg_speed": AtLeast(25.0)}
                )
            )
        )
        assert len(harness.emitted_tuples()) == 1

    def test_demanded_only_once_per_window(self):
        agg = make(AggregateKind.AVG)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, speed=30.0))
        fb = FeedbackPunctuation.demanded(
            Pattern.from_mapping(agg.output_schema, {"window": 0})
        )
        harness.feedback(fb)
        actions = harness.feedback(fb)
        assert ExploitAction.EMIT_PARTIAL not in actions

    def test_poll_mode_buffers_until_request(self):
        agg = make(AggregateKind.AVG, emit_on_close=False)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, speed=30.0))
        harness.push_punctuation(progress(10.0))
        assert harness.emitted_tuples() == []  # buffered
        agg.on_result_request(None)
        assert len(harness.emitted_tuples()) == 1

    def test_poll_with_pattern_releases_matching_only(self):
        agg = make(AggregateKind.AVG, emit_on_close=False)
        harness = OperatorHarness(agg)
        harness.push(tup(1.0, seg=0, speed=30.0))
        harness.push(tup(1.0, seg=1, speed=40.0))
        harness.push_punctuation(progress(10.0))
        agg.on_result_request(
            Pattern.from_mapping(agg.output_schema, {"seg": 1})
        )
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["seg"] == 1
