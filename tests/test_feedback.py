"""Unit tests for feedback punctuation (intents, provenance, identity)."""

import pytest

from repro.core import FeedbackIntent, FeedbackPunctuation
from repro.errors import FeedbackError
from repro.punctuation import AtLeast, AtMost, Pattern
from repro.stream import Schema


@pytest.fixture
def pattern():
    return Pattern.build("*", AtLeast(50))


class TestIntents:
    def test_glyphs(self):
        assert FeedbackIntent.ASSUMED.glyph == "¬"
        assert FeedbackIntent.DESIRED.glyph == "?"
        assert FeedbackIntent.DEMANDED.glyph == "!"

    def test_from_glyph(self):
        assert FeedbackIntent.from_glyph("¬") is FeedbackIntent.ASSUMED
        assert FeedbackIntent.from_glyph("~") is FeedbackIntent.ASSUMED
        assert FeedbackIntent.from_glyph("?") is FeedbackIntent.DESIRED
        assert FeedbackIntent.from_glyph("!") is FeedbackIntent.DEMANDED

    def test_unknown_glyph(self):
        with pytest.raises(FeedbackError):
            FeedbackIntent.from_glyph("@")


class TestConstruction:
    def test_constructors(self, pattern):
        assert FeedbackPunctuation.assumed(pattern).is_assumed
        assert FeedbackPunctuation.desired(pattern).is_desired
        assert FeedbackPunctuation.demanded(pattern).is_demanded

    def test_assumed_all_wildcard_rejected(self):
        with pytest.raises(FeedbackError, match="entire stream"):
            FeedbackPunctuation.assumed(Pattern.all_wildcards(2))

    def test_demanded_all_wildcard_allowed(self):
        # "I need everything now" is meaningful for on-demand production.
        fb = FeedbackPunctuation.demanded(Pattern.all_wildcards(2))
        assert fb.is_demanded

    def test_provenance_fields(self, pattern):
        fb = FeedbackPunctuation.assumed(pattern, issuer="pace", issued_at=12.5)
        assert fb.issuer == "pace"
        assert fb.issued_at == 12.5
        assert fb.hops == 0

    def test_never_in_stream(self, pattern):
        assert FeedbackPunctuation.assumed(pattern).is_punctuation is False

    def test_immutable(self, pattern):
        fb = FeedbackPunctuation.assumed(pattern)
        with pytest.raises(AttributeError):
            fb.intent = FeedbackIntent.DESIRED

    def test_seq_strictly_increases(self, pattern):
        a = FeedbackPunctuation.assumed(pattern)
        b = FeedbackPunctuation.assumed(pattern)
        assert a.seq < b.seq


class TestDerivation:
    def test_propagated_increments_hops(self, pattern):
        fb = FeedbackPunctuation.assumed(pattern, issuer="join")
        mapped = Pattern.build(AtLeast(50))
        relayed = fb.propagated(mapped, relayer="select")
        assert relayed.hops == 1
        assert relayed.intent is fb.intent
        assert relayed.issuer == "select"
        assert relayed.pattern == mapped

    def test_rebound(self, pattern):
        schema = Schema.of("x", "y")
        fb = FeedbackPunctuation.assumed(pattern).rebound(schema)
        assert fb.pattern.schema == schema


class TestSemantics:
    def test_concerns(self, pattern):
        fb = FeedbackPunctuation.assumed(pattern)
        assert fb.concerns((0, 55))
        assert not fb.concerns((0, 45))

    def test_equality_on_intent_and_pattern(self, pattern):
        a = FeedbackPunctuation.assumed(pattern, issuer="x")
        b = FeedbackPunctuation.assumed(pattern, issuer="y")
        assert a == b
        assert FeedbackPunctuation.desired(pattern) != a

    def test_repr_uses_paper_notation(self):
        fb = FeedbackPunctuation.assumed(Pattern.build("*", AtMost(5)))
        assert repr(fb) == "¬[*, <=5]"
