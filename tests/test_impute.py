"""Unit tests for the simulated archive and the IMPUTE operator."""

import pytest

from repro.core import ExploitAction, FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.operators import ArchiveDB, Impute
from repro.punctuation import AtMost, Pattern, Punctuation
from repro.stream import Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema([
        ("ts", "timestamp", True), ("sensor", "int"), ("speed", "float"),
    ])


def tup(schema, ts, sensor=0, speed=None):
    return StreamTuple(schema, (ts, sensor, speed))


@pytest.fixture
def archive(schema):
    db = ArchiveDB(lambda t: t["sensor"], "speed", default=50.0)
    history = [tup(schema, -1.0, 1, 40.0), tup(schema, -1.0, 1, 60.0),
               tup(schema, -1.0, 2, 30.0)]
    db.load(history)
    return db


class TestArchiveDB:
    def test_query_returns_historical_mean(self, archive, schema):
        assert archive.query(tup(schema, 0, sensor=1)) == 50.0
        assert archive.query(tup(schema, 0, sensor=2)) == 30.0

    def test_unknown_key_returns_default(self, archive, schema):
        assert archive.query(tup(schema, 0, sensor=99)) == 50.0

    def test_none_values_skipped_in_history(self, schema):
        db = ArchiveDB(lambda t: t["sensor"], "speed", default=7.0)
        db.load([tup(schema, -1.0, 1, None)])
        assert len(db) == 0
        assert db.query(tup(schema, 0, sensor=1)) == 7.0

    def test_query_counter(self, archive, schema):
        archive.query(tup(schema, 0, sensor=1))
        archive.query(tup(schema, 0, sensor=1))
        assert archive.queries == 2


class TestImpute:
    def make(self, schema, archive, **kwargs):
        defaults = dict(value_attribute="speed", lookup_cost=1.0,
                        tuple_cost=0.01)
        defaults.update(kwargs)
        return Impute("impute", schema, archive, **defaults)

    def test_dirty_tuples_get_estimates(self, schema, archive):
        impute = self.make(schema, archive)
        harness = OperatorHarness(impute)
        harness.push(tup(schema, 0, sensor=1, speed=None))
        out = harness.emitted_tuples()[0]
        assert out["speed"] == 50.0
        assert impute.imputed_count == 1

    def test_clean_tuples_pass_unchanged(self, schema, archive):
        impute = self.make(schema, archive)
        harness = OperatorHarness(impute)
        harness.push(tup(schema, 0, sensor=1, speed=33.0))
        assert harness.emitted_tuples()[0]["speed"] == 33.0
        assert archive.queries == 0

    def test_cost_model_charges_lookups_for_dirty_only(self, schema, archive):
        impute = self.make(schema, archive)
        assert impute.cost_of(tup(schema, 0, speed=None)) == 1.0
        assert impute.cost_of(tup(schema, 0, speed=5.0)) == 0.01

    def test_assumed_feedback_guards_input(self, schema, archive):
        impute = self.make(schema, archive)
        harness = OperatorHarness(impute)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"ts": AtMost(10.0)})
            )
        )
        assert ExploitAction.GUARD_INPUT in actions
        harness.push(tup(schema, 5.0, sensor=1, speed=None))   # late: dropped
        harness.push(tup(schema, 15.0, sensor=1, speed=None))  # fresh: kept
        assert len(harness.emitted_tuples()) == 1
        assert archive.queries == 1  # the late tuple never paid a lookup

    def test_guarded_drop_is_cheap(self, schema, archive):
        impute = self.make(schema, archive)
        harness = OperatorHarness(impute)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"ts": AtMost(10.0)})
            )
        )
        assert impute.admission_cost(0, tup(schema, 5.0, speed=None)) == 0.0
        assert impute.admission_cost(0, tup(schema, 15.0, speed=None)) == 1.0

    def test_guard_expires_with_punctuation(self, schema, archive):
        impute = self.make(schema, archive)
        harness = OperatorHarness(impute)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"ts": AtMost(10.0)})
            )
        )
        assert harness.input_guard_count() == 1
        harness.push_punctuation(Punctuation.up_to(schema, "ts", 10.0))
        assert harness.input_guard_count() == 0  # no predicate-state leak

    def test_feedback_relays_upstream(self, schema, archive):
        impute = self.make(schema, archive)
        harness = OperatorHarness(impute)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(schema, {"ts": AtMost(10.0)})
            )
        )
        assert len(harness.upstream_feedback(0)) == 1

    def test_custom_dirtiness_predicate(self, schema, archive):
        impute = self.make(
            schema, archive, is_dirty=lambda t: t["speed"] == -1.0
        )
        harness = OperatorHarness(impute)
        harness.push(tup(schema, 0, sensor=2, speed=-1.0))
        assert harness.emitted_tuples()[0]["speed"] == 30.0
