"""Scenario tests: the paper's named examples run end to end.

Each test builds the full multi-operator plan of one motivating scenario
and asserts the claimed benefit *and* result preservation, mirroring the
example scripts but with assertions instead of prints.
"""


from repro.engine import QueryPlan, Simulator
from repro.engine.audit import audit_quiescence
from repro.operators import (
    AggregateKind,
    CollectSink,
    ListSource,
    Map,
    PunctuatedSource,
    QualityFilter,
    SymmetricHashJoin,
    ThriftyJoin,
    WindowAggregate,
)
from repro.punctuation import Pattern
from repro.stream import Schema, StreamTuple
from repro.workloads import DETECTOR_SCHEMA, PROBE_SCHEMA, TrafficWorkload

WINDOW = 20.0


def build_speedmap(feedback_join_cls):
    """The Figure 1(b) plan (as in examples/speedmap.py, condensed)."""
    workload = TrafficWorkload(
        segments=6, detectors_per_segment=4,
        report_interval=WINDOW, horizon=600.0,
        probes_per_segment=5.0, seed=33,
    )
    plan = QueryPlan("speedmap-test")
    sensors = PunctuatedSource(
        "sensors", DETECTOR_SCHEMA, workload.detector_timeline(),
        punctuate_on="timestamp", punctuation_interval=WINDOW,
    )
    sensor_windows = Map.extending(
        "sensor_windows", DETECTOR_SCHEMA, [("window", "int", True)],
        lambda t: (int(t["timestamp"] // WINDOW),),
    )
    vehicles = PunctuatedSource(
        "vehicles", PROBE_SCHEMA, workload.probe_timeline(),
        punctuate_on="timestamp", punctuation_interval=WINDOW,
    )
    clean = QualityFilter(
        "clean", PROBE_SCHEMA,
        lambda t: t["speed"] is not None and t["speed"] > 0,
        tuple_cost=0.004,
    )
    aggregate = WindowAggregate(
        "aggregate", PROBE_SCHEMA, kind=AggregateKind.AVG,
        window_attribute="timestamp", width=WINDOW,
        value_attribute="speed", group_by=("segment",),
        value_name="vehicle_speed", tuple_cost=0.002,
    )
    join = feedback_join_cls(
        "join", sensor_windows.output_schema, aggregate.output_schema,
        on=[("window", "window"), ("segment", "segment")],
        condition=lambda s, a: s["speed"] is not None and s["speed"] < 45.0,
        how="left_outer",
    )
    sink = CollectSink("sink", join.output_schema)
    for op in (sensors, sensor_windows, vehicles, clean, aggregate, join, sink):
        plan.add(op)
    plan.connect(sensors, sensor_windows)
    plan.connect(sensor_windows, join, port=0)
    plan.connect(vehicles, clean)
    plan.connect(clean, aggregate)
    plan.connect(aggregate, join, port=1)
    plan.connect(join, sink)
    return plan, sink


class TestSpeedMapScenario:
    def test_outer_join_covers_every_sensor_report(self):
        plan, sink = build_speedmap(SymmetricHashJoin)
        Simulator(plan).run()
        sensors = plan.operator("sensors")
        assert len(sink.results) == sensors.metrics.tuples_out
        # Some rows vehicle-backed, some padded.
        backed = [r for r in sink.results if r["vehicle_speed"] is not None]
        padded = [r for r in sink.results if r["vehicle_speed"] is None]
        assert backed and padded

    def test_plan_is_quiescent(self):
        plan, _ = build_speedmap(SymmetricHashJoin)
        Simulator(plan).run()
        report = audit_quiescence(plan)
        assert report.ok, report.summary()


PROBE = Schema([("window", "int", True), ("loc", "int"), ("speed", "float")])
SENSOR = Schema([("window", "int", True), ("loc", "int"), ("reading", "float")])


class TestThriftyScenario:
    """Section 3.3 'Adaptive': empty probe windows silence the sensor side."""

    def build(self, join_cls):
        # Probe stream with data only in even windows; punctuation closes
        # each window as it passes.
        probe_rows = []
        for window in range(10):
            arrival = float(window)
            if window % 2 == 0:
                probe_rows.append(
                    (arrival, StreamTuple(PROBE, (window, 0, 30.0)))
                )
            from repro.punctuation import Punctuation
            probe_rows.append((
                arrival + 0.5,
                Punctuation(
                    Pattern.from_mapping(PROBE, {"window": window})
                ),
            ))
        sensor_rows = [
            (float(w) + 0.6, StreamTuple(SENSOR, (w, 0, 1.0)))
            for w in range(10)
        ]
        plan = QueryPlan("thrifty-test")
        probes = ListSource("probes", PROBE, probe_rows)
        sensors = ListSource("sensors", SENSOR, sensor_rows)
        join = join_cls(
            "join", PROBE, SENSOR,
            on=[("window", "window"), ("loc", "loc")],
        )
        sink = CollectSink("sink", join.output_schema)
        for op in (probes, sensors, join, sink):
            plan.add(op)
        plan.connect(probes, join, port=0, page_size=1)
        plan.connect(sensors, join, port=1, page_size=1)
        plan.connect(join, sink, page_size=1)
        return plan, join, sink

    def test_thrifty_feedback_suppresses_useless_sensor_tuples(self):
        plan_ref, _, sink_ref = self.build(SymmetricHashJoin)
        Simulator(plan_ref).run()
        plan, join, sink = self.build(ThriftyJoin)
        Simulator(plan).run()
        # Results identical to the plain join (inner-join correctness).
        assert sorted(t.values for t in sink.results) == sorted(
            t.values for t in sink_ref.results
        )
        # But the sensor source was told about empty windows...
        assert join.empty_windows_detected > 0
        sensors = plan.operator("sensors")
        dropped_at_source = sensors.metrics.output_guard_drops
        dropped_at_join = join.metrics.input_guard_drops
        assert dropped_at_source + dropped_at_join > 0

    def test_feedback_reaches_sensor_source(self):
        plan, join, _ = self.build(ThriftyJoin)
        result = Simulator(plan).run()
        sensors = plan.operator("sensors")
        assert sensors.metrics.feedback_received > 0
        produced = [
            e for e in result.feedback_log
            if e.operator == "join" and e.note == "produced"
        ]
        assert produced
