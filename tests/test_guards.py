"""Unit tests for guard machinery and punctuation-driven expiration."""

import pytest

from repro.core import FeedbackPunctuation, GuardSet
from repro.punctuation import AtMost, Pattern, Punctuation
from repro.stream import Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema.of("ts", "seg")


def tup(schema, ts, seg=0):
    return StreamTuple(schema, (ts, seg))


class TestGuardSet:
    def test_blocks_matching_tuple(self, schema):
        guards = GuardSet("input")
        guards.install(Pattern.from_mapping(schema, {"seg": 3}))
        assert guards.blocks(tup(schema, 1.0, 3))
        assert not guards.blocks(tup(schema, 1.0, 4))

    def test_drop_counters(self, schema):
        guards = GuardSet()
        guard = guards.install(Pattern.from_mapping(schema, {"seg": 3}))
        guards.blocks(tup(schema, 1.0, 3))
        guards.blocks(tup(schema, 2.0, 3))
        guards.blocks(tup(schema, 2.0, 4))
        assert guard.drops == 2
        assert guards.total_drops == 2

    def test_would_block_does_not_count(self, schema):
        guards = GuardSet()
        guard = guards.install(Pattern.from_mapping(schema, {"seg": 3}))
        assert guards.would_block(tup(schema, 1.0, 3))
        assert guard.drops == 0

    def test_redundant_guard_not_installed(self, schema):
        guards = GuardSet()
        guards.install(Pattern.from_mapping(schema, {"ts": AtMost(10)}))
        dup = guards.install(Pattern.from_mapping(schema, {"ts": AtMost(5)}))
        assert dup is None
        assert guards.active == 1

    def test_wider_guard_retires_narrower(self, schema):
        guards = GuardSet()
        guards.install(Pattern.from_mapping(schema, {"ts": AtMost(5)}))
        guards.install(Pattern.from_mapping(schema, {"ts": AtMost(10)}))
        assert guards.active == 1
        assert guards.blocks(tup(schema, 8.0))

    def test_origin_recorded(self, schema):
        guards = GuardSet()
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(schema, {"seg": 1})
        )
        guard = guards.install(fb.pattern, origin=fb, at=4.2)
        assert guard.origin is fb
        assert guard.enacted_at == 4.2


class TestExpiration:
    def test_punctuation_releases_covered_guard(self, schema):
        guards = GuardSet()
        guards.install(Pattern.from_mapping(schema, {"ts": AtMost(10)}))
        punct = Punctuation.up_to(schema, "ts", 10.0)
        released = guards.expire_with(punct)
        assert len(released) == 1
        assert guards.active == 0
        assert guards.guards_expired == 1

    def test_partial_progress_keeps_guard(self, schema):
        guards = GuardSet()
        guards.install(Pattern.from_mapping(schema, {"ts": AtMost(10)}))
        punct = Punctuation.up_to(schema, "ts", 5.0)
        assert guards.expire_with(punct) == []
        assert guards.active == 1

    def test_unrelated_attribute_keeps_guard(self, schema):
        guards = GuardSet()
        guards.install(Pattern.from_mapping(schema, {"seg": 3}))
        punct = Punctuation.up_to(schema, "ts", 1e9)
        assert guards.expire_with(punct) == []
        assert guards.active == 1

    def test_released_guard_stops_blocking(self, schema):
        guards = GuardSet()
        guard = guards.install(Pattern.from_mapping(schema, {"ts": AtMost(10)}))
        guards.expire_with(Punctuation.up_to(schema, "ts", 10.0))
        assert not guard.blocks(tup(schema, 5.0))

    def test_clear(self, schema):
        guards = GuardSet()
        guards.install(Pattern.from_mapping(schema, {"seg": 1}))
        guards.clear()
        assert guards.active == 0
