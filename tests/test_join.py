"""Unit tests for the symmetric hash join: data, punctuation, feedback."""

import pytest

from repro.core import ExploitAction, FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.errors import PlanError
from repro.operators import SymmetricHashJoin
from repro.punctuation import Pattern, Punctuation
from repro.stream import Schema, StreamTuple

LEFT = Schema.of("a", "t", "id")     # paper section 4.2
RIGHT = Schema.of("t", "id", "b")


def l(a, t, id_):
    return StreamTuple(LEFT, (a, t, id_))


def r(t, id_, b):
    return StreamTuple(RIGHT, (t, id_, b))


def make_join(**kwargs):
    return SymmetricHashJoin(
        "join", LEFT, RIGHT, on=[("t", "t"), ("id", "id")], **kwargs
    )


class TestInnerJoin:
    def test_matching_tuples_join(self):
        harness = OperatorHarness(make_join())
        harness.push(l(1, 10, 100), port=0)
        harness.push(r(10, 100, 2), port=1)
        out = harness.emitted_tuples()
        assert len(out) == 1
        assert out[0].values == (1, 10, 100, 2)

    def test_output_layout_is_l_j_r(self):
        join = make_join()
        assert join.output_schema.names == ("a", "t", "id", "b")

    def test_no_match_no_output(self):
        harness = OperatorHarness(make_join())
        harness.push(l(1, 10, 100), port=0)
        harness.push(r(11, 100, 2), port=1)
        assert harness.emitted_tuples() == []

    def test_multiple_matches(self):
        harness = OperatorHarness(make_join())
        harness.push(l(1, 10, 100), port=0)
        harness.push(l(2, 10, 100), port=0)
        harness.push(r(10, 100, 3), port=1)
        assert len(harness.emitted_tuples()) == 2

    def test_residual_condition(self):
        join = make_join(condition=lambda left, right: left["a"] > 5)
        harness = OperatorHarness(join)
        harness.push(l(1, 10, 100), port=0)
        harness.push(l(6, 10, 100), port=0)
        harness.push(r(10, 100, 3), port=1)
        out = harness.emitted_tuples()
        assert [o["a"] for o in out] == [6]

    def test_bad_parameters(self):
        with pytest.raises(PlanError):
            SymmetricHashJoin("j", LEFT, RIGHT, on=[])
        with pytest.raises(PlanError):
            SymmetricHashJoin("j", LEFT, RIGHT, on=[("t", "t")], how="full")


class TestJoinPunctuation:
    def test_punctuation_purges_opposite_table(self):
        join = make_join()
        harness = OperatorHarness(join)
        harness.push(r(10, 100, 1), port=1)   # parked right tuple
        assert join.metrics.state_size == 1
        # Left declares key (10, 100) complete: the right entry is dead.
        harness.push_punctuation(
            Punctuation(Pattern.from_mapping(LEFT, {"t": 10, "id": 100})),
            port=0,
        )
        assert join.metrics.state_size == 0

    def test_output_punctuation_needs_both_inputs(self):
        harness = OperatorHarness(make_join())
        punct_l = Punctuation(Pattern.from_mapping(LEFT, {"t": 10, "id": 100}))
        punct_r = Punctuation(Pattern.from_mapping(RIGHT, {"t": 10, "id": 100}))
        harness.push_punctuation(punct_l, port=0)
        assert harness.emitted_punctuation() == []
        harness.push_punctuation(punct_r, port=1)
        out = harness.emitted_punctuation()
        assert len(out) == 1
        # The emitted punctuation covers the joined key region.
        assert out[0].pattern.matches((99, 10, 100, 99))
        assert not out[0].pattern.matches((99, 11, 100, 99))

    def test_non_key_punctuation_absorbed(self):
        harness = OperatorHarness(make_join())
        harness.push_punctuation(
            Punctuation(Pattern.from_mapping(LEFT, {"a": 5})), port=0
        )
        assert harness.emitted_punctuation() == []

    def test_input_done_purges_other_side(self):
        join = make_join()
        harness = OperatorHarness(join)
        harness.push(r(10, 100, 1), port=1)
        join.input_port(0).done = True
        join.on_input_done(0)  # no more left arrivals: right table useless
        assert join.metrics.state_size == 0


class TestLeftOuterJoin:
    def test_padding_on_right_punctuation(self):
        join = make_join(how="left_outer")
        harness = OperatorHarness(join)
        harness.push(l(1, 10, 100), port=0)
        harness.push_punctuation(
            Punctuation(Pattern.from_mapping(RIGHT, {"t": 10, "id": 100})),
            port=1,
        )
        out = harness.emitted_tuples()
        assert len(out) == 1
        assert out[0].values == (1, 10, 100, None)

    def test_matched_left_not_padded(self):
        join = make_join(how="left_outer")
        harness = OperatorHarness(join)
        harness.push(l(1, 10, 100), port=0)
        harness.push(r(10, 100, 2), port=1)
        harness.push_punctuation(
            Punctuation(Pattern.from_mapping(RIGHT, {"t": 10, "id": 100})),
            port=1,
        )
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["b"] == 2

    def test_condition_failure_still_pads(self):
        join = make_join(how="left_outer",
                         condition=lambda left, right: False)
        harness = OperatorHarness(join)
        harness.push(l(1, 10, 100), port=0)
        harness.push(r(10, 100, 2), port=1)
        harness.finish()
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["b"] is None

    def test_finish_pads_all_unmatched(self):
        join = make_join(how="left_outer")
        harness = OperatorHarness(join)
        harness.push(l(1, 10, 100), port=0)
        harness.push(l(2, 11, 100), port=0)
        harness.finish()
        assert len(harness.emitted_tuples()) == 2


class TestJoinFeedback:
    def test_join_key_feedback_purges_and_guards(self):
        join = make_join()
        harness = OperatorHarness(join)
        harness.push(l(1, 10, 100), port=0)
        harness.push(r(11, 100, 2), port=1)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(join.output_schema, {"t": 10, "id": 100})
            )
        )
        assert ExploitAction.PURGE_STATE in actions
        assert ExploitAction.GUARD_INPUT in actions
        # Left table entry (t=10) purged; right (t=11) untouched.
        assert join.metrics.state_size == 1
        # New arrivals for the dead key are dropped at both guards.
        harness.push(l(9, 10, 100), port=0)
        harness.push(r(10, 100, 9), port=1)
        assert join.metrics.input_guard_drops == 2

    def test_outer_join_restricts_right_side_feedback(self):
        """Right-exclusive feedback on an outer join: output guard only."""
        join = make_join(how="left_outer")
        harness = OperatorHarness(join)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(join.output_schema, {"b": 50})
            )
        )
        assert actions[0] is ExploitAction.GUARD_OUTPUT
        assert harness.upstream_feedback(1) == []
        # A left tuple with no partner must still be padded: (l, None) is
        # in SR and not covered by ¬[*,*,*,50].
        harness.push(l(1, 10, 100), port=0)
        harness.finish()
        out = harness.emitted_tuples()
        assert len(out) == 1 and out[0]["b"] is None

    def test_outer_join_key_feedback_suppresses_padding(self):
        """Join-key feedback on an outer join may purge and skip padding."""
        join = make_join(how="left_outer")
        harness = OperatorHarness(join)
        harness.push(l(1, 10, 100), port=0)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(join.output_schema, {"t": 10, "id": 100})
            )
        )
        harness.finish()
        # The padded row (1, 10, 100, None) matches the feedback's key
        # atoms, so suppressing it is correct exploitation.
        assert harness.emitted_tuples() == []

    def test_left_feedback_on_outer_join_allowed(self):
        join = make_join(how="left_outer")
        harness = OperatorHarness(join)
        actions = harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(join.output_schema, {"a": 1})
            )
        )
        assert ExploitAction.GUARD_INPUT in actions
        assert len(harness.upstream_feedback(0)) == 1
        assert harness.upstream_feedback(1) == []

    def test_inner_join_relays_right_exclusive(self):
        join = make_join()
        harness = OperatorHarness(join)
        harness.feedback(
            FeedbackPunctuation.assumed(
                Pattern.from_mapping(join.output_schema, {"b": 50})
            )
        )
        assert len(harness.upstream_feedback(1)) == 1
        assert harness.upstream_feedback(0) == []
