"""Tests for workload generators: determinism, shapes, parameters."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    FinanceWorkload,
    ImputationWorkload,
    TrafficModel,
    TrafficWorkload,
    inject_bursts,
    inject_disorder,
    merge_timelines,
)


class TestTrafficModel:
    def test_uncongested_segment_stays_free_flow(self):
        model = TrafficModel(congested_segments=(0,))
        assert model.mean_speed(1, 0.5) == model.free_flow_speed

    def test_congested_segment_dips_during_rush(self):
        model = TrafficModel(congested_segments=(0,))
        mid_rush = (model.rush_start + model.rush_end) / 2
        assert model.mean_speed(0, mid_rush) < model.congestion_threshold

    def test_congested_segment_free_outside_rush(self):
        model = TrafficModel(congested_segments=(0,))
        assert model.mean_speed(0, 0.0) == model.free_flow_speed


class TestTrafficWorkload:
    def make(self, **kwargs):
        defaults = dict(
            segments=3, detectors_per_segment=4,
            report_interval=20.0, horizon=200.0, seed=1,
        )
        defaults.update(kwargs)
        return TrafficWorkload(**defaults)

    def test_tuple_count(self):
        workload = self.make()
        timeline = workload.detector_timeline()
        assert len(timeline) == workload.detector_tuple_count
        assert workload.detector_tuple_count == 3 * 4 * 10

    def test_deterministic(self):
        a = self.make().detector_timeline()
        b = self.make().detector_timeline()
        assert [t.values for _, t in a] == [t.values for _, t in b]

    def test_arrival_times_match_timestamps(self):
        for arrival, tup in self.make().detector_timeline():
            assert arrival == tup["timestamp"]

    def test_dropout_produces_nones(self):
        workload = self.make(dropout_rate=0.5)
        speeds = [t["speed"] for _, t in workload.detector_timeline()]
        assert any(s is None for s in speeds)
        assert any(s is not None for s in speeds)

    def test_probe_stream_present_when_enabled(self):
        workload = self.make(probes_per_segment=2.0)
        probes = workload.probe_timeline()
        assert probes
        times = [arrival for arrival, _ in probes]
        assert times == sorted(times)

    def test_probe_stream_empty_by_default(self):
        assert self.make().probe_timeline() == []

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            self.make(segments=0)
        with pytest.raises(WorkloadError):
            self.make(report_interval=0)
        with pytest.raises(WorkloadError):
            self.make(dropout_rate=1.5)


class TestImputationWorkload:
    def test_alternating_clean_dirty(self):
        workload = ImputationWorkload(tuples=10)
        speeds = [t["speed"] for _, t in workload.events()]
        assert [s is None for s in speeds] == [bool(i % 2) for i in range(10)]

    def test_counts(self):
        workload = ImputationWorkload(tuples=11)
        assert workload.dirty_count == 5
        assert workload.clean_count == 6

    def test_archive_covers_all_sensors(self):
        workload = ImputationWorkload(tuples=100, sensors=10)
        archive = workload.build_archive()
        assert len(archive) == 10

    def test_horizon(self):
        workload = ImputationWorkload(tuples=100, arrival_interval=0.5)
        assert workload.horizon == 50.0

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            ImputationWorkload(tuples=1)
        with pytest.raises(WorkloadError):
            ImputationWorkload(arrival_interval=0)


class TestFinanceWorkload:
    def test_tick_count_and_rates_positive(self):
        workload = FinanceWorkload(pairs=2, ticks_per_second=10, horizon=5.0)
        ticks = workload.timeline()
        assert len(ticks) == 50
        assert all(t["rate"] > 0 for _, t in ticks)

    def test_round_robin_pairs(self):
        workload = FinanceWorkload(pairs=3, ticks_per_second=3, horizon=2.0)
        pairs = [t["pair_id"] for _, t in workload.timeline()]
        assert pairs[:6] == [0, 1, 2, 0, 1, 2]

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            FinanceWorkload(pairs=0)


class TestDisorderInjection:
    def timeline(self, n=50):
        from repro.stream import Schema, StreamTuple
        schema = Schema.of("ts")
        return [(float(i), StreamTuple(schema, (float(i),))) for i in range(n)]

    def test_disorder_keeps_sorted_arrivals(self):
        perturbed = inject_disorder(
            self.timeline(), fraction=0.5, max_delay=10.0, seed=3
        )
        arrivals = [a for a, _ in perturbed]
        assert arrivals == sorted(arrivals)

    def test_disorder_actually_reorders_timestamps(self):
        perturbed = inject_disorder(
            self.timeline(), fraction=0.5, max_delay=10.0, seed=3
        )
        timestamps = [t["ts"] for _, t in perturbed]
        assert timestamps != sorted(timestamps)

    def test_zero_fraction_is_identity(self):
        timeline = self.timeline()
        assert inject_disorder(timeline, fraction=0.0, max_delay=5.0) == timeline

    def test_bursts_compress_into_period_start(self):
        bursty = inject_bursts(
            self.timeline(), period=10.0, burst_fraction=0.1
        )
        for arrival, tup in bursty:
            offset = arrival % 10.0
            assert offset <= 1.0 + 1e-9

    def test_merge_timelines(self):
        a = self.timeline(5)
        b = [(x + 0.5, t) for x, t in self.timeline(5)]
        merged = merge_timelines(a, b)
        arrivals = [x for x, _ in merged]
        assert arrivals == sorted(arrivals)
        assert len(merged) == 10

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            inject_disorder(self.timeline(), fraction=2.0, max_delay=1.0)
        with pytest.raises(WorkloadError):
            inject_disorder(self.timeline(), fraction=0.5, max_delay=-1.0)
        with pytest.raises(WorkloadError):
            inject_bursts(self.timeline(), period=0.0)
        with pytest.raises(WorkloadError):
            inject_bursts(self.timeline(), period=1.0, burst_fraction=0.0)
