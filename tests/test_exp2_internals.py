"""Unit tests for Experiment 2's building blocks (viewer, plan, costs)."""

import pytest

from repro.experiments.exp2 import (
    Exp2Config,
    _build_plan,
    _viewer_schedule,
)
from repro.punctuation import InSet


@pytest.fixture
def config():
    return Exp2Config(horizon_hours=0.2)  # 720 s


class TestViewerSchedule:
    def test_one_injection_per_switch(self, config):
        plan, ops = _build_plan(config, "F3")
        schedule = _viewer_schedule(config, 2.0, ops["average"], ops["sink"])
        assert len(schedule) == int(720 // 120)

    def test_feedback_covers_invisible_segments_only(self, config):
        plan, ops = _build_plan(config, "F3")
        schedule = _viewer_schedule(config, 2.0, ops["average"], ops["sink"])
        _, first = schedule[0]
        seg_atom = first.pattern.atom_at("segment")
        assert isinstance(seg_atom, InSet)
        assert len(seg_atom.values) == config.segments - 1
        assert 0 not in seg_atom.values  # switch 0 watches segment 0

    def test_window_range_matches_switch_interval(self, config):
        plan, ops = _build_plan(config, "F3")
        schedule = _viewer_schedule(config, 2.0, ops["average"], ops["sink"])
        when, first = schedule[0]
        assert when == 0.0
        window_atom = first.pattern.atom_at("window")
        # Switch 0 covers [0, 120) = windows 0..5 with 20 s windows.
        assert window_atom.matches(0) and window_atom.matches(5)
        assert not window_atom.matches(6)

    def test_visible_segment_rotates(self, config):
        plan, ops = _build_plan(config, "F3")
        schedule = _viewer_schedule(config, 2.0, ops["average"], ops["sink"])
        first_invisible = schedule[0][1].pattern.atom_at("segment").values
        second_invisible = schedule[1][1].pattern.atom_at("segment").values
        assert first_invisible != second_invisible

    def test_feedback_is_supportable(self, config):
        """Viewer feedback constrains only delimited attributes."""
        from repro.punctuation import PunctuationScheme
        plan, ops = _build_plan(config, "F3")
        schedule = _viewer_schedule(config, 2.0, ops["average"], ops["sink"])
        scheme = PunctuationScheme(
            ops["average"].output_schema, delimited=["window"]
        )
        for _, feedback in schedule:
            assert scheme.supports(feedback.pattern)


class TestPlanConstruction:
    def test_scheme_knobs(self, config):
        _, f1 = _build_plan(config, "F1")
        assert f1["average"].exploit_level == 1
        assert f1["average"].relay_enabled is False
        _, f2 = _build_plan(config, "F2")
        assert f2["average"].exploit_level == 2
        assert f2["average"].relay_enabled is False
        _, f3 = _build_plan(config, "F3")
        assert f3["average"].relay_enabled is True

    def test_parse_stage_is_feedback_unaware(self, config):
        _, ops = _build_plan(config, "F3")
        assert ops["parse"].feedback_aware is False

    def test_cost_configuration_applied(self, config):
        _, ops = _build_plan(config, "F0")
        assert ops["parse"].tuple_cost == config.parse_cost
        assert ops["quality"].tuple_cost == config.quality_cost
        assert ops["average"].tuple_cost == config.aggregate_cost
        assert ops["sink"].tuple_cost == config.render_cost

    def test_from_env_scaling(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXP2_HOURS", "0.5")
        config = Exp2Config.from_env()
        assert config.horizon == pytest.approx(1800.0)


class TestEngineGuard:
    def test_feedback_schemes_require_the_virtual_clock(self, config):
        from repro.experiments.exp2 import run_cell
        with pytest.raises(ValueError, match="simulated"):
            run_cell(config, "F3", 2.0, engine="threaded")
