"""Native ``on_page`` batch paths: join family and window aggregates.

The page-batched operator path (DESIGN.md section 4) requires every
native ``on_page`` override to be *element-wise equivalent* to
``on_tuple`` -- the page boundary carries no semantics.  These tests pin
that contract for the operators that gained native batch hooks in the
sharding PR: :class:`SymmetricHashJoin` (build/probe in bulk, outer
padding in arrival order), :class:`ThriftyJoin` / :class:`ImpatientJoin`
(feedback production preserved), and :class:`WindowAggregate` (hoisted
accumulation), plus engine-level parity: the same flow run costed
(per-element metered path), uncosted (batch path) and threaded must
produce identical result multisets.
"""

from __future__ import annotations

import pytest

from repro.api import Flow, avg, count
from repro.core import FeedbackPunctuation
from repro.engine.harness import OperatorHarness
from repro.operators import (
    ImpatientJoin,
    SymmetricHashJoin,
    ThriftyJoin,
    WindowAggregate,
)
from repro.punctuation import Pattern, Punctuation
from repro.stream import Schema, StreamTuple

LEFT = Schema.of("a", "t", "id")
RIGHT = Schema.of("t", "id", "b")
#: Right schema overlapping LEFT only on the key ``t`` (single-key joins).
RIGHT_T = Schema.of("t", "b", "c")
TS_SCHEMA = Schema([("ts", "timestamp", True), ("g", "int"), ("v", "float")])


def l(a, t, id_):
    return StreamTuple(LEFT, (a, t, id_))


def r(t, id_, b):
    return StreamTuple(RIGHT, (t, id_, b))


def rt(t, b, c):
    return StreamTuple(RIGHT_T, (t, b, c))


def tvals(harness):
    return [tuple(t.values) for t in harness.emitted_tuples()]


def paired_harnesses(make):
    """Two identical operators: one driven per element, one per page."""
    return OperatorHarness(make()), OperatorHarness(make())


class TestJoinBatchEquivalence:
    def interleaved(self):
        left = [l(i, i % 4, 100 + i % 3) for i in range(40)]
        right = [r(i % 4, 100 + i % 3, i) for i in range(40)]
        return left, right

    def test_inner_join_batch_matches_elementwise(self):
        left, right = self.interleaved()

        def make():
            return SymmetricHashJoin(
                "join", LEFT, RIGHT, on=[("t", "t"), ("id", "id")]
            )

        by_element, by_page = paired_harnesses(make)
        for chunk in (left[:25], left[25:]):
            for tup in chunk:
                by_element.push(tup, port=0)
            by_page.push_page(chunk, port=0)
        for chunk in (right[:10], right[10:]):
            for tup in chunk:
                by_element.push(tup, port=1)
            by_page.push_page(chunk, port=1)
        assert tvals(by_element) == tvals(by_page)
        assert (
            by_element.operator.metrics.tuples_out
            == by_page.operator.metrics.tuples_out
        )
        assert (
            by_element.operator.metrics.state_size
            == by_page.operator.metrics.state_size
        )

    def test_residual_condition_batch(self):
        def make():
            return SymmetricHashJoin(
                "join", LEFT, RIGHT_T, on=[("t", "t")],
                condition=lambda lt, rtup: lt["a"] % 2 == 0,
            )

        left = [l(i, i % 3, i) for i in range(20)]
        right = [rt(i % 3, i, i * 10) for i in range(20)]
        by_element, by_page = paired_harnesses(make)
        for tup in left:
            by_element.push(tup, port=0)
        by_page.push_page(left, port=0)
        for tup in right:
            by_element.push(tup, port=1)
        by_page.push_page(right, port=1)
        assert tvals(by_element) == tvals(by_page)

    def test_left_outer_padding_order_preserved(self):
        """Padding due after the right side closed interleaves in arrival
        order with join results, exactly as the per-element path."""
        def make():
            return SymmetricHashJoin(
                "join", LEFT, RIGHT_T, on=[("t", "t")], how="left_outer"
            )

        by_element, by_page = paired_harnesses(make)
        for h in (by_element, by_page):
            h.push(rt(0, 100, 7), port=1)
            # Close the right input: later unmatched lefts pad eagerly.
            port = h.operator.inputs[1]
            port.done = True
            h.operator.on_input_done(1)
        batch = [l(i, i % 2, i) for i in range(12)]  # t=1 tuples pad
        for tup in batch:
            by_element.push(tup, port=0)
        by_page.push_page(batch, port=0)
        out_e, out_p = tvals(by_element), tvals(by_page)
        assert out_e == out_p
        assert any(values[-1] is None for values in out_p)  # padded rows

    def test_punctuation_mid_page_purges_identically(self):
        def make():
            return SymmetricHashJoin("join", LEFT, RIGHT_T, on=[("t", "t")])

        punct = Punctuation(Pattern.from_mapping(LEFT, {"t": 0}))
        page = [l(1, 0, 1), l(2, 1, 2), punct, l(3, 1, 3)]
        by_element, by_page = paired_harnesses(make)
        for h in (by_element, by_page):
            h.push(rt(0, 9, 9), port=1)
            h.push(rt(1, 8, 8), port=1)
        for element in page:
            by_element.push(element, port=0)
        by_page.push_page(page, port=0)
        assert tvals(by_element) == tvals(by_page)
        assert (
            by_element.operator.metrics.state_purged
            == by_page.operator.metrics.state_purged
        )


class TestFeedbackProducingJoinsBatch:
    def test_thrifty_empty_window_feedback_on_batch_path(self):
        def make():
            return ThriftyJoin(
                "tj", LEFT, RIGHT_T, on=[("t", "t")], probe_inputs=(0,)
            )

        by_element, by_page = paired_harnesses(make)
        batch = [l(1, 5, 1)]
        for tup in batch:
            by_element.push(tup, port=0)
        by_page.push_page(batch, port=0)
        # Probe side declares t=7 complete while holding nothing there.
        punct = Punctuation(Pattern.from_mapping(LEFT, {"t": 7}))
        for h in (by_element, by_page):
            h.push_punctuation(punct, port=0)
        assert (
            by_element.operator.empty_windows_detected
            == by_page.operator.empty_windows_detected
            > 0
        )
        assert len(by_element.upstream_feedback(1)) == len(
            by_page.upstream_feedback(1)
        )

    def test_impatient_desired_feedback_count_parity(self):
        def make():
            return ImpatientJoin("ij", LEFT, RIGHT_T, on=[("t", "t")])

        by_element, by_page = paired_harnesses(make)
        batch = [l(i, i % 3, i) for i in range(9)]
        for tup in batch:
            by_element.push(tup, port=0)
        by_page.push_page(batch, port=0)
        assert (
            by_element.operator.desired_sent
            == by_page.operator.desired_sent
            == 3
        )
        assert tvals(by_element) == tvals(by_page)


class TestWindowAggregateBatch:
    def drive(self, make, elements):
        by_element, by_page = paired_harnesses(make)
        for element in elements:
            by_element.push(element, port=0)
        by_page.push_page(elements, port=0)
        for h in (by_element, by_page):
            h.finish()
        return by_element, by_page

    def stream(self, n=60):
        return [
            StreamTuple(TS_SCHEMA, (float(i) / 2, i % 3, float(i)))
            for i in range(n)
        ]

    def test_tumbling_group_parity(self):
        def make():
            return WindowAggregate(
                "agg", TS_SCHEMA, kind="avg", window_attribute="ts",
                width=5.0, value_attribute="v", group_by=("g",),
            )

        by_element, by_page = self.drive(make, self.stream())
        assert tvals(by_element) == tvals(by_page)

    def test_sliding_window_parity(self):
        def make():
            return WindowAggregate(
                "agg", TS_SCHEMA, kind="count", window_attribute="ts",
                width=6.0, slide=2.0, group_by=("g",),
            )

        by_element, by_page = self.drive(make, self.stream())
        assert tvals(by_element) == tvals(by_page)
        assert (
            by_element.operator.metrics.peak_state_size
            == by_page.operator.metrics.peak_state_size
        )

    def test_window_guards_respected_on_batch_path(self):
        """Assumed feedback's window guards suppress accumulation in the
        hoisted batch loop exactly as per element.

        Sliding windows, deliberately: tumbling windows exploit
        group-constrained feedback via *input* guards (dropped before any
        batch hook runs), while sliding windows must keep the guard check
        inside accumulation (Example 2) -- the exact check the batch loop
        hoists.
        """
        def make():
            return WindowAggregate(
                "agg", TS_SCHEMA, kind="avg", window_attribute="ts",
                width=6.0, slide=2.0, value_attribute="v", group_by=("g",),
            )

        feedback = FeedbackPunctuation.assumed(
            Pattern.from_mapping(
                Schema.of("window", "g", "avg_v"), {"g": 1}
            )
        )
        by_element, by_page = paired_harnesses(make)
        for h in (by_element, by_page):
            h.feedback(feedback)
        elements = self.stream()
        for element in elements:
            by_element.push(element, port=0)
        by_page.push_page(elements, port=0)
        for h in (by_element, by_page):
            h.finish()
        assert tvals(by_element) == tvals(by_page)
        assert (
            by_element.operator.windows_skipped
            == by_page.operator.windows_skipped
            > 0
        )


class TestEngineLevelBatchParity:
    """Costed (metered, per element) vs uncosted (batch) vs threaded."""

    def join_flow(self, join_cost=0.0):
        flow = Flow("join-parity", page_size=16)
        left = flow.source(
            LEFT,
            [(i * 0.01, l(i, i % 5, i % 7)) for i in range(120)],
            name="left",
        )
        right = flow.source(
            RIGHT,
            [(i * 0.01, r(i % 5, i % 7, i)) for i in range(120)],
            name="right",
        )
        left.join(
            right, on=[("t", "t"), ("id", "id")], name="join",
            tuple_cost=join_cost,
        ).collect("sink")
        return flow

    def window_flow(self, cost=0.0):
        flow = Flow("window-parity", page_size=16)
        (flow.source(
            TS_SCHEMA,
            [(i * 0.01, StreamTuple(TS_SCHEMA, (float(i), i % 4, float(i))))
             for i in range(200)],
            name="src",
        )
         .punctuate(on="ts", every=20.0)
         .window(avg("v"), by="g", on="ts", width=20.0, name="win",
                 tuple_cost=cost)
         .collect("sink"))
        return flow

    @staticmethod
    def sink_multiset(result):
        return sorted(tuple(t.values) for t in result.sink("sink").results)

    @pytest.mark.parametrize("builder", ["join_flow", "window_flow"])
    def test_costed_uncosted_and_threaded_agree(self, builder):
        make = getattr(self, builder)
        batch = make(0.0).run("simulated")
        metered = make(0.0005).run("simulated")
        threaded = make(0.0).run("threaded")
        assert (
            self.sink_multiset(batch)
            == self.sink_multiset(metered)
            == self.sink_multiset(threaded)
        )
        name = "join" if builder == "join_flow" else "win"
        assert batch.metrics.operator_metrics[name].pages_batched > 0
        assert metered.metrics.operator_metrics[name].pages_batched == 0

    def test_count_aggregate_batch_engine_parity(self):
        flow = Flow("count-parity", page_size=8)
        (flow.source(
            TS_SCHEMA,
            [(0.0, StreamTuple(TS_SCHEMA, (float(i) / 4, i % 2, 1.0)))
             for i in range(100)],
            name="src",
        )
         .punctuate(on="ts", every=5.0)
         .window(count(), by="g", on="ts", width=5.0, name="win")
         .collect("sink"))
        sim = flow.run("simulated")
        thr = flow.run("threaded")
        assert self.sink_multiset(sim) == self.sink_multiset(thr)
