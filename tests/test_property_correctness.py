"""Property-based Definition 1 tests on live operators (hypothesis).

For randomly generated streams and randomly generated assumed feedback,
every feedback-aware operator must satisfy Definition 1:

    SR - subset(SR, f)  ⊆  S  ⊆  SR

where SR is the output of a reference run (no feedback) and S the output
of a run that received the feedback before any data.  The checks use
multiset containment via :func:`check_correct_exploitation`.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import FeedbackPunctuation, check_correct_exploitation
from repro.engine.harness import OperatorHarness
from repro.operators import (
    AggregateKind,
    Select,
    SymmetricHashJoin,
    WindowAggregate,
)
from repro.punctuation import (
    AtLeast,
    AtMost,
    Equals,
    InSet,
    Pattern,
)
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])

small_ints = st.integers(min_value=0, max_value=3)
speeds = st.integers(min_value=0, max_value=10)


@st.composite
def streams(draw):
    """A short in-order stream over SCHEMA."""
    n = draw(st.integers(min_value=0, max_value=24))
    rows = []
    ts = 0.0
    for _ in range(n):
        ts += draw(st.floats(min_value=0.1, max_value=3.0))
        rows.append(
            StreamTuple(SCHEMA, (ts, draw(small_ints), float(draw(speeds))))
        )
    return rows


@st.composite
def group_feedback_atoms(draw):
    """An atom over the seg attribute."""
    kind = draw(st.sampled_from(["eq", "in"]))
    if kind == "eq":
        return Equals(draw(small_ints))
    return InSet(draw(st.sets(small_ints, min_size=1, max_size=3)))


@st.composite
def value_feedback_atoms(draw):
    kind = draw(st.sampled_from(["ge", "le", "eq"]))
    bound = draw(st.integers(min_value=0, max_value=12))
    if kind == "ge":
        return AtLeast(bound)
    if kind == "le":
        return AtMost(bound)
    return Equals(bound)


def run_select(stream, feedback):
    select = Select("s", SCHEMA, lambda t: t["v"] >= 2)
    harness = OperatorHarness(select)
    if feedback is not None:
        harness.feedback(feedback)
    harness.push_all(stream)
    harness.finish()
    return harness.emitted_tuples()


class TestSelectDefinition1:
    @given(streams(), group_feedback_atoms())
    def test_select_group_feedback(self, stream, atom):
        pattern = Pattern.from_mapping(SCHEMA, {"seg": atom})
        reference = run_select(stream, None)
        exploited = run_select(stream, FeedbackPunctuation.assumed(pattern))
        report = check_correct_exploitation(reference, exploited, pattern)
        assert report.ok, report.summary()

    @given(streams(), value_feedback_atoms())
    def test_select_value_feedback(self, stream, atom):
        pattern = Pattern.from_mapping(SCHEMA, {"v": atom})
        reference = run_select(stream, None)
        exploited = run_select(stream, FeedbackPunctuation.assumed(pattern))
        report = check_correct_exploitation(reference, exploited, pattern)
        assert report.ok, report.summary()


def run_aggregate(kind, stream, feedback, *, slide=None):
    agg = WindowAggregate(
        "agg", SCHEMA, kind=kind,
        window_attribute="ts", width=5.0, slide=slide,
        value_attribute=None if kind == AggregateKind.COUNT else "v",
        group_by=("seg",),
    )
    harness = OperatorHarness(agg)
    if feedback is not None:
        harness.feedback(feedback)
    harness.push_all(stream)
    harness.finish()
    return agg, harness.emitted_tuples()


class TestAggregateDefinition1:
    @given(streams(), group_feedback_atoms(),
           st.sampled_from(AggregateKind.ALL))
    @settings(max_examples=60, deadline=None)
    def test_group_feedback_all_kinds(self, stream, atom, kind):
        agg, reference = run_aggregate(kind, stream, None)
        pattern = Pattern.from_mapping(agg.output_schema, {"seg": atom})
        _, exploited = run_aggregate(
            kind, stream, FeedbackPunctuation.assumed(pattern)
        )
        report = check_correct_exploitation(reference, exploited, pattern)
        assert report.ok, report.summary()

    @given(streams(), value_feedback_atoms(),
           st.sampled_from(AggregateKind.ALL))
    @settings(max_examples=60, deadline=None)
    def test_value_feedback_all_kinds(self, stream, atom, kind):
        agg, reference = run_aggregate(kind, stream, None)
        pattern = Pattern.from_mapping(
            agg.output_schema, {agg.value_name: atom}
        )
        _, exploited = run_aggregate(
            kind, stream, FeedbackPunctuation.assumed(pattern)
        )
        report = check_correct_exploitation(reference, exploited, pattern)
        assert report.ok, report.summary()

    @given(streams(), group_feedback_atoms())
    @settings(max_examples=40, deadline=None)
    def test_sliding_windows_group_feedback(self, stream, atom):
        """Example 2's hazard: sliding windows + group feedback."""
        agg, reference = run_aggregate(
            AggregateKind.COUNT, stream, None, slide=2.5
        )
        pattern = Pattern.from_mapping(agg.output_schema, {"seg": atom})
        _, exploited = run_aggregate(
            AggregateKind.COUNT, stream,
            FeedbackPunctuation.assumed(pattern), slide=2.5,
        )
        report = check_correct_exploitation(reference, exploited, pattern)
        assert report.ok, report.summary()


LEFT = Schema.of("a", "t", "id")
RIGHT = Schema.of("t", "id", "b")


@st.composite
def join_streams(draw):
    n = draw(st.integers(min_value=0, max_value=16))
    left, right = [], []
    for _ in range(n):
        left.append(StreamTuple(
            LEFT, (draw(small_ints), draw(small_ints), draw(small_ints))
        ))
        right.append(StreamTuple(
            RIGHT, (draw(small_ints), draw(small_ints), draw(small_ints))
        ))
    return left, right


@st.composite
def join_feedback(draw):
    """Random assumed feedback over the join output (a, t, id, b)."""
    constraints = {}
    for name in ("a", "t", "id", "b"):
        if draw(st.booleans()):
            constraints[name] = Equals(draw(small_ints))
    if not constraints:
        constraints["a"] = Equals(draw(small_ints))
    return constraints


def run_join(pair, feedback, how="inner"):
    left_rows, right_rows = pair
    join = SymmetricHashJoin(
        "j", LEFT, RIGHT, on=[("t", "t"), ("id", "id")], how=how
    )
    harness = OperatorHarness(join)
    if feedback is not None:
        harness.feedback(feedback)
    # Interleave without truncation (the sides may have unequal length,
    # e.g. after the propagation-property test filters one of them).
    for index in range(max(len(left_rows), len(right_rows))):
        if index < len(left_rows):
            harness.push(left_rows[index], port=0)
        if index < len(right_rows):
            harness.push(right_rows[index], port=1)
    harness.finish()
    return join, harness.emitted_tuples()


class TestJoinDefinition1:
    @given(join_streams(), join_feedback())
    @settings(max_examples=80, deadline=None)
    def test_inner_join_random_feedback(self, pair, constraints):
        join, reference = run_join(pair, None)
        pattern = Pattern.from_mapping(join.output_schema, constraints)
        _, exploited = run_join(
            pair, FeedbackPunctuation.assumed(pattern)
        )
        report = check_correct_exploitation(reference, exploited, pattern)
        assert report.ok, report.summary()

    @given(join_streams(), join_feedback())
    @settings(max_examples=80, deadline=None)
    def test_left_outer_join_random_feedback(self, pair, constraints):
        join, reference = run_join(pair, None, how="left_outer")
        pattern = Pattern.from_mapping(join.output_schema, constraints)
        _, exploited = run_join(
            pair, FeedbackPunctuation.assumed(pattern), how="left_outer"
        )
        report = check_correct_exploitation(reference, exploited, pattern)
        assert report.ok, report.summary()


class TestSafePropagationProperty:
    @given(join_streams(), join_feedback())
    @settings(max_examples=60, deadline=None)
    def test_propagated_feedback_suppresses_only_covered_outputs(
        self, pair, constraints
    ):
        """Definition 2, operationally: enacting the *relayed* patterns as
        upstream filters must still satisfy Definition 1 for the original
        feedback."""
        join, reference = run_join(pair, None)
        pattern = Pattern.from_mapping(join.output_schema, constraints)
        fb = FeedbackPunctuation.assumed(pattern)
        relay_probe = SymmetricHashJoin(
            "probe", LEFT, RIGHT, on=[("t", "t"), ("id", "id")]
        )
        relayed = relay_probe.relay_feedback(fb)
        left_rows, right_rows = pair
        if 0 in relayed:
            left_rows = [
                t for t in left_rows if not relayed[0].pattern.matches(t)
            ]
        if 1 in relayed:
            right_rows = [
                t for t in right_rows if not relayed[1].pattern.matches(t)
            ]
        _, filtered_output = run_join((left_rows, right_rows), None)
        report = check_correct_exploitation(
            reference, filtered_output, pattern
        )
        assert report.ok, report.summary()
