"""Tests for the quiescence audit and the reproduction report driver."""


from repro.engine import QueryPlan, Simulator
from repro.engine.audit import audit_quiescence
from repro.experiments import Exp1Config, Exp2Config
from repro.experiments.exp1 import build_plan as build_exp1
from repro.experiments.report import generate_report
from repro.operators import (
    AggregateKind,
    CollectSink,
    ListSource,
    WindowAggregate,
)
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("v", "float")])


def rows(n):
    return [(i * 0.1, StreamTuple(SCHEMA, (i * 0.1, float(i))))
            for i in range(n)]


class TestQuiescenceAudit:
    def test_clean_plan_is_quiescent(self):
        plan = QueryPlan("q")
        source = ListSource("src", SCHEMA, rows(50))
        agg = WindowAggregate(
            "sum", SCHEMA, kind=AggregateKind.SUM,
            window_attribute="ts", width=1.0, value_attribute="v",
        )
        sink = CollectSink("sink", agg.output_schema)
        plan.add(source)
        plan.chain(source, agg, sink)
        Simulator(plan).run()
        report = audit_quiescence(plan)
        assert report.ok, report.summary()
        assert "quiescent" in report.summary()

    def test_experiment_plans_are_quiescent(self):
        plan, _ = build_exp1(Exp1Config(tuples=600), feedback=True)
        Simulator(plan).run()
        report = audit_quiescence(plan)
        assert report.ok, report.summary()

    def test_lingering_state_detected(self):
        plan = QueryPlan("leak")
        source = ListSource("src", SCHEMA, rows(5))
        sink = CollectSink("sink", SCHEMA)
        plan.add(source)
        plan.chain(source, sink)
        Simulator(plan).run()
        sink.metrics.grow_state(3)  # simulate a leak
        report = audit_quiescence(plan)
        assert not report.ok
        assert report.lingering_state == {"sink": 3}
        assert "state leaks" in report.summary()

    def test_strict_guard_mode(self):
        from repro.core import FeedbackPunctuation
        from repro.punctuation import Pattern

        plan = QueryPlan("guards")
        source = ListSource("src", SCHEMA, rows(5))
        sink = CollectSink("sink", SCHEMA)
        plan.add(source)
        plan.chain(source, sink)
        simulator = Simulator(plan)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"v": 2.0})
        )
        simulator.at(0.0, lambda: sink.inject_feedback(fb))
        simulator.run()
        assert audit_quiescence(plan).ok                  # tolerated
        strict = audit_quiescence(plan, strict_guards=True)
        assert not strict.ok                              # flagged
        assert strict.lingering_guards


class TestReproductionReport:
    def test_generates_all_sections_at_tiny_scale(self):
        report = generate_report(
            exp1_config=Exp1Config(tuples=400),
            exp2_config=Exp2Config(horizon_hours=0.1),
            include_figures=False,
        )
        for marker in (
            "Experiment 1", "Experiment 2", "Table 1", "Table 2",
            "Ablations", "F3", "paper: 97% vs 29%",
        ):
            assert marker in report

    def test_figures_included_when_asked(self):
        report = generate_report(
            exp1_config=Exp1Config(tuples=400),
            exp2_config=Exp2Config(horizon_hours=0.1),
            include_figures=True,
        )
        assert "tuple id" in report  # the scatter's y-axis label
