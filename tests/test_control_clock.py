"""Unit tests for the control channel and the clocks."""

import pytest

from repro.errors import EngineError
from repro.stream import (
    ControlChannel,
    ControlMessage,
    ControlMessageKind,
    Direction,
    VirtualClock,
    WallClock,
)


def up(kind=ControlMessageKind.FEEDBACK, payload=None):
    return ControlMessage(kind, Direction.UPSTREAM, payload=payload, sender="op")


def down(kind=ControlMessageKind.END_OF_STREAM):
    return ControlMessage(kind, Direction.DOWNSTREAM, sender="op")


class TestControlChannel:
    def test_upstream_and_downstream_are_separate(self):
        ch = ControlChannel("edge")
        ch.send(up())
        ch.send(down())
        assert ch.pending_upstream == 1
        assert ch.pending_downstream == 1
        assert ch.receive_upstream().direction is Direction.UPSTREAM
        assert ch.receive_downstream().direction is Direction.DOWNSTREAM

    def test_fifo_order(self):
        ch = ControlChannel()
        first = up(payload="first")
        second = up(payload="second")
        ch.send(first)
        ch.send(second)
        assert ch.receive_upstream() is first
        assert ch.receive_upstream() is second

    def test_empty_receive_returns_none(self):
        ch = ControlChannel()
        assert ch.receive_upstream() is None
        assert ch.receive_downstream() is None

    def test_counters(self):
        ch = ControlChannel()
        ch.send(up())
        ch.send(up())
        ch.send(down())
        assert ch.upstream_sent == 2
        assert ch.downstream_sent == 1

    def test_messages_have_increasing_seq(self):
        a, b = up(), up()
        assert a.seq < b.seq


class TestVirtualClock:
    def test_starts_at_origin(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_advance_by(self):
        clock = VirtualClock(1.0)
        clock.advance_by(2.0)
        assert clock.now() == 3.0

    def test_backwards_rejected(self):
        clock = VirtualClock(10.0)
        with pytest.raises(EngineError):
            clock.advance_to(5.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(EngineError):
            VirtualClock().advance_by(-1.0)


class TestWallClock:
    def test_monotone_nonnegative(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert 0 <= a <= b
