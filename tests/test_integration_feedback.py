"""Integration tests: feedback flowing through whole plans.

These tests run complete query plans on the simulator and check
end-to-end properties: Definition 1 on the final output (run the same
plan with and without feedback and compare sinks), feedback propagation
chains across several operators, guard expiration driven by source
punctuation, and on-demand result production.
"""


from repro.core import (
    FeedbackPunctuation,
    check_correct_exploitation,
)
from repro.engine import QueryPlan, Simulator
from repro.operators import (
    AggregateKind,
    CollectSink,
    Duplicate,
    ListSource,
    PassThrough,
    PunctuatedSource,
    Select,
    SymmetricHashJoin,
    Union,
    WindowAggregate,
)
from repro.punctuation import AtMost, InSet, Pattern
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])


def timeline(n, *, spacing=0.5, segments=4):
    rows = []
    for i in range(n):
        ts = i * spacing
        rows.append((ts, StreamTuple(SCHEMA, (ts, i % segments, float(i)))))
    return rows


def build_linear_plan(feedback_pattern=None, inject_at=5.0):
    """source -> parse -> select -> sink, with optional injected feedback."""
    plan = QueryPlan("linear")
    source = PunctuatedSource(
        "source", SCHEMA, timeline(100),
        punctuate_on="ts", punctuation_interval=10.0,
    )
    parse = PassThrough("parse", SCHEMA)
    keep = Select("keep", SCHEMA, lambda t: t["v"] >= 0)
    sink = CollectSink("sink", SCHEMA)
    plan.add(source)
    plan.chain(source, parse, keep, sink, page_size=8)
    simulator = Simulator(plan)
    if feedback_pattern is not None:
        fb = FeedbackPunctuation.assumed(feedback_pattern)
        simulator.at(inject_at, lambda: sink.inject_feedback(fb))
    return simulator, plan, sink


class TestEndToEndDefinition1:
    def test_linear_plan_correct_exploitation(self):
        pattern = Pattern.from_mapping(SCHEMA, {"seg": 2})
        _, _, reference_sink = build_linear_plan(None)[1:3], None, None
        sim_ref, _, ref_sink = build_linear_plan(None)
        sim_ref.run()
        sim_fb, _, fb_sink = build_linear_plan(pattern, inject_at=0.0)
        sim_fb.run()
        report = check_correct_exploitation(
            ref_sink.results, fb_sink.results, pattern
        )
        assert report.ok, report.summary()
        assert report.exploitation == 1.0  # injected before any data

    def test_mid_stream_feedback_still_correct(self):
        """Feedback arriving mid-stream suppresses only covered tuples."""
        pattern = Pattern.from_mapping(SCHEMA, {"seg": 2})
        sim_ref, _, ref_sink = build_linear_plan(None)
        sim_ref.run()
        sim_fb, _, fb_sink = build_linear_plan(pattern, inject_at=20.0)
        sim_fb.run()
        report = check_correct_exploitation(
            ref_sink.results, fb_sink.results, pattern
        )
        assert report.ok, report.summary()
        # Partial exploitation: tuples before the injection went through.
        assert 0.0 < (report.exploitation or 0.0) < 1.0

    def test_aggregate_plan_correct_exploitation(self):
        def build(with_feedback):
            plan = QueryPlan("agg")
            source = PunctuatedSource(
                "source", SCHEMA, timeline(200),
                punctuate_on="ts", punctuation_interval=10.0,
            )
            avg = WindowAggregate(
                "avg", SCHEMA, kind=AggregateKind.AVG,
                window_attribute="ts", width=10.0,
                value_attribute="v", group_by=("seg",),
            )
            sink = CollectSink("sink", avg.output_schema)
            plan.add(source)
            plan.chain(source, avg, sink, page_size=8)
            simulator = Simulator(plan)
            pattern = Pattern.from_mapping(
                avg.output_schema, {"seg": InSet({1, 3})}
            )
            if with_feedback:
                fb = FeedbackPunctuation.assumed(pattern)
                simulator.at(0.0, lambda: sink.inject_feedback(fb))
            return simulator, sink, pattern

        sim_ref, ref_sink, pattern = build(False)
        sim_ref.run()
        sim_fb, fb_sink, _ = build(True)
        sim_fb.run()
        report = check_correct_exploitation(
            ref_sink.results, fb_sink.results, pattern
        )
        assert report.ok, report.summary()
        assert report.exploitation == 1.0


class TestPropagationChains:
    def test_feedback_reaches_the_source(self):
        pattern = Pattern.from_mapping(SCHEMA, {"seg": 2})
        simulator, plan, sink = build_linear_plan(pattern, inject_at=0.0)
        result = simulator.run()
        operators = {e.operator for e in result.feedback_log}
        # sink injected; select exploited+relayed; parse is feedback-aware?
        # parse is a PassThrough -> it IGNORES and stops the chain.
        assert {"sink", "keep", "parse"} <= operators
        parse = plan.operator("parse")
        assert parse.metrics.feedback_ignored == 1
        source = plan.operator("source")
        assert source.metrics.feedback_received == 0  # chain stopped

    def test_chain_without_unaware_stage_reaches_source(self):
        plan = QueryPlan("chain")
        source = PunctuatedSource(
            "source", SCHEMA, timeline(100),
            punctuate_on="ts", punctuation_interval=10.0,
        )
        keep = Select("keep", SCHEMA, lambda t: True)
        sink = CollectSink("sink", SCHEMA)
        plan.add(source)
        plan.chain(source, keep, sink, page_size=8)
        simulator = Simulator(plan)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"seg": 2})
        )
        simulator.at(0.0, lambda: sink.inject_feedback(fb))
        simulator.run()
        assert source.metrics.feedback_received == 1
        assert source.metrics.output_guard_drops > 0
        # Suppressed at the source: nothing downstream even sees seg 2.
        assert keep.metrics.input_guard_drops == 0
        assert not [r for r in sink.results if r["seg"] == 2]


class TestGuardExpiration:
    def test_guards_expire_as_punctuation_passes(self):
        """No predicate-state leak: guards vanish once their region closes."""
        pattern = Pattern.from_mapping(
            SCHEMA, {"seg": 2, "ts": AtMost(20.0)}
        )
        simulator, plan, sink = build_linear_plan(pattern, inject_at=0.0)
        simulator.run()
        keep = plan.operator("keep")
        # The stream ran to ts=50 with punctuation every 10: the guard on
        # ts<=20 was released when the 20-boundary punctuation passed.
        assert keep.input_port(0).guards.active == 0
        assert keep.input_port(0).guards.guards_expired == 1
        # And it did its job while alive.
        assert keep.metrics.input_guard_drops > 0


class TestJoinIntegration:
    def test_two_source_join_with_punctuation(self):
        left_schema = Schema([
            ("w", "int", True), ("k", "int"), ("x", "float"),
        ])
        right_schema = Schema([
            ("w", "int", True), ("k", "int"), ("y", "float"),
        ])

        def rows(schema, n):
            return [
                (float(i), StreamTuple(schema, (i // 4, i % 4, float(i))))
                for i in range(n)
            ]

        plan = QueryPlan("join-int")
        left = ListSource("left", left_schema, rows(left_schema, 40))
        right = ListSource("right", right_schema, rows(right_schema, 40))
        join = SymmetricHashJoin(
            "join", left_schema, right_schema,
            on=[("w", "w"), ("k", "k")],
        )
        sink = CollectSink("sink", join.output_schema)
        for op in (left, right, join, sink):
            plan.add(op)
        plan.connect(left, join, port=0, page_size=4)
        plan.connect(right, join, port=1, page_size=4)
        plan.connect(join, sink, page_size=4)
        Simulator(plan).run()
        # Same generator on both sides: every tuple joins with its twin.
        assert len(sink.results) == 40
        assert join.metrics.state_size == 0  # input completion purged state

    def test_union_of_two_sources(self):
        plan = QueryPlan("union-int")
        a = ListSource("a", SCHEMA, timeline(10))
        b = ListSource("b", SCHEMA, timeline(10))
        union = Union("union", SCHEMA, arity=2)
        sink = CollectSink("sink", SCHEMA)
        for op in (a, b, union, sink):
            plan.add(op)
        plan.connect(a, union, port=0)
        plan.connect(b, union, port=1)
        plan.connect(union, sink)
        Simulator(plan).run()
        assert len(sink.results) == 20


class TestDuplicateIntegration:
    def test_split_plan_agreement_through_engine(self):
        """Feedback from both branches of a DUPLICATE converges upstream."""
        plan = QueryPlan("split")
        source = PunctuatedSource(
            "source", SCHEMA, timeline(100),
            punctuate_on="ts", punctuation_interval=10.0,
        )
        dup = Duplicate("dup", SCHEMA)
        left = Select("left", SCHEMA, lambda t: True)
        right = Select("right", SCHEMA, lambda t: True)
        sink_l = CollectSink("sink_l", SCHEMA)
        sink_r = CollectSink("sink_r", SCHEMA)
        for op in (source, dup, left, right, sink_l, sink_r):
            plan.add(op)
        plan.connect(source, dup, page_size=8)
        plan.connect(dup, left, page_size=8)
        plan.connect(dup, right, page_size=8)
        plan.connect(left, sink_l, page_size=8)
        plan.connect(right, sink_r, page_size=8)
        simulator = Simulator(plan)
        pattern = Pattern.from_mapping(SCHEMA, {"seg": 1})
        simulator.at(0.0, lambda: sink_l.inject_feedback(
            FeedbackPunctuation.assumed(pattern)))
        simulator.at(1.0, lambda: sink_r.inject_feedback(
            FeedbackPunctuation.assumed(pattern)))
        simulator.run()
        # After both consumers agreed, dup guarded its input.
        assert dup.metrics.input_guard_drops > 0
        # Both outputs stay identical (DUPLICATE's defining property).
        assert sorted(t.values for t in sink_l.results) == sorted(
            t.values for t in sink_r.results
        )
