"""Tests for the mini query language (the paper's SQL sketch, §3.3)."""

import pytest

from repro.engine import Simulator
from repro.errors import PlanError
from repro.lang import Catalog, compile_query
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])


def rows(n, offset=0.0, spacing=0.1):
    return [
        (i * spacing + offset,
         StreamTuple(SCHEMA, (i * spacing + offset, i % 3, float(i))))
        for i in range(n)
    ]


@pytest.fixture
def catalog():
    return Catalog({
        "s1": (SCHEMA, rows(30)),
        "s2": (SCHEMA, rows(30, offset=0.05)),
    })


def run(query, catalog, **kwargs):
    plan = compile_query(query, catalog, **kwargs)
    Simulator(plan).run()
    return plan, plan.operator("result")


class TestBasicQueries:
    def test_select_star(self, catalog):
        _, sink = run("SELECT * FROM s1", catalog)
        assert len(sink.results) == 30

    def test_projection(self, catalog):
        _, sink = run("SELECT v, seg FROM s1", catalog)
        assert sink.results[0].schema.names == ("v", "seg")

    def test_where(self, catalog):
        _, sink = run("SELECT * FROM s1 WHERE v >= 20", catalog)
        assert len(sink.results) == 10
        assert all(t["v"] >= 20 for t in sink.results)

    def test_where_conjunction(self, catalog):
        _, sink = run("SELECT * FROM s1 WHERE v >= 10 AND seg = 1", catalog)
        assert all(t["v"] >= 10 and t["seg"] == 1 for t in sink.results)

    def test_where_string_literal(self, catalog):
        schema = Schema.of("name", "x")
        cat = Catalog({
            "s": (schema, [(0.0, StreamTuple(schema, ("a", 1))),
                           (0.1, StreamTuple(schema, ("b", 2)))]),
        })
        _, sink = run("SELECT * FROM s WHERE name = 'a'", cat)
        assert len(sink.results) == 1

    def test_union(self, catalog):
        _, sink = run("SELECT * FROM s1 UNION s2", catalog)
        assert len(sink.results) == 60


class TestAggregation:
    def test_aggregate_clause(self, catalog):
        _, sink = run(
            "SELECT * FROM s1 "
            "AGGREGATE avg(v) GROUP BY seg WINDOW 1.0 ON ts",
            catalog,
        )
        assert sink.results
        assert sink.results[0].schema.names == ("window", "seg", "avg_v")

    def test_count_star(self, catalog):
        _, sink = run(
            "SELECT * FROM s1 "
            "AGGREGATE count(*) GROUP BY seg WINDOW 1.0 ON ts",
            catalog,
        )
        total = sum(t["count"] for t in sink.results)
        assert total == 30

    def test_sliding_window(self, catalog):
        _, sink = run(
            "SELECT * FROM s1 "
            "AGGREGATE count(*) GROUP BY seg WINDOW 1.0 SLIDE 0.5 ON ts",
            catalog,
        )
        agg_plan = sink  # results exist and windows overlap
        assert len(sink.results) > 0

    def test_projection_after_aggregate(self, catalog):
        _, sink = run(
            "SELECT avg_v FROM s1 "
            "AGGREGATE avg(v) GROUP BY seg WINDOW 1.0 ON ts",
            catalog,
        )
        assert sink.results[0].schema.names == ("avg_v",)


class TestPaceClause:
    def test_pace_union(self, catalog):
        plan, sink = run(
            "SELECT * FROM s1 UNION s2 WITH PACE ON ts 2 SECONDS", catalog
        )
        pace = plan.operator("pace")
        assert pace.tolerance == 2.0
        assert len(sink.results) == 60  # nothing late in this workload

    def test_pace_minutes_unit(self, catalog):
        plan, _ = run(
            "SELECT * FROM s1 UNION s2 WITH PACE ON ts 1 MINUTE", catalog
        )
        assert plan.operator("pace").tolerance == 60.0

    def test_pace_drops_late_tuples(self):
        """A straggler branch loses its deep-late tuples under PACE."""
        late = [(3.0, StreamTuple(SCHEMA, (0.5, 0, 99.0)))]  # ts far behind
        punctual = rows(40)
        catalog = Catalog({"fast": (SCHEMA, punctual), "slow": (SCHEMA, late)})
        plan, sink = run(
            "SELECT * FROM fast UNION slow WITH PACE ON ts 1 SECOND",
            catalog,
        )
        assert len(sink.results) == 40
        assert plan.operator("pace").late_drops == 1

    def test_single_stream_pace(self, catalog):
        plan, sink = run(
            "SELECT * FROM s1 WITH PACE ON ts 5 SECONDS", catalog
        )
        assert len(sink.results) == 30


class TestErrors:
    def test_unknown_stream(self, catalog):
        with pytest.raises(PlanError, match="unknown stream"):
            compile_query("SELECT * FROM nope", catalog)

    def test_schema_mismatch_union(self, catalog):
        other = Schema.of("x")
        cat = Catalog({
            "s1": (SCHEMA, rows(5)),
            "bad": (other, [(0.0, StreamTuple(other, (1,)))]),
        })
        with pytest.raises(PlanError, match="share a schema"):
            compile_query("SELECT * FROM s1 UNION bad", cat)

    def test_garbage_rejected(self, catalog):
        with pytest.raises(PlanError, match="cannot parse"):
            compile_query("FROBNICATE the stream", catalog)

    def test_bad_where(self, catalog):
        with pytest.raises(PlanError):
            compile_query("SELECT * FROM s1 WHERE v !!! 3", catalog)

    def test_unknown_aggregate(self, catalog):
        with pytest.raises(PlanError, match="unknown aggregate"):
            compile_query(
                "SELECT * FROM s1 "
                "AGGREGATE median(v) GROUP BY seg WINDOW 1 ON ts",
                catalog,
            )

    def test_unknown_time_unit(self, catalog):
        with pytest.raises(PlanError, match="time unit"):
            compile_query(
                "SELECT * FROM s1 UNION s2 WITH PACE ON ts 3 FORTNIGHTS",
                catalog,
            )
