"""Tests for the threaded (NiagaraST-style) runtime and engine parity."""

import pytest

from repro.core import FeedbackPunctuation
from repro.engine import QueryPlan, Simulator, ThreadedRuntime
from repro.operators import (
    AggregateKind,
    CollectSink,
    ListSource,
    Select,
    WindowAggregate,
)
from repro.punctuation import Pattern, ProgressPunctuator
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])


def build_plan():
    """A deterministic plan: source -> select -> count -> sink."""
    punctuator = ProgressPunctuator(SCHEMA, "ts", interval=10.0)
    timeline = []
    for i in range(200):
        ts = i * 0.5
        tup = StreamTuple(SCHEMA, (ts, i % 4, float(i)))
        timeline.append((0.0, tup))
        for punct in punctuator.observe(ts):
            timeline.append((0.0, punct))
    timeline.append((0.0, punctuator.final()))

    plan = QueryPlan("parity")
    source = ListSource("src", SCHEMA, timeline)
    keep = Select("keep", SCHEMA, lambda t: t["seg"] != 3)
    count = WindowAggregate(
        "count", SCHEMA,
        kind=AggregateKind.COUNT,
        window_attribute="ts",
        width=10.0,
        group_by=("seg",),
    )
    sink = CollectSink("sink", count.output_schema)
    plan.add(source)
    plan.chain(source, keep, count, sink)
    return plan, sink


class TestThreadedRuntime:
    def test_runs_to_completion(self):
        plan, sink = build_plan()
        result = ThreadedRuntime(plan, timeout=30.0).run()
        assert len(sink.results) > 0
        assert result.metrics.operator_metrics["sink"].tuples_in > 0

    def test_parity_with_simulator(self):
        """Same plan, same results, on both engines (order-insensitive)."""
        plan_sim, sink_sim = build_plan()
        Simulator(plan_sim).run()
        plan_thr, sink_thr = build_plan()
        ThreadedRuntime(plan_thr, timeout=30.0).run()
        assert sorted(t.values for t in sink_sim.results) == sorted(
            t.values for t in sink_thr.results
        )

    def test_feedback_works_in_threads(self):
        """Feedback sent mid-run through the threaded control channels."""
        plan, sink = build_plan()
        count = plan.operator("count")
        runtime = ThreadedRuntime(plan, timeout=30.0)
        # Inject before start: the guard suppresses everything for seg 2.
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(count.output_schema, {"seg": 2})
        )
        sink.runtime = runtime
        # Send via the sink's upstream channel once running; simplest is
        # to piggyback on on_start.
        original_on_start = sink.on_start

        def patched_start():
            original_on_start()
            sink.inject_feedback(fb)

        sink.on_start = patched_start
        runtime.run()
        assert not [r for r in sink.results if r["seg"] == 2]
        assert count.metrics.feedback_received == 1

    def test_single_use(self):
        plan, _ = build_plan()
        runtime = ThreadedRuntime(plan, timeout=30.0)
        runtime.run()
        from repro.errors import EngineError
        with pytest.raises(EngineError):
            runtime.run()
