"""Snapshot/restore round-trips for every stateful operator.

The durability contract (``docs/durability.md``) is that
``restore_state(pickle.loads(pickle.dumps(snapshot_state())))`` on a
fresh instance reproduces the captured state exactly: snapshotting the
restored instance yields an equivalent state, and driving the same
suffix of the stream into the original and the restored copy produces
identical output.  Property tests (hypothesis) drive each operator with
random streams; deterministic tests pin the operators whose snapshots
historically omitted in-flight state (a Partition's lane stash, a
ShardMerge's inherited union frontiers).
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings, strategies as st

from repro.engine.harness import OperatorHarness
from repro.engine.plan import checkpoint_capable
from repro.operators import (
    AggregateKind,
    CollectSink,
    ImpatientJoin,
    Pace,
    Partition,
    PriorityBuffer,
    SymmetricHashJoin,
    ThriftyJoin,
    Union,
    WindowAggregate,
)
from repro.operators.base import Operator
from repro.operators.partition import ShardMerge
from repro.punctuation import Equals, Pattern, Punctuation, WILDCARD
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])
RIGHT = Schema([("rts", "timestamp", True), ("seg", "int"), ("w", "float")])

small_ints = st.integers(min_value=0, max_value=3)


def canon(value):
    """Structural normal form for comparing snapshot states."""
    if isinstance(value, dict):
        return tuple(sorted(
            (repr(k), canon(v)) for k, v in value.items()
        ))
    if isinstance(value, (list, tuple)):
        return tuple(canon(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(v) for v in value))
    if hasattr(value, "__slots__") and not isinstance(value, (str, bytes)):
        slots = getattr(type(value), "__slots__", ())
        if slots and not isinstance(value, (StreamTuple, Pattern)):
            return tuple(
                (s, canon(getattr(value, s, None))) for s in slots
            )
    return repr(value)


def roundtrip(original: Operator, fresh: Operator) -> Operator:
    """Snapshot ``original`` through pickle into ``fresh``; assert the
    restored snapshot is equivalent.  Returns ``fresh``."""
    state = original.snapshot_state()
    blob = pickle.dumps(state, protocol=4)
    fresh.restore_state(pickle.loads(blob))
    assert canon(fresh.snapshot_state()) == canon(state)
    return fresh


@st.composite
def streams(draw, schema=SCHEMA, n_max=20):
    n = draw(st.integers(min_value=0, max_value=n_max))
    rows, ts = [], 0.0
    for _ in range(n):
        ts += draw(st.floats(min_value=0.1, max_value=2.0))
        rows.append(StreamTuple(
            schema, (ts, draw(small_ints), float(draw(small_ints)))
        ))
    return rows


def seg_punct(schema, seg):
    pattern = Pattern(
        [WILDCARD, Equals(seg), WILDCARD], schema=schema
    )
    return Punctuation(pattern)


class TestJoinRoundTrip:
    def _make(self):
        return SymmetricHashJoin(
            "join", SCHEMA, RIGHT, [("seg", "seg")], how="inner"
        )

    @settings(max_examples=25, deadline=None)
    @given(left=streams(), right=streams(schema=RIGHT))
    def test_tables_and_frontiers_roundtrip(self, left, right):
        op = self._make()
        h = OperatorHarness(op)
        for tup in left:
            h.push(tup, port=0)
        for tup in right:
            h.push(tup, port=1)
        h.push_punctuation(seg_punct(SCHEMA, 0), port=0)
        restored = roundtrip(op, self._make())
        OperatorHarness(restored)  # wire ports for continued driving

    @settings(max_examples=25, deadline=None)
    @given(left=streams(), right=streams(schema=RIGHT),
           tail=streams(schema=RIGHT, n_max=8))
    def test_restored_join_continues_identically(self, left, right, tail):
        op = self._make()
        h = OperatorHarness(op)
        for tup in left:
            h.push(tup, port=0)
        for tup in right:
            h.push(tup, port=1)
        restored = roundtrip(op, self._make())
        h2 = OperatorHarness(restored)
        before = len(h.emitted_tuples())
        for tup in tail:
            h.push(tup, port=1)
            h2.push(tup, port=1)
        assert h.emitted_tuples()[before:] == h2.emitted_tuples()

    def test_thrifty_counter_rides_along(self):
        def make():
            return ThriftyJoin(
                "tj", SCHEMA, RIGHT, [("seg", "seg")], probe_inputs=(0,)
            )
        op = make()
        h = OperatorHarness(op)
        h.push_punctuation(seg_punct(SCHEMA, 2), port=0)
        assert op.empty_windows_detected == 1
        restored = roundtrip(op, make())
        assert restored.empty_windows_detected == 1

    def test_impatient_requested_keys_ride_along(self):
        def make():
            return ImpatientJoin(
                "ij", SCHEMA, RIGHT, [("seg", "seg")], eager_input=0
            )
        op = make()
        h = OperatorHarness(op)
        h.push(StreamTuple(SCHEMA, (1.0, 1, 5.0)), port=0)
        h.push(StreamTuple(SCHEMA, (2.0, 2, 5.0)), port=0)
        assert op._requested_keys == {(1,), (2,)}
        restored = roundtrip(op, make())
        assert restored._requested_keys == {(1,), (2,)}
        assert restored.desired_sent == op.desired_sent


class TestAggregateRoundTrip:
    def _make(self):
        return WindowAggregate(
            "agg", SCHEMA, kind=AggregateKind.AVG,
            window_attribute="ts", value_attribute="v",
            width=4.0, slide=4.0, group_by=("seg",),
        )

    @settings(max_examples=25, deadline=None)
    @given(rows=streams(), tail=streams(n_max=8))
    def test_window_state_roundtrip_and_continuation(self, rows, tail):
        op = self._make()
        h = OperatorHarness(op)
        for tup in rows:
            h.push(tup)
        restored = roundtrip(op, self._make())
        h2 = OperatorHarness(restored)
        before = len(h.emitted())
        for tup in tail:
            h.push(tup)
            h2.push(tup)
        h.finish()
        h2.finish()
        assert canon(h.emitted()[before:]) == canon(h2.emitted())


class TestBufferRoundTrip:
    def _make(self):
        return PriorityBuffer("buf", SCHEMA, capacity=8, max_desires=4)

    @settings(max_examples=25, deadline=None)
    @given(rows=streams(), tail=streams(n_max=8))
    def test_pending_and_desires_roundtrip(self, rows, tail):
        from repro.core import FeedbackPunctuation

        op = self._make()
        h = OperatorHarness(op)
        for tup in rows:
            h.push(tup)
        h.feedback(FeedbackPunctuation.desired(
            Pattern([WILDCARD, Equals(1), WILDCARD], schema=SCHEMA),
            issuer="t", issued_at=0.0,
        ))
        restored = roundtrip(op, self._make())
        h2 = OperatorHarness(restored)
        before = len(h.emitted())
        for tup in tail:
            h.push(tup)
            h2.push(tup)
        h.finish()
        h2.finish()
        assert canon(h.emitted()[before:]) == canon(h2.emitted())


class TestUnionPaceRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(a=streams(n_max=10), b=streams(n_max=10))
    def test_union_frontiers_roundtrip(self, a, b):
        def make():
            return Union("u", SCHEMA, arity=2)
        op = make()
        h = OperatorHarness(op)
        for tup in a:
            h.push(tup, port=0)
        for tup in b:
            h.push(tup, port=1)
        h.push_punctuation(seg_punct(SCHEMA, 1), port=0)
        roundtrip(op, make())

    @settings(max_examples=25, deadline=None)
    @given(a=streams(n_max=12), tail=streams(n_max=6))
    def test_pace_watermarks_roundtrip_and_continue(self, a, tail):
        def make():
            return Pace(
                "pace", SCHEMA, timestamp_attribute="ts",
                tolerance=1.0, arity=1, feedback_enabled=False,
            )
        op = make()
        h = OperatorHarness(op)
        for tup in a:
            h.push(tup)
        restored = roundtrip(op, make())
        assert restored.high_watermark == op.high_watermark
        assert restored.late_drops == op.late_drops
        h2 = OperatorHarness(restored)
        before = len(h.emitted())
        for tup in tail:
            h.push(tup)
            h2.push(tup)
        assert canon(h.emitted()[before:]) == canon(h2.emitted())


class TestPartitionRoundTrip:
    """The historical offenders: snapshots must carry in-flight state."""

    def _make(self):
        return Partition("part", SCHEMA, key="seg", fanout=3)

    def test_lane_stash_survives_roundtrip(self):
        op = self._make()
        h = OperatorHarness(op, outputs=3)
        rows = [
            StreamTuple(SCHEMA, (float(i), i % 3, float(i)))
            for i in range(9)
        ]
        lane = op.lane_of(rows[0])
        # Pause the first row's lane, so its tuples stash instead of
        # emitting -- exactly the in-flight state a crash must not lose.
        op.on_pause(None, op.outputs[lane])
        for tup in rows:
            h.push(tup)
        assert op._stash, "expected stashed tuples on the paused lane"
        fresh = self._make()
        OperatorHarness(fresh, outputs=3)
        restored = roundtrip(op, fresh)
        assert restored._paused_lanes == op._paused_lanes
        assert {
            lane: [t.values for t in pending]
            for lane, pending in restored._stash.items()
        } == {
            lane: [t.values for t in pending]
            for lane, pending in op._stash.items()
        }
        assert restored.tuples_stashed == op.tuples_stashed

    def test_declared_patterns_remap_to_new_edges(self):
        op = self._make()
        OperatorHarness(op, outputs=3)
        pattern = Pattern([WILDCARD, Equals(1), WILDCARD], schema=SCHEMA)
        op._declared[id(op.outputs[2])] = [pattern]
        fresh = self._make()
        # Wire before restoring, as recovery does on a built plan: the
        # declared patterns re-key onto the new process's edges.
        OperatorHarness(fresh, outputs=3)
        restored = roundtrip(op, fresh)
        state = restored.snapshot_state()
        assert state["declared"] == {2: [pattern]}

    def test_shard_merge_chains_union_frontiers(self):
        def make():
            return ShardMerge("merge", SCHEMA, arity=2)
        op = make()
        h = OperatorHarness(op)
        h.push_punctuation(seg_punct(SCHEMA, 0), port=0)
        assert op.regions_held == 1
        restored = roundtrip(op, make())
        assert restored.regions_held == 1
        # The inherited union frontier must survive: lane 1's matching
        # declaration releases the region exactly once after recovery.
        h2 = OperatorHarness(restored)
        h2.push_punctuation(seg_punct(SCHEMA, 0), port=1)
        assert restored.regions_released == 1
        assert len(h2.emitted_punctuation()) == 1


class TestSinkRoundTrip:
    def test_collect_sink_results_roundtrip(self):
        def make():
            return CollectSink("sink", SCHEMA)
        op = make()
        h = OperatorHarness(op, outputs=0)
        rows = [
            StreamTuple(SCHEMA, (float(i), i % 3, float(i)))
            for i in range(5)
        ]
        for tup in rows:
            h.push(tup)
        restored = roundtrip(op, make())
        assert [t.values for t in restored.results] == [
            t.values for t in rows
        ]
        assert len(restored.arrivals) == 5


class TestCapabilityProbe:
    def test_stateful_operators_are_checkpoint_capable(self):
        for op_type in (
            SymmetricHashJoin, ThriftyJoin, ImpatientJoin,
            WindowAggregate, PriorityBuffer, Union, Pace,
            Partition, ShardMerge, CollectSink,
        ):
            assert checkpoint_capable(op_type), op_type.__name__

    def test_base_operator_is_not(self):
        assert not checkpoint_capable(Operator)
