"""Tests for the named-engine registry (repro.engine.registry)."""

import pytest

from repro import (
    CollectSink,
    ListSource,
    QueryPlan,
    Schema,
    Simulator,
    StreamTuple,
    ThreadedRuntime,
)
from repro.engine.registry import (
    available_engines,
    create_engine,
    engine_factory,
    register_engine,
    run_plan,
    unregister_engine,
)
from repro.errors import EngineError

SCHEMA = Schema.of("ts", "v")


def tiny_plan():
    plan = QueryPlan("tiny")
    source = ListSource(
        "src", SCHEMA,
        [(float(i), StreamTuple(SCHEMA, (i, i * 10))) for i in range(5)],
    )
    plan.chain(source, CollectSink("out", SCHEMA))
    return plan


class TestBuiltins:
    def test_builtin_engines_registered(self):
        assert "asyncio" in available_engines()
        assert "simulated" in available_engines()
        assert "threaded" in available_engines()

    def test_factories_resolve_to_engine_classes(self):
        from repro.engine import AsyncioEngine

        assert engine_factory("simulated") is Simulator
        assert engine_factory("threaded") is ThreadedRuntime
        assert engine_factory("asyncio") is AsyncioEngine

    def test_create_engine_builds_over_plan(self):
        engine = create_engine("simulated", tiny_plan())
        assert isinstance(engine, Simulator)

    def test_create_engine_forwards_options(self):
        engine = create_engine(
            "simulated", tiny_plan(), control_latency=0.5, max_events=123
        )
        assert engine.control_latency == 0.5
        assert engine.max_events == 123

    def test_create_engine_forwards_asyncio_policy_options(self):
        from repro.engine import AsyncioEngine

        engine = create_engine(
            "asyncio", tiny_plan(),
            control_latency=0.25, timeout=7.5, emulate_costs=True,
        )
        assert isinstance(engine, AsyncioEngine)
        assert engine.control_latency == 0.25
        assert engine.timeout == 7.5
        assert engine.emulate_costs is True

    def test_create_engine_forwards_kwargs_to_custom_policy(self):
        """A registered policy subclass receives create_engine kwargs
        verbatim through its constructor."""

        class KnobbedSimulator(Simulator):
            def __init__(self, plan, *, knob="default", **options):
                super().__init__(plan, **options)
                self.knob = knob

        register_engine("knobbed", KnobbedSimulator)
        try:
            engine = create_engine(
                "knobbed", tiny_plan(), knob="tuned", control_latency=0.5
            )
            assert engine.knob == "tuned"
            assert engine.control_latency == 0.5
            # Unknown kwargs surface as the constructor's TypeError, not
            # a silent drop.
            with pytest.raises(TypeError):
                create_engine("knobbed", tiny_plan(), bogus_option=1)
        finally:
            unregister_engine("knobbed")

    def test_run_plan_convenience(self):
        result = run_plan(tiny_plan(), engine="simulated")
        assert len(result.sink("out").results) == 5


class TestErrorPaths:
    def test_unknown_engine_lists_known_names(self):
        with pytest.raises(EngineError, match="simulated"):
            engine_factory("warp-drive")

    def test_unknown_engine_error_lists_every_registered_name(self):
        """The message enumerates the full registry, sorted -- the user's
        next command is in the error text."""
        with pytest.raises(EngineError) as caught:
            engine_factory("warp-drive")
        message = str(caught.value)
        for name in available_engines():
            assert name in message
        listed = message.split("registered engines: ", 1)[1]
        assert listed == ", ".join(sorted(available_engines()))

    def test_unknown_engine_on_create(self):
        with pytest.raises(EngineError, match="unknown engine"):
            create_engine("warp-drive", tiny_plan())

    def test_double_registration_rejected(self):
        register_engine("temp-engine", Simulator)
        try:
            with pytest.raises(EngineError, match="already registered"):
                register_engine("temp-engine", ThreadedRuntime)
        finally:
            unregister_engine("temp-engine")

    def test_replace_overrides(self):
        register_engine("temp-engine", Simulator)
        try:
            register_engine("temp-engine", ThreadedRuntime, replace=True)
            assert engine_factory("temp-engine") is ThreadedRuntime
        finally:
            unregister_engine("temp-engine")

    def test_unregister_unknown_rejected(self):
        with pytest.raises(EngineError, match="not registered"):
            unregister_engine("never-registered")

    def test_empty_name_rejected(self):
        with pytest.raises(EngineError, match="non-empty"):
            register_engine("", Simulator)

    def test_non_callable_factory_rejected(self):
        with pytest.raises(EngineError, match="callable"):
            register_engine("broken", object())


class TestCustomBackend:
    def test_custom_backend_plugs_into_flow_run(self):
        """A new backend serves flow.run(engine=...) without API changes."""
        from repro import Flow

        calls = []

        def tracing_simulator(plan, **options):
            calls.append(options)
            return Simulator(plan, **options)

        register_engine("tracing", tracing_simulator)
        try:
            flow = Flow("custom")
            flow.source(
                SCHEMA,
                [(float(i), StreamTuple(SCHEMA, (i, i))) for i in range(3)],
            ).collect("out")
            result = flow.run(engine="tracing", control_latency=0.25)
            assert len(result.sink("out").results) == 3
            assert calls == [{"control_latency": 0.25}]
        finally:
            unregister_engine("tracing")
