"""Unit tests for patterns: the paper's bracketed punctuation predicates."""

import pytest

from repro.errors import PatternError
from repro.punctuation import AtLeast, AtMost, Equals, Pattern
from repro.stream import Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema.of("period", "segment", "data")


class TestConstruction:
    def test_build_with_literals(self, schema):
        # The paper's ?[7, 3, *] under (period, segment, data).
        p = Pattern.build(7, 3, "*", schema=schema)
        assert p.arity == 3
        assert p.atoms[2].is_wildcard

    def test_arity_must_match_schema(self, schema):
        with pytest.raises(PatternError):
            Pattern.build(1, 2, schema=schema)

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            Pattern(())

    def test_all_wildcards(self):
        p = Pattern.all_wildcards(3)
        assert p.is_all_wildcard

    def test_single(self, schema):
        p = Pattern.single(schema, "segment", 3)
        assert p.constrained_indices() == (1,)

    def test_from_mapping(self, schema):
        p = Pattern.from_mapping(schema, {"segment": 3, "data": AtLeast(50)})
        assert p.constrained_indices() == (1, 2)
        assert p.atom_at("data") == AtLeast(50)


class TestMatching:
    def test_matches_tuple(self, schema):
        p = Pattern.build("*", 3, AtLeast(50), schema=schema)
        assert p.matches(StreamTuple(schema, (7, 3, 55)))
        assert not p.matches(StreamTuple(schema, (7, 4, 55)))
        assert not p.matches(StreamTuple(schema, (7, 3, 45)))

    def test_matches_plain_sequence(self):
        assert Pattern.build("*", 3).matches((99, 3))

    def test_arity_mismatch_raises(self):
        with pytest.raises(PatternError):
            Pattern.build("*", 3).matches((1, 2, 3))

    def test_filter_is_papers_subset(self, schema):
        p = Pattern.build("*", 3, "*", schema=schema)
        tuples = [StreamTuple(schema, (i, i % 2 + 3, i)) for i in range(6)]
        kept = p.filter(tuples)
        assert all(t["segment"] == 3 for t in kept)
        assert len(kept) == 3


class TestAlgebra:
    def test_subsumes_pointwise(self):
        wider = Pattern.build("*", AtMost(10))
        narrower = Pattern.build(5, AtMost(3))
        assert wider.subsumes(narrower)
        assert not narrower.subsumes(wider)

    def test_subsumes_self(self):
        p = Pattern.build(1, AtLeast(2))
        assert p.subsumes(p)

    def test_intersect(self):
        a = Pattern.build("*", AtLeast(2))
        b = Pattern.build(1, AtMost(8))
        joint = a.intersect(b)
        assert joint.matches((1, 5))
        assert not joint.matches((2, 5))
        assert not joint.matches((1, 9))

    def test_intersect_empty_when_any_attr_disjoint(self):
        a = Pattern.build("*", AtLeast(5))
        b = Pattern.build("*", AtMost(3))
        assert a.intersect(b) is None
        assert a.is_disjoint(b)

    def test_arity_mismatch_in_algebra(self):
        with pytest.raises(PatternError):
            Pattern.build("*").subsumes(Pattern.build("*", "*"))


class TestDerivation:
    def test_project(self, schema):
        p = Pattern.build(7, 3, AtLeast(50), schema=schema)
        projected = p.project([1, 2])
        assert projected.arity == 2
        assert projected.atoms[0] == Equals(3)

    def test_widen_except(self, schema):
        p = Pattern.build(7, 3, AtLeast(50), schema=schema)
        widened = p.widen_except([1])
        assert widened.atoms[0].is_wildcard
        assert widened.atoms[1] == Equals(3)
        assert widened.atoms[2].is_wildcard

    def test_with_atom_by_name(self, schema):
        p = Pattern.all_wildcards(3, schema=schema)
        p2 = p.with_atom("segment", 4)
        assert p2.atom_at("segment") == Equals(4)
        assert p.atom_at("segment").is_wildcard

    def test_with_schema(self, schema):
        p = Pattern.build("*", 3, "*")
        assert p.with_schema(schema).constrained_names() == ("segment",)

    def test_constrained_names_requires_schema(self):
        with pytest.raises(PatternError):
            Pattern.build("*", 3).constrained_names()


class TestIdentity:
    def test_equality_ignores_schema_binding(self, schema):
        assert Pattern.build("*", 3, "*") == Pattern.build("*", 3, "*", schema=schema)

    def test_hashable(self):
        assert len({Pattern.build(1, "*"), Pattern.build(1, "*")}) == 1

    def test_repr_is_papers_notation(self):
        assert repr(Pattern.build("*", 3, AtLeast(50))) == "[*, 3, >=50]"

    def test_immutable(self):
        p = Pattern.build("*", 1)
        with pytest.raises(AttributeError):
            p.atoms = ()
