"""Tests for the fluent dataflow API (repro.api.Flow) — system S10."""

import pytest

from repro import (
    CollectSink,
    Flow,
    ListSource,
    Pace,
    PriorityBuffer,
    QueryPlan,
    Schema,
    Select,
    Simulator,
    StreamTuple,
    ThreadedRuntime,
    Union,
    WindowAggregate,
)
from repro.api import AggSpec, avg, count
from repro.core import FeedbackPunctuation
from repro.engine import fork_available
from repro.errors import EngineError, FlowError, PlanError
from repro.operators.passthrough import PassThrough
from repro.punctuation import InSet, Pattern

SCHEMA = Schema([
    ("ts", "timestamp", True), ("sensor", "int"), ("value", "float"),
])


def rows(n, spacing=0.1):
    return [
        (i * spacing,
         StreamTuple(SCHEMA, (i * spacing, i % 3, float(i % 50))))
        for i in range(n)
    ]


def pipeline_flow(name="flow"):
    """The quickstart pipeline: source -> where -> window -> sink."""
    flow = Flow(name)
    (flow.source(SCHEMA, rows(200), name="source")
         .punctuate(on="ts", every=2.0)
         .where(lambda t: t["value"] >= 0.0, name="keep")
         .window(avg("value"), by="sensor", width=2.0, on="ts",
                 name="average")
         .collect("sink"))
    return flow


def sink_values(result, name="sink"):
    return [t.values for t in result.sink(name).results]


class TestBuild:
    def test_compiles_to_query_plan(self):
        plan = pipeline_flow().build()
        assert isinstance(plan, QueryPlan)
        assert [op.name for op in plan] == [
            "source", "keep", "average", "sink"
        ]
        assert isinstance(plan.operator("keep"), Select)
        assert isinstance(plan.operator("average"), WindowAggregate)
        assert isinstance(plan.operator("sink"), CollectSink)

    def test_builds_are_fresh(self):
        """Every build yields new operator instances (flows re-run)."""
        flow = pipeline_flow()
        first, second = flow.build(), flow.build()
        assert first.operator("keep") is not second.operator("keep")

    def test_auto_names_are_unique(self):
        flow = Flow("auto")
        a = flow.source(SCHEMA, rows(2))
        b = flow.source(SCHEMA, rows(2))
        assert a.name == "source"
        assert b.name == "source_2"

    def test_duplicate_explicit_name_rejected(self):
        flow = Flow("dups")
        flow.source(SCHEMA, rows(2), name="s")
        with pytest.raises(FlowError, match="already has a stage"):
            flow.source(SCHEMA, rows(2), name="s")

    def test_empty_flow_rejected(self):
        with pytest.raises(FlowError, match="no stages"):
            Flow("empty").build()

    def test_schema_tracking(self):
        flow = Flow("schemas")
        handle = flow.source(SCHEMA, rows(4)).window(
            count(), by="sensor", width=1.0, on="ts"
        )
        assert handle.schema.names == ("window", "sensor", "count")

    def test_cost_kwargs_reach_the_operator(self):
        flow = Flow("costs")
        (flow.source(SCHEMA, rows(4))
             .where(lambda t: True, name="w", tuple_cost=0.25,
                    control_cost=0.5)
             .collect("sink"))
        plan = flow.build()
        assert plan.operator("w").tuple_cost == 0.25
        assert plan.operator("w").control_cost == 0.5

    def test_configure_applies_per_build(self):
        flow = Flow("conf")
        (flow.source(SCHEMA, rows(4))
             .where(lambda t: True, name="w",
                    configure=lambda op: setattr(op, "relay_enabled", False))
             .collect("sink"))
        assert flow.build().operator("w").relay_enabled is False
        assert flow.build().operator("w").relay_enabled is False


class TestHandleDiscipline:
    def test_handle_single_consumption(self):
        flow = Flow("reuse")
        handle = flow.source(SCHEMA, rows(4))
        handle.where(lambda t: True)
        with pytest.raises(FlowError, match="split"):
            handle.where(lambda t: True)

    def test_split_allows_fanout(self):
        flow = Flow("fanout")
        a, b = flow.source(SCHEMA, rows(4)).split(name="dup")
        a.where(lambda t: True, name="wa").collect("sa")
        b.where(lambda t: False, name="wb").collect("sb")
        plan = flow.build()
        assert len(plan.operator("dup").outputs) == 2

    def test_split_branches_are_single_consumer(self):
        """split(n) bounds the fan-out: each branch handle is one-shot."""
        flow = Flow("bounded-fanout")
        a, b = flow.source(SCHEMA, rows(4)).split(2, name="dup")
        a.where(lambda t: True, name="wa").collect("sa")
        with pytest.raises(FlowError, match="already consumed"):
            a.where(lambda t: True, name="wa2")
        b.where(lambda t: True, name="wb").collect("sb")
        assert len(flow.build().operator("dup").outputs) == 2

    def test_same_handle_twice_in_one_verb_rejected_cleanly(self):
        flow = Flow("twice")
        a = flow.source(SCHEMA, rows(4), name="a")
        with pytest.raises(FlowError, match="passed twice"):
            a.union(a)
        # The failed verb must not have consumed or half-wired anything.
        a.collect("sink")
        plan = flow.build()
        assert [op.name for op in plan] == ["a", "sink"]

    def test_cross_flow_handles_rejected(self):
        flow_a, flow_b = Flow("a"), Flow("b")
        handle_a = flow_a.source(SCHEMA, rows(4))
        handle_b = flow_b.source(SCHEMA, rows(4))
        with pytest.raises(FlowError, match="belongs to flow"):
            handle_a.union(handle_b)

    def test_punctuate_only_on_sources(self):
        flow = Flow("punct")
        handle = flow.source(SCHEMA, rows(4)).where(lambda t: True)
        with pytest.raises(FlowError, match="source stage"):
            handle.punctuate(on="ts", every=1.0)

    def test_union_schema_mismatch_rejected(self):
        other = Schema.of("a", "b")
        flow = Flow("mismatch")
        one = flow.source(SCHEMA, rows(2))
        two = flow.source(other, [])
        with pytest.raises(FlowError, match="share a schema"):
            one.union(two)

    def test_window_requires_agg_spec(self):
        flow = Flow("spec")
        with pytest.raises(FlowError, match="AggSpec"):
            flow.source(SCHEMA, rows(2)).window(
                "avg", on="ts", width=1.0
            )

    def test_apply_instance_makes_flow_single_build(self):
        flow = Flow("instance")
        (flow.source(SCHEMA, rows(4))
             .apply(PassThrough("stage", SCHEMA))
             .collect("sink"))
        flow.build()
        with pytest.raises(FlowError, match="factory"):
            flow.build()

    def test_describe_does_not_spend_a_single_use_instance(self):
        """Inspection must not consume the one permitted build."""
        flow = Flow("inspect")
        (flow.source(SCHEMA, rows(4))
             .apply(PassThrough("stage", SCHEMA))
             .collect("sink"))
        assert "stage (PassThrough)" in flow.describe()
        assert '"stage"' in flow.to_dot()
        result = flow.run(engine="simulated")  # still buildable
        assert len(result.sink("sink").results) == 4

    def test_failed_verb_leaves_flow_untouched(self):
        """A rejected verb must not claim its name or consume handles."""
        flow = Flow("atomic")
        one = flow.source(SCHEMA, rows(4), name="one")
        two = flow.source(SCHEMA, rows(4), name="two")
        with pytest.raises(FlowError):
            flow.merge(lambda: Union("u", SCHEMA, arity=2), one)  # arity
        # The corrected call succeeds: "u" was not claimed, nothing was
        # consumed, no half-wired node remains.
        flow.merge(lambda: Union("u", SCHEMA, arity=2), one, two).collect(
            "sink"
        )
        assert len(flow.build().operator("u").outputs) == 1

    def test_failed_verb_does_not_consume_earlier_inputs(self):
        flow = Flow("atomic2")
        x = flow.source(SCHEMA, rows(4), name="x")
        y = flow.source(SCHEMA, rows(4), name="y")
        y.where(lambda t: True, name="wy").collect("sy")
        with pytest.raises(FlowError, match="already consumed"):
            x.union(y)  # y is spent; x must survive the failure
        x.where(lambda t: True, name="wx").collect("sx")
        flow.build()  # no dangling union node, no unconnected ports

    def test_bad_pace_leaves_no_orphan_empty_source(self):
        flow = Flow("pace-atomic")
        handle = flow.source(SCHEMA, rows(4))
        with pytest.raises(Exception):
            handle.pace(on="ts", interval=1.0, feedback_bound="nonsense")
        handle.pace(on="ts", interval=1.0, name="pace").collect("sink")
        plan = flow.build()
        assert [op.name for op in plan] == [
            "source", "pace_empty", "pace", "sink"
        ]

    def test_apply_factory_keeps_flow_rerunnable(self):
        flow = Flow("factory")
        (flow.source(SCHEMA, rows(4))
             .apply(lambda: PassThrough("stage", SCHEMA))
             .collect("sink"))
        flow.build()
        flow.build()  # no error


class TestBuilderManualEquivalence:
    """Same topology by hand and by builder -> same RunResult tuples."""

    def manual_plan(self, name="manual"):
        plan = QueryPlan(name)
        source = ListSource("source", SCHEMA, rows(200))
        keep = Select("keep", SCHEMA, lambda t: t["value"] >= 0.0)
        average = WindowAggregate(
            "average", SCHEMA,
            kind="avg", window_attribute="ts", width=2.0,
            value_attribute="value", group_by=("sensor",),
        )
        sink = CollectSink("sink", average.output_schema)
        plan.add(source)
        plan.chain(source, keep, average, sink)
        return plan

    def builder_flow(self, name="built"):
        flow = Flow(name)
        (flow.source(SCHEMA, rows(200), name="source")
             .where(lambda t: t["value"] >= 0.0, name="keep")
             .window(avg("value"), by="sensor", width=2.0, on="ts",
                     name="average")
             .collect("sink"))
        return flow

    def test_same_topology(self):
        manual = self.manual_plan()
        built = self.builder_flow().build()
        assert manual.describe().splitlines()[1:] == (
            built.describe().splitlines()[1:]
        )

    def test_same_tuples_simulated(self):
        manual = self.manual_plan()
        Simulator(manual).run()
        expected = [t.values for t in manual.operator("sink").results]
        result = self.builder_flow().run(engine="simulated")
        assert sink_values(result) == expected
        assert expected  # non-vacuous

    def test_same_tuples_threaded(self):
        manual = self.manual_plan()
        ThreadedRuntime(manual).run()
        expected = [t.values for t in manual.operator("sink").results]
        result = self.builder_flow().run(engine="threaded")
        assert sink_values(result) == expected

    def test_same_tuples_asyncio(self):
        manual = self.manual_plan()
        Simulator(manual).run()
        expected = [t.values for t in manual.operator("sink").results]
        result = self.builder_flow().run(engine="asyncio")
        assert sink_values(result) == expected

    @pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    )
    def test_same_tuples_multiprocess(self):
        manual = self.manual_plan()
        Simulator(manual).run()
        expected = [t.values for t in manual.operator("sink").results]
        result = self.builder_flow().run(engine="multiprocess")
        assert sink_values(result) == expected

    def test_engines_agree_through_the_builder(self):
        flow = pipeline_flow()
        simulated = flow.run(engine="simulated")
        threaded = flow.run(engine="threaded")
        aio = flow.run(engine="asyncio")
        assert sink_values(simulated) == sink_values(threaded)
        assert sink_values(simulated) == sink_values(aio)
        if fork_available():
            mp = flow.run(engine="multiprocess")
            assert sink_values(simulated) == sink_values(mp)

    def test_engine_options_pass_through(self):
        flow = pipeline_flow()
        result = flow.run(engine="simulated", control_latency=0.5)
        assert result.metrics.events_processed > 0


class TestNonLinearTopologies:
    def test_split_union_roundtrip(self):
        flow = Flow("diamond")
        a, b = flow.source(SCHEMA, rows(50), name="source").split(
            name="dup"
        )
        evens = a.where(lambda t: t["sensor"] != 1, name="not1")
        ones = b.where(lambda t: t["sensor"] == 1, name="only1")
        evens.union(ones, name="merge").collect("sink")
        result = flow.run(engine="simulated")
        assert len(result.sink("sink").results) == 50

    def test_pace_merges_two_streams(self):
        # Small pages so the fast branch's watermark advances before the
        # straggler is processed (lateness is a scheduling property).
        flow = Flow("paced", page_size=16)
        fast = flow.source(SCHEMA, rows(40), name="fast")
        late = flow.source(
            SCHEMA, [(3.0, StreamTuple(SCHEMA, (0.5, 0, 99.0)))],
            name="slow",
        )
        fast.pace(late, on="ts", interval=1.0, name="pace").collect("sink")
        result = flow.run(engine="simulated")
        assert isinstance(result.plan.operator("pace"), Pace)
        assert len(result.sink("sink").results) == 40
        assert result.plan.operator("pace").late_drops == 1

    def test_unary_pace_gets_empty_second_input(self):
        flow = Flow("paced1")
        flow.source(SCHEMA, rows(10)).pace(
            on="ts", interval=5.0, name="pace"
        ).collect("sink")
        plan = flow.build()
        assert isinstance(plan.operator("pace_empty"), ListSource)
        Simulator(plan).run()
        assert len(plan.operator("sink").results) == 10

    def test_join_two_branches(self):
        left_schema = Schema([("k", "int", True), ("l", "float")])
        right_schema = Schema([("k", "int", True), ("r", "float")])
        left_rows = [
            (i * 0.1, StreamTuple(left_schema, (i, float(i))))
            for i in range(10)
        ]
        right_rows = [
            (i * 0.1, StreamTuple(right_schema, (i, float(-i))))
            for i in range(10)
        ]
        flow = Flow("joined")
        left = flow.source(left_schema, left_rows, name="left")
        right = flow.source(right_schema, right_rows, name="right")
        left.join(right, on=[("k", "k")], name="join").collect("sink")
        result = flow.run(engine="simulated")
        assert len(result.sink("sink").results) == 10

    def test_merge_custom_operator(self):
        flow = Flow("custom-merge")
        one = flow.source(SCHEMA, rows(5), name="one")
        two = flow.source(SCHEMA, rows(5), name="two")
        handle = flow.merge(
            lambda: Union("u", SCHEMA, arity=2), one, two
        )
        handle.collect("sink")
        result = flow.run(engine="simulated")
        assert len(result.sink("sink").results) == 10

    def test_merge_arity_mismatch_rejected(self):
        flow = Flow("arity")
        one = flow.source(SCHEMA, rows(2))
        with pytest.raises(FlowError, match="input port"):
            flow.merge(lambda: Union("u", SCHEMA, arity=2), one)

    def test_buffer_verb(self):
        flow = Flow("buffered")
        (flow.source(SCHEMA, rows(10))
             .buffer(capacity=4, name="buf")
             .collect("sink"))
        plan = flow.build()
        assert isinstance(plan.operator("buf"), PriorityBuffer)
        assert plan.operator("buf").capacity == 4


class TestDeclarativeRun:
    def feedback_for(self, schema):
        return FeedbackPunctuation.assumed(
            Pattern.from_mapping(schema, {"sensor": InSet({1})}),
            issuer="client",
        )

    def test_feedback_injection_simulated(self):
        flow = pipeline_flow()
        baseline = flow.run(engine="simulated")
        out_schema = baseline.sink("sink").output_schema
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(out_schema, {"sensor": InSet({1})}),
            issuer="client",
        )
        run = flow.run(engine="simulated", feedback=[(0.0, "sink", fb)])
        assert all(t["sensor"] != 1 for t in run.sink("sink").results)
        assert len(run.sink("sink").results) < len(
            baseline.sink("sink").results
        )

    def test_feedback_injection_threaded(self):
        """Wall-clock injection lands mid-stream via a gated source."""
        import threading

        gate = threading.Event()
        data = rows(100)

        def events():
            yield from data[:50]
            gate.wait(10.0)  # hold the stream open for the injection
            yield from data[50:]

        flow = Flow("threaded-fb")
        handle = (
            flow.generate(SCHEMA, events, name="source")
                .window(avg("value"), by="sensor", width=2.0, on="ts",
                        name="average")
        )
        handle.collect("sink")
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(handle.schema, {"sensor": InSet({1})}),
            issuer="client",
        )
        run = flow.run(
            engine="threaded",
            feedback=[(0.05, "sink", fb)],
            actions=[(0.4, lambda plan: gate.set())],
        )
        assert all(t["sensor"] != 1 for t in run.sink("sink").results)
        assert run.sink("sink").results  # other sensors made it through

    def test_threaded_action_errors_propagate(self):
        """A failing injection must not silently yield a feedback-free run."""
        import threading

        gate = threading.Event()
        data = rows(20)

        def events():
            yield from data[:10]
            gate.wait(10.0)
            yield from data[10:]

        def boom(plan):
            gate.set()
            raise RuntimeError("injection failed")

        flow = Flow("threaded-err")
        flow.generate(SCHEMA, events, name="source").collect("sink")
        with pytest.raises(RuntimeError, match="injection failed"):
            flow.run(engine="threaded", actions=[(0.05, boom)])

    @pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    )
    def test_feedback_injection_multiprocess(self):
        """Declarative feedback crosses the process boundary.

        ``feedback=`` entries name their target sink, so ``Flow.run``
        hands the multiprocess engine an owner and the injection fires
        inside the worker that owns the sink; the assumed pattern then
        relays upstream over a control frame to the source's worker.
        The source gates mid-stream on a fork-shared event (released by
        an owner-routed action *in the source's worker*), so the guard
        provably lands before the second half of the stream.
        """
        import threading

        gate = threading.Event()
        data = rows(60)

        def events():
            yield from data[:10]
            gate.wait(10.0)
            yield from data[10:]

        flow = Flow("mp-feedback")
        flow.generate(SCHEMA, events, name="source").collect("sink")
        fb = self.feedback_for(SCHEMA)
        run = flow.run(
            engine="multiprocess",
            feedback=[(0.05, "sink", fb)],
            actions=[(0.4, lambda plan: gate.set(), "source")],
        )
        source = run.metrics.operator_metrics["source"]
        assert source.feedback_received == 1
        assert source.output_guard_drops > 0
        # Everything after the gate (ts >= 1.0) had the guard applied.
        kept = run.sink("sink").results
        assert not [t for t in kept if t["sensor"] == 1 and t["ts"] >= 1.0]
        assert [t for t in kept if t["ts"] >= 1.0]  # stream did resume

    @pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    )
    def test_multiprocess_actions_require_owner(self):
        """Owner-less actions cannot run anywhere meaningful: each worker
        holds a fork copy of the plan, so the engine rejects them."""
        flow = pipeline_flow()
        with pytest.raises(EngineError, match="owner"):
            flow.run(engine="multiprocess",
                     actions=[(0.1, lambda plan: None)])

    def test_simulated_action_errors_propagate(self):
        flow = pipeline_flow()
        with pytest.raises(RuntimeError, match="injection failed"):
            flow.run(
                engine="simulated",
                actions=[(1.0, lambda plan: (_ for _ in ()).throw(
                    RuntimeError("injection failed")))],
            )

    def test_actions_receive_the_plan(self):
        flow = pipeline_flow()
        seen = []
        flow.run(
            engine="simulated",
            actions=[(1.0, lambda plan: seen.append(plan))],
        )
        assert len(seen) == 1
        assert isinstance(seen[0], QueryPlan)

    def test_feedback_to_unknown_operator_rejected(self):
        flow = pipeline_flow()
        fb = self.feedback_for(SCHEMA)
        with pytest.raises(PlanError, match="no operator"):
            flow.run(feedback=[(0.0, "nonexistent", fb)])

    def test_malformed_feedback_entry_rejected(self):
        flow = pipeline_flow()
        with pytest.raises(FlowError, match="triples"):
            flow.run(feedback=[(0.0, "sink")])

    def test_malformed_actions_entry_rejected(self):
        flow = pipeline_flow()
        # Owner goes third -- a callable in the owner slot means the
        # second slot is not the action.
        with pytest.raises(FlowError, match="not callable"):
            flow.run(actions=[(0.0, "sink", lambda plan: None)])
        with pytest.raises(FlowError, match="not callable"):
            flow.run(actions=[(0.0, "sink")])
        with pytest.raises(FlowError, match="pairs"):
            flow.run(actions=[(0.0,)])
        with pytest.raises(PlanError, match="no operator"):
            flow.run(actions=[(0.0, lambda plan: None, "nonexistent")])


class TestDescribeAndDot:
    def test_describe_delegates_to_plan(self):
        flow = pipeline_flow("described")
        assert flow.describe() == flow.build().describe()

    def test_to_dot_matches_compiled_plan(self):
        """The spec renderer must not drift from QueryPlan.to_dot()."""
        flow = pipeline_flow("dot-eq")
        assert flow.to_dot() == flow.build().to_dot()
        # Non-linear shape too (fan-out, multi-port fan-in).
        flow2 = Flow("dot-eq2")
        a, b = flow2.source(SCHEMA, rows(10)).split(name="dup")
        a.where(lambda t: True, name="wa").union(
            b.where(lambda t: False, name="wb"), name="merge"
        ).collect("sink")
        assert flow2.to_dot() == flow2.build().to_dot()

    def test_to_dot_structure(self):
        dot = pipeline_flow("dotted").to_dot()
        assert dot.startswith('digraph "dotted" {')
        assert dot.rstrip().endswith("}")
        assert '"source" -> "keep" [label="[0]"];' in dot
        # Sources are ellipses, sinks double-bordered.
        assert 'shape=ellipse' in dot
        assert 'peripheries=2' in dot

    def test_to_dot_quotes_names(self):
        flow = Flow('quo"ted')
        flow.source(SCHEMA, rows(2), name="src").collect("sink")
        dot = flow.to_dot()
        assert 'digraph "quo\\"ted" {' in dot


class TestAggSpecHelpers:
    def test_helpers_build_specs(self):
        assert avg("value") == AggSpec("avg", "value")
        assert count() == AggSpec("count", None)

    def test_shadowed_builtins(self):
        from repro.api import aggregates
        assert aggregates.sum("v") == AggSpec("sum", "v")
        assert aggregates.max("v") == AggSpec("max", "v")
        assert aggregates.min("v") == AggSpec("min", "v")
