"""Unit tests for embedded punctuation and punctuation schemes."""

import pytest

from repro.errors import PatternError
from repro.punctuation import (
    Pattern,
    ProgressPunctuator,
    Punctuation,
    PunctuationScheme,
)
from repro.stream import Attribute, Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema([
        Attribute("timestamp", "timestamp", progressing=True),
        Attribute("datavalue", "float"),
    ])


class TestPunctuation:
    def test_up_to_covers_earlier_tuples(self, schema):
        p = Punctuation.up_to(schema, "timestamp", 100.0)
        assert p.covers(StreamTuple(schema, (99.0, 1.0)))
        assert p.covers(StreamTuple(schema, (100.0, 1.0)))
        assert not p.covers(StreamTuple(schema, (101.0, 1.0)))

    def test_up_to_exclusive(self, schema):
        p = Punctuation.up_to(schema, "timestamp", 100.0, inclusive=False)
        assert not p.covers(StreamTuple(schema, (100.0, 1.0)))

    def test_group_done(self, schema):
        p = Punctuation.group_done(schema, {"datavalue": 4})
        assert p.covers(StreamTuple(schema, (1.0, 4)))
        assert not p.covers(StreamTuple(schema, (1.0, 5)))

    def test_is_punctuation_flag(self, schema):
        assert Punctuation.up_to(schema, "timestamp", 1.0).is_punctuation

    def test_subsumes(self, schema):
        late = Punctuation.up_to(schema, "timestamp", 100.0)
        early = Punctuation.up_to(schema, "timestamp", 50.0)
        assert late.subsumes(early)
        assert not early.subsumes(late)

    def test_rebound_checks_arity(self, schema):
        p = Punctuation.up_to(schema, "timestamp", 1.0)
        with pytest.raises(PatternError):
            p.rebound(Schema.of("only_one"))

    def test_equality_and_hash(self, schema):
        a = Punctuation.up_to(schema, "timestamp", 1.0)
        b = Punctuation.up_to(schema, "timestamp", 1.0)
        assert a == b and len({a, b}) == 1

    def test_immutable(self, schema):
        p = Punctuation.up_to(schema, "timestamp", 1.0)
        with pytest.raises(AttributeError):
            p.pattern = None


class TestPunctuationScheme:
    def test_defaults_to_progressing_attributes(self, schema):
        scheme = PunctuationScheme(schema)
        assert scheme.is_delimited("timestamp")
        assert not scheme.is_delimited("datavalue")

    def test_explicit_delimited_list(self, schema):
        scheme = PunctuationScheme(schema, delimited=["datavalue"])
        assert scheme.is_delimited("datavalue")
        assert not scheme.is_delimited("timestamp")

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(PatternError):
            PunctuationScheme(schema, delimited=["nope"])

    def test_supports_feedback_on_delimited_attr(self, schema):
        scheme = PunctuationScheme(schema)
        # "Do not show bids prior to 1:00 pm" -- supportable.
        assert scheme.supports(Pattern.from_mapping(schema, {"timestamp": 100.0}))

    def test_rejects_feedback_on_undelimited_attr(self, schema):
        scheme = PunctuationScheme(schema)
        # "Don't show bids more than $1.00" -- leaves state forever.
        assert not scheme.supports(
            Pattern.from_mapping(schema, {"datavalue": 1.0})
        )

    def test_fully_supports_requires_all_delimited(self, schema):
        scheme = PunctuationScheme(schema)
        mixed = Pattern.from_mapping(
            schema, {"timestamp": 1.0, "datavalue": 2.0}
        )
        assert scheme.supports(mixed)
        assert not scheme.fully_supports(mixed)

    def test_all_wildcard_supported(self, schema):
        scheme = PunctuationScheme(schema)
        assert scheme.supports(Pattern.all_wildcards(2, schema=schema))


class TestProgressPunctuator:
    def test_emits_on_interval_boundary(self, schema):
        pp = ProgressPunctuator(schema, "timestamp", interval=10.0)
        assert pp.observe(5.0) == []
        due = pp.observe(10.0)
        assert len(due) == 1
        assert not due[0].covers(StreamTuple(schema, (10.0, 0)))
        assert due[0].covers(StreamTuple(schema, (9.9, 0)))

    def test_burst_crosses_multiple_boundaries(self, schema):
        pp = ProgressPunctuator(schema, "timestamp", interval=10.0)
        due = pp.observe(35.0)
        assert len(due) == 3  # boundaries 10, 20, 30

    def test_grace_delays_emission(self, schema):
        pp = ProgressPunctuator(schema, "timestamp", interval=10.0, grace=5.0)
        assert pp.observe(12.0) == []
        assert len(pp.observe(15.0)) == 1

    def test_watermark_tracks_max_not_last(self, schema):
        pp = ProgressPunctuator(schema, "timestamp", interval=10.0)
        pp.observe(9.0)
        pp.observe(3.0)  # disorder: late tuple does not regress the watermark
        assert pp.high_watermark == 9.0

    def test_final_covers_everything(self, schema):
        pp = ProgressPunctuator(schema, "timestamp", interval=10.0)
        final = pp.final()
        assert final.covers(StreamTuple(schema, (1e9, 42)))

    def test_bad_parameters_rejected(self, schema):
        with pytest.raises(PatternError):
            ProgressPunctuator(schema, "timestamp", interval=0)
        with pytest.raises(PatternError):
            ProgressPunctuator(schema, "timestamp", interval=1, grace=-1)
