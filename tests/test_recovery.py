"""Kill-and-resume recovery: crash injection on every engine.

The acceptance property for durable feeds: a run that crashes mid-stream
and is resumed with ``flow.run(recover_from=...)`` produces, under
exactly-once ingestion, byte-identical sink output to an uninterrupted
run -- on every engine.  Under at-least-once ingestion the recovered
output is a superset (replayed deliveries may duplicate).

Crash injection is engine-specific: in-process engines (simulated,
threaded, asyncio) blow up a predicate mid-stream; the multiprocess
engine hard-kills a worker process (``os._exit``), exercising the
dead-worker detection path.  Crash points are drawn at seeded-random
epochs so the recovered epoch varies across positions in the stream.
"""

from __future__ import annotations

import os
import random
from collections import Counter

import pytest

from repro import Flow, Schema, StreamTuple
from repro.durability import (
    CheckpointStore,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    ReplayableSource,
    as_checkpoint_store,
)
from repro.engine import fork_available
from repro.errors import DurabilityError

SCHEMA = Schema([
    ("ts", "timestamp", True), ("sensor", "int"), ("value", "float"),
])

N = 200


def rows(n=N):
    return [
        (i * 0.1, StreamTuple(SCHEMA, (i * 0.1, i % 3, float(i % 50))))
        for i in range(n)
    ]


def linear_flow(bomb_at=None, *, hard_kill=False, calls=None):
    """source -> punctuate -> where -> sink, with optional crash bomb."""
    flow = Flow("recovery")
    calls = calls if calls is not None else {"n": 0}

    def pred(t):
        if bomb_at is not None:
            calls["n"] += 1
            if calls["n"] >= bomb_at:
                if hard_kill:
                    os._exit(1)
                raise RuntimeError("injected crash")
        return t["value"] >= 0.0

    (flow.source(SCHEMA, rows(), name="source")
         .punctuate(on="ts", every=2.0)
         .where(pred, name="stage")
         .collect("sink"))
    return flow


def union_flow(bomb_at=None, *, calls=None):
    """Two sources through a union: exercises marker alignment."""
    flow = Flow("recovery-union")
    calls = calls if calls is not None else {"n": 0}
    half = rows(120)
    other = [
        (i * 0.1 + 0.05,
         StreamTuple(SCHEMA, (i * 0.1 + 0.05, i % 3, float(i + 1000))))
        for i in range(120)
    ]

    def pred(t):
        if bomb_at is not None:
            calls["n"] += 1
            if calls["n"] >= bomb_at:
                raise RuntimeError("injected crash")
        return True

    a = flow.source(SCHEMA, half, name="a").punctuate(on="ts", every=2.0)
    b = flow.source(SCHEMA, other, name="b").punctuate(on="ts", every=2.0)
    a.union(b, name="merge").where(pred, name="stage").collect("sink")
    return flow


def values(result, name="sink"):
    return [tuple(t.values) for t in result.sink(name).results]


ENGINES = ["simulated", "threaded", "asyncio"]

# Seeded so the crash epochs vary across the stream but stay
# reproducible run to run.
CRASH_POINTS = sorted(random.Random(7).sample(range(40, 190), 3))


@pytest.mark.parametrize("engine", ENGINES)
class TestKillAndResume:
    @pytest.mark.parametrize("bomb_at", CRASH_POINTS)
    def test_exactly_once_parity(self, engine, bomb_at):
        expect = values(linear_flow().run(engine))
        store = MemoryCheckpointStore()
        with pytest.raises(Exception):
            linear_flow(bomb_at=bomb_at).run(
                engine, checkpoint_every=50, checkpoint_store=store
            )
        recovered = linear_flow().run(
            engine, recover_from=store, checkpoint_every=50
        )
        assert values(recovered) == expect

    def test_at_least_once_is_a_superset(self, engine):
        expect = Counter(values(linear_flow().run(engine)))
        store = MemoryCheckpointStore()
        with pytest.raises(Exception):
            linear_flow(bomb_at=120).run(
                engine, checkpoint_every=50, checkpoint_store=store
            )
        recovered = linear_flow().run(
            engine, recover_from=store, checkpoint_every=50,
            ingestion_policy="at-least-once",
        )
        got = Counter(values(recovered))
        assert all(got[k] >= n for k, n in expect.items())

    def test_union_alignment_parity(self, engine):
        expect = Counter(values(union_flow().run(engine)))
        store = MemoryCheckpointStore()
        with pytest.raises(Exception):
            union_flow(bomb_at=150).run(
                engine, checkpoint_every=40, checkpoint_store=store
            )
        recovered = union_flow().run(
            engine, recover_from=store, checkpoint_every=40
        )
        assert Counter(values(recovered)) == expect

    def test_recovered_epoch_reported(self, engine):
        store = MemoryCheckpointStore()
        with pytest.raises(Exception):
            linear_flow(bomb_at=150).run(
                engine, checkpoint_every=50, checkpoint_store=store
            )
        result = linear_flow().run(
            engine, recover_from=store, checkpoint_every=50
        )
        assert result.checkpoint_store is store
        assert result.metrics.checkpoint_epochs >= 1


def fusible_flow(bomb_at=None, *, calls=None):
    """source -> where -> extend -> where: the middle three stages fuse
    under ``optimize=True``, so the crash fires *inside* a composite."""
    flow = Flow("recovery-fused")
    calls = calls if calls is not None else {"n": 0}

    def pred(t):
        if bomb_at is not None:
            calls["n"] += 1
            if calls["n"] >= bomb_at:
                raise RuntimeError("injected crash")
        return t["sensor"] != 2

    (flow.source(SCHEMA, rows(), name="source")
         .punctuate(on="ts", every=2.0)
         .where(pred, name="keep")
         .extend([("double", "float")], lambda t: (t["value"] * 2,),
                 name="ext")
         .where(lambda t: t["double"] >= 0.0, name="clip")
         .collect("sink"))
    return flow


@pytest.mark.parametrize("engine", ENGINES)
class TestOptimizedRecovery:
    """``optimize=True`` composes with ``checkpoint_every=`` end to end:
    checkpoint cuts fall at composite boundaries (internal shims never
    buffer), and recovery addresses the composite by its fused name."""

    @pytest.mark.parametrize("bomb_at", CRASH_POINTS)
    def test_exactly_once_parity_with_fusion(self, engine, bomb_at):
        expect = values(fusible_flow().run(engine))
        assert expect == values(fusible_flow().run(engine, optimize=True))
        store = MemoryCheckpointStore()
        with pytest.raises(Exception):
            fusible_flow(bomb_at=bomb_at).run(
                engine, checkpoint_every=50, checkpoint_store=store,
                optimize=True,
            )
        recovered = fusible_flow().run(
            engine, recover_from=store, checkpoint_every=50,
            optimize=True,
        )
        assert values(recovered) == expect

    def test_recovery_without_optimize_from_optimized_store(self, engine):
        """The store keys state by operator name; a plain re-run cannot
        consume epochs written under the fused name, so resuming must
        keep ``optimize=True``.  This pins the documented contract."""
        store = MemoryCheckpointStore()
        with pytest.raises(Exception):
            fusible_flow(bomb_at=120).run(
                engine, checkpoint_every=50, checkpoint_store=store,
                optimize=True,
            )
        assert store.has_state(1, "keep+ext+clip")
        assert not store.has_state(1, "keep")


@pytest.mark.skipif(
    not fork_available(), reason="multiprocess engine requires fork"
)
class TestMultiprocessRecovery:
    def test_hard_killed_worker_then_resume(self, tmp_path):
        expect = values(linear_flow().run("multiprocess"))
        store_dir = str(tmp_path / "ckpt")
        with pytest.raises(Exception):
            linear_flow(bomb_at=120, hard_kill=True).run(
                "multiprocess", checkpoint_every=50,
                checkpoint_store=store_dir,
            )
        recovered = linear_flow().run(
            "multiprocess", recover_from=store_dir, checkpoint_every=50
        )
        assert values(recovered) == expect
        assert recovered.metrics.checkpoint_epochs >= 1

    def test_memory_store_is_rejected(self):
        with pytest.raises(DurabilityError):
            linear_flow().run(
                "multiprocess", checkpoint_every=50,
                checkpoint_store=MemoryCheckpointStore(),
            )


class TestUninterruptedRuns:
    """Checkpointing on, no crash: output must not change at all."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_checkpointing_is_transparent(self, engine):
        expect = values(linear_flow().run(engine))
        result = linear_flow().run(engine, checkpoint_every=50)
        assert values(result) == expect
        assert result.metrics.checkpoint_epochs == 4
        assert result.metrics.checkpoint_bytes > 0

    def test_resume_from_a_completed_store_changes_nothing(self):
        expect = values(linear_flow().run())
        store = MemoryCheckpointStore()
        linear_flow().run(checkpoint_every=50, checkpoint_store=store)
        recovered = linear_flow().run(recover_from=store)
        assert values(recovered) == expect

    def test_operator_snapshot_metrics_charged(self):
        result = linear_flow().run(checkpoint_every=50)
        stage = result.metrics.operator_metrics["stage"]
        assert stage.checkpoints == 4
        assert stage.snapshot_bytes > 0


class TestDirectoryStore:
    def test_round_trip_and_reopen(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "s")
        store.record_state(1, "op", b"blob")
        store.record_offset(1, "src", 50)
        store.record_finished("src", 210)
        writer = store.delivery_writer("sink")
        writer.append((0.5, "row"))
        writer.flush()
        reopened = DirectoryCheckpointStore(tmp_path / "s")
        assert reopened.load_state(1, "op") == b"blob"
        assert reopened.load_offset(1, "src") == 50
        assert reopened.load_finished("src") == 210
        assert reopened.read_delivery_log("sink") == [(0.5, "row")]
        assert reopened.epochs() == [1]

    def test_torn_delivery_tail_is_tolerated(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "s")
        writer = store.delivery_writer("sink")
        writer.append((0.1, "a"))
        writer.flush()
        log_path = next((tmp_path / "s").glob("delivery-*.log"))
        whole = log_path.read_bytes()
        log_path.write_bytes(whole + b"\x80\x04torn")
        assert store.read_delivery_log("sink") == [(0.1, "a")]

    def test_as_checkpoint_store_coercion(self, tmp_path):
        store = as_checkpoint_store(str(tmp_path / "s"))
        assert isinstance(store, DirectoryCheckpointStore)
        assert as_checkpoint_store(store) is store
        assert as_checkpoint_store(None) is None
        assert isinstance(store, CheckpointStore)
        assert store.shareable_across_processes


class TestReplayableSource:
    def test_factory_is_replayable(self):
        def timeline():
            for i in range(10):
                yield i * 0.1, StreamTuple(
                    SCHEMA, (i * 0.1, i % 3, float(i))
                )
        source = ReplayableSource("src", SCHEMA, timeline)
        first = list(source.events())
        second = list(source.events())
        assert [e[1].values for e in first] == [
            e[1].values for e in second
        ]

    def test_bare_generator_is_rejected(self):
        gen = (x for x in ())
        with pytest.raises(DurabilityError):
            ReplayableSource("src", SCHEMA, gen)


class TestRunOptionValidation:
    def test_bad_policy(self):
        with pytest.raises(DurabilityError):
            linear_flow().run(checkpoint_every=50, ingestion_policy="maybe")

    def test_bad_interval(self):
        with pytest.raises(DurabilityError):
            linear_flow().run(checkpoint_every=0)


class TestRendering:
    def test_describe_marks_checkpoint_capable_stages(self):
        flow = linear_flow()
        annotated = flow.describe(checkpoints=True)
        assert "CollectSink ⌖" in annotated
        assert flow.describe() == linear_flow().describe()
        assert "⌖" not in flow.describe()

    def test_plan_describe_and_dot_match_flow(self):
        flow = linear_flow()
        plan = flow.build()
        assert plan.describe(checkpoints=True) == flow.describe(
            checkpoints=True
        )
        assert "CollectSink ⌖" in plan.to_dot(checkpoints=True)
        assert "⌖" not in plan.to_dot()
