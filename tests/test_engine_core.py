"""Engine-core parity: every engine runs the shared RuntimeCore mechanism.

The same small plans run on the Simulator (event heap + virtual clock),
the ThreadedRuntime (threads + condition waits) and the AsyncioEngine
(coroutines + asyncio.Condition waits); per-operator tuple, punctuation
and feedback counts must be identical -- the scheduling policy may
reorder work, but the mechanism (control before data, guards, completion,
finish) decides every count.

Plans are built so counts are schedule-independent: feedback is injected
before any data flows (sink ``on_start``) and relaying is disabled at the
exploiting operator, so no guard installation races an upstream thread.

Also here: direct unit tests for the simulator's round-robin port
selection (``_next_port_with_work``) and ``DataQueue.stamp_ready``.
"""

import time

import pytest

from repro.core import FeedbackPunctuation
from repro.engine import (
    AsyncioEngine,
    MultiprocessEngine,
    QueryPlan,
    Simulator,
    ThreadedRuntime,
    fork_available,
)
from repro.operators import (
    CollectSink,
    ListSource,
    PassThrough,
    Project,
    Select,
    SymmetricHashJoin,
    Union,
)
from repro.punctuation import Pattern, ProgressPunctuator, Punctuation
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("seg", "int"), ("v", "float")])

ENGINES = [
    pytest.param(lambda plan: Simulator(plan), id="simulator"),
    pytest.param(
        lambda plan: ThreadedRuntime(plan, timeout=30.0), id="threaded"
    ),
    pytest.param(
        lambda plan: AsyncioEngine(plan, timeout=30.0), id="asyncio"
    ),
    pytest.param(
        lambda plan: MultiprocessEngine(plan, timeout=60.0),
        id="multiprocess",
        marks=pytest.mark.skipif(
            not fork_available(), reason="fork start method unavailable"
        ),
    ),
]


def counts(plan: QueryPlan) -> dict[str, tuple[int, int, int, int]]:
    """Per-operator (tuples_out, punctuations_out, feedback_received,
    input_guard_drops) -- the parity signature of a finished run."""
    return {
        op.name: (
            op.metrics.tuples_out,
            op.metrics.punctuations_out,
            op.metrics.feedback_received,
            op.metrics.input_guard_drops,
        )
        for op in plan
    }


def inject_on_start(sink, feedback):
    """Queue ``feedback`` from ``sink`` before any data flows.

    ``on_start`` runs in both engines before sources emit (and before
    threads start), so the exploiting producer is guaranteed to drain the
    message ahead of its first data page -- the property that makes
    cross-engine counts deterministic.
    """
    original = sink.on_start

    def patched():
        original()
        sink.inject_feedback(feedback)

    sink.on_start = patched


# -- shared parity plans -------------------------------------------------------


def build_guarded_select_chain():
    """source -> passthrough -> select -> project -> sink, with assumed
    feedback from the sink guarding the projection's input."""
    punctuator = ProgressPunctuator(SCHEMA, "ts", interval=10.0)
    timeline = []
    for i in range(150):
        ts = i * 0.5
        timeline.append((0.0, StreamTuple(SCHEMA, (ts, i % 5, float(i)))))
        for punct in punctuator.observe(ts):
            timeline.append((0.0, punct))
    timeline.append((0.0, punctuator.final()))

    plan = QueryPlan("guarded-chain")
    source = ListSource("src", SCHEMA, timeline)
    ingest = PassThrough("ingest", SCHEMA)
    keep = Select("keep", SCHEMA, lambda t: t["seg"] != 4)
    shape = Project("shape", SCHEMA, ("ts", "seg"))
    sink = CollectSink("sink", shape.output_schema)
    plan.add(source)
    plan.chain(source, ingest, keep, shape, sink)
    # Counts must not depend on thread interleaving: the projection
    # exploits (input guard via exact back-mapping) but does not relay.
    shape.relay_enabled = False
    inject_on_start(
        sink,
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(shape.output_schema, {"seg": 2})
        ),
    )
    return plan


def build_feedback_join():
    """Binary symmetric hash join with assumed feedback from the sink."""
    left_schema = Schema([("k", "int"), ("l", "int")])
    right_schema = Schema([("k", "int"), ("r", "int")])
    left_timeline = [
        (0.0, StreamTuple(left_schema, (i % 7, i))) for i in range(80)
    ]
    left_timeline.append(
        (0.0, Punctuation(Pattern.all_wildcards(2), source="left"))
    )
    right_timeline = [
        (0.0, StreamTuple(right_schema, (i % 5, i))) for i in range(60)
    ]
    right_timeline.append(
        (0.0, Punctuation(Pattern.all_wildcards(2), source="right"))
    )

    plan = QueryPlan("feedback-join")
    left = ListSource("left", left_schema, left_timeline)
    right = ListSource("right", right_schema, right_timeline)
    join = SymmetricHashJoin(
        "join", left_schema, right_schema, on=[("k", "k")]
    )
    sink = CollectSink("sink", join.output_schema)
    for op in (left, right, join, sink):
        plan.add(op)
    plan.connect(left, join, port=0)
    plan.connect(right, join, port=1)
    plan.connect(join, sink)
    join.relay_enabled = False  # keep source counts schedule-independent
    inject_on_start(
        sink,
        FeedbackPunctuation.assumed(
            Pattern.from_mapping(join.output_schema, {"k": 3})
        ),
    )
    return plan


def build_source_only():
    """A bare source draining straight into a sink."""
    punctuator = ProgressPunctuator(SCHEMA, "ts", interval=5.0)
    timeline = []
    for i in range(40):
        ts = float(i)
        timeline.append((0.0, StreamTuple(SCHEMA, (ts, i % 3, float(i)))))
        for punct in punctuator.observe(ts):
            timeline.append((0.0, punct))
    timeline.append((0.0, punctuator.final()))
    plan = QueryPlan("source-only")
    source = ListSource("src", SCHEMA, timeline)
    sink = CollectSink("sink", SCHEMA, keep_punctuation=True)
    plan.add(source)
    plan.chain(source, sink)
    return plan


PLANS = [
    pytest.param(build_guarded_select_chain, id="guarded-select-chain"),
    pytest.param(build_feedback_join, id="binary-join-feedback"),
    pytest.param(build_source_only, id="source-only"),
]


class TestEngineParity:
    @pytest.mark.parametrize("build", PLANS)
    def test_identical_counts_across_engines(self, build):
        plan_sim = build()
        Simulator(plan_sim).run()
        plan_thr = build()
        ThreadedRuntime(plan_thr, timeout=30.0).run()
        plan_aio = build()
        AsyncioEngine(plan_aio, timeout=30.0).run()
        assert counts(plan_sim) == counts(plan_thr)
        assert counts(plan_sim) == counts(plan_aio)
        if fork_available():
            plan_mp = build()
            MultiprocessEngine(plan_mp, timeout=60.0).run()
            assert counts(plan_sim) == counts(plan_mp)

    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_guarded_chain_exploits_feedback(self, make_engine):
        plan = build_guarded_select_chain()
        make_engine(plan).run()
        shape = plan.operator("shape")
        sink = plan.operator("sink")
        assert shape.metrics.feedback_received == 1
        assert shape.metrics.input_guard_drops > 0
        assert not [r for r in sink.results if r["seg"] == 2]

    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_join_results_match_reference(self, make_engine):
        plan = build_feedback_join()
        make_engine(plan).run()
        sink = plan.operator("sink")
        # Inner join on k with k=3 assumed away: reference by brute force.
        expected = sorted(
            (i % 7, i, j)
            for i in range(80)
            for j in range(60)
            if i % 7 == j % 5 and i % 7 != 3
        )
        got = sorted((r["k"], r["l"], r["r"]) for r in sink.results)
        assert got == expected

    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_pages_flow_through_batch_path(self, make_engine):
        plan = build_guarded_select_chain()
        make_engine(plan).run()
        keep = plan.operator("keep")
        assert keep.metrics.pages_in > 0
        # Zero-cost operators take the batch fast path on every engine.
        assert keep.metrics.pages_batched == keep.metrics.pages_in


class TestThreadedControlLatency:
    """The threaded runtime honours control_latency (it used to ignore it)."""

    def _feedback(self):
        return FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"seg": 1})
        )

    def test_in_flight_feedback_to_exhausted_source_drops_on_all_engines(self):
        """Messages that have not arrived when the target finishes are
        dropped -- the same rule on every engine (the stream is over)."""
        makers = [
            lambda p: Simulator(p, control_latency=60.0),
            lambda p: ThreadedRuntime(p, timeout=30.0, control_latency=60.0),
            lambda p: AsyncioEngine(p, timeout=30.0, control_latency=60.0),
        ]
        if fork_available():
            makers.append(
                lambda p: MultiprocessEngine(
                    p, timeout=60.0, control_latency=60.0
                )
            )
        for make in makers:
            plan = QueryPlan("latency-drop")
            source = ListSource(
                "src", SCHEMA,
                [(0.0, StreamTuple(SCHEMA, (float(i), i % 3, 0.0)))
                 for i in range(10)],
            )
            sink = CollectSink("sink", SCHEMA)
            plan.add(source)
            plan.chain(source, sink)
            inject_on_start(sink, self._feedback())
            make(plan).run()
            assert source.metrics.feedback_received == 0
            assert len(source.output_guards) == 0
            assert source.metrics.tuples_out == 10

    def test_feedback_delivered_once_arrival_time_passes(self):
        """A message in flight for 50 ms lands mid-stream: early matching
        tuples escape, later ones are suppressed by the installed guard."""
        from repro.operators import GeneratorSource

        def slow_events():
            for i in range(20):
                time.sleep(0.01)  # ~200 ms of stream against 50 ms latency
                yield 0.0, StreamTuple(SCHEMA, (float(i), i % 2, 0.0))

        plan = QueryPlan("latency-mid-stream")
        source = GeneratorSource("src", SCHEMA, slow_events)
        sink = CollectSink("sink", SCHEMA)
        plan.add(source)
        plan.chain(source, sink, page_size=1)
        inject_on_start(sink, self._feedback())
        ThreadedRuntime(plan, timeout=30.0, control_latency=0.05).run()
        assert source.metrics.feedback_received == 1
        emitted_matching = [r for r in sink.results if r["seg"] == 1]
        # Delivery engaged mid-stream: the guard suppressed at least one
        # later matching tuple.  (No lower bound on early escapes -- a
        # scheduler stall before the first matching tuple may legitimately
        # leave none, and that must not flake CI.)
        assert len(emitted_matching) < 10
        assert source.metrics.output_guard_drops > 0


# -- round-robin port selection ------------------------------------------------


def _stamped(queue, values, at):
    for v in values:
        queue.put(StreamTuple(SCHEMA, (0.0, 0, float(v))))
    queue.flush()
    queue.stamp_ready(at)


class TestNextPortWithWork:
    def _union_sim(self):
        plan = QueryPlan("rr")
        a = ListSource("a", SCHEMA, [])
        b = ListSource("b", SCHEMA, [])
        union = Union("union", SCHEMA, arity=2)
        sink = CollectSink("sink", SCHEMA)
        for op in (a, b, union, sink):
            plan.add(op)
        plan.connect(a, union, port=0, page_size=1)
        plan.connect(b, union, port=1, page_size=1)
        plan.connect(union, sink, page_size=1)
        sim = Simulator(plan)
        sim._rr_port[union.name] = 0
        return sim, union

    def test_equal_availability_alternates(self):
        sim, union = self._union_sim()
        _stamped(union.inputs[0].queue, [1, 2], at=0.0)
        _stamped(union.inputs[1].queue, [3, 4], at=0.0)
        picks = []
        for _ in range(4):
            port = sim._next_port_with_work(union)
            picks.append(port.index)
            port.queue.get_page()
        assert picks == [0, 1, 0, 1]

    def test_earliest_availability_wins_over_rotation(self):
        sim, union = self._union_sim()
        _stamped(union.inputs[0].queue, [1], at=5.0)
        _stamped(union.inputs[1].queue, [2], at=1.0)
        port = sim._next_port_with_work(union)
        assert port.index == 1  # later page despite rotation pointing at 0

    def test_no_ready_pages_returns_none(self):
        sim, union = self._union_sim()
        assert sim._next_port_with_work(union) is None


# -- DataQueue.stamp_ready ------------------------------------------------------


class TestStampReady:
    def _queue(self):
        from repro.stream.queues import DataQueue

        return DataQueue("t", page_size=2)

    def test_stamps_only_fresh_pages(self):
        q = self._queue()
        q.put(StreamTuple(SCHEMA, (0.0, 0, 1.0)))
        q.put(StreamTuple(SCHEMA, (0.0, 0, 2.0)))  # completes page 1
        assert q.stamp_ready(3.0) is True
        q.put(StreamTuple(SCHEMA, (0.0, 0, 3.0)))
        q.put(StreamTuple(SCHEMA, (0.0, 0, 4.0)))  # completes page 2
        assert q.stamp_ready(7.0) is True
        first, second = q.get_page(), q.get_page()
        assert first.available_at == 3.0   # earlier stamp untouched
        assert second.available_at == 7.0

    def test_no_fresh_pages_returns_false(self):
        q = self._queue()
        assert q.stamp_ready(1.0) is False
        q.put(StreamTuple(SCHEMA, (0.0, 0, 1.0)))  # open page only
        assert q.stamp_ready(1.0) is False

    def test_stops_scanning_at_first_stamped_page(self):
        q = self._queue()
        for v in range(4):  # two complete pages
            q.put(StreamTuple(SCHEMA, (0.0, 0, float(v))))
        assert q.stamp_ready(2.0) is True
        # Both were fresh, so both carry the same stamp.
        assert [p.available_at for p in (q.get_page(), q.get_page())] == [
            2.0, 2.0,
        ]
