"""Unit tests for pages and data queues, incl. flush-on-punctuation."""

import pytest

from repro.errors import EngineError
from repro.punctuation import Punctuation
from repro.stream import DataQueue, Page, Schema, StreamTuple


@pytest.fixture
def schema():
    return Schema.of("ts", "v")


def tup(schema, ts, v=0):
    return StreamTuple(schema, (ts, v))


def punct(schema, ts):
    return Punctuation.up_to(schema, "ts", ts)


class TestPage:
    def test_fills_to_capacity(self, schema):
        page = Page(capacity=2)
        assert page.append(tup(schema, 1)) is False
        assert page.append(tup(schema, 2)) is True
        assert page.complete

    def test_punctuation_completes_page_immediately(self, schema):
        page = Page(capacity=100)
        page.append(tup(schema, 1))
        assert page.append(punct(schema, 1)) is True

    def test_append_after_complete_raises(self, schema):
        page = Page(capacity=1)
        page.append(tup(schema, 1))
        with pytest.raises(EngineError):
            page.append(tup(schema, 2))

    def test_seal_marks_complete(self, schema):
        page = Page(capacity=10)
        page.append(tup(schema, 1))
        page.seal()
        assert page.complete

    def test_counts(self, schema):
        page = Page(capacity=10)
        page.append(tup(schema, 1))
        page.append(tup(schema, 2))
        page.append(punct(schema, 2))
        assert page.tuple_count() == 2
        assert page.punctuation_count() == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(EngineError):
            Page(capacity=0)


class TestDataQueue:
    def test_put_until_page_ready(self, schema):
        q = DataQueue(page_size=3)
        assert q.put(tup(schema, 1)) is False
        assert q.put(tup(schema, 2)) is False
        assert q.put(tup(schema, 3)) is True
        assert q.ready_pages == 1

    def test_punctuation_flushes_partial_page(self, schema):
        q = DataQueue(page_size=100)
        q.put(tup(schema, 1))
        assert q.put(punct(schema, 1)) is True
        page = q.get_page()
        assert page is not None and len(page) == 2

    def test_get_page_empty_returns_none(self):
        assert DataQueue().get_page() is None

    def test_flush_seals_open_page(self, schema):
        q = DataQueue(page_size=10)
        q.put(tup(schema, 1))
        assert q.flush() is True
        assert q.ready_pages == 1

    def test_flush_empty_is_noop(self):
        assert DataQueue().flush() is False

    def test_close_flushes_and_marks(self, schema):
        q = DataQueue(page_size=10)
        q.put(tup(schema, 1))
        q.close()
        assert q.closed
        assert q.ready_pages == 1
        assert not q.exhausted
        q.get_page()
        assert q.exhausted

    def test_drain_elements_preserves_order(self, schema):
        q = DataQueue(page_size=2)
        elements = [tup(schema, i) for i in range(5)]
        for e in elements:
            q.put(e)
        q.flush()
        assert list(q.drain_elements()) == elements

    def test_pending_elements_counts_open_page(self, schema):
        q = DataQueue(page_size=10)
        q.put(tup(schema, 1))
        q.put(tup(schema, 2))
        assert q.pending_elements() == 2

    def test_counters(self, schema):
        q = DataQueue(page_size=2)
        for i in range(4):
            q.put(tup(schema, i))
        assert q.elements_enqueued == 4
        assert q.pages_flushed == 2
