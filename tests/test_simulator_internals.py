"""Deeper simulator semantics: availability stamps, control priority,
back-pressure-free timing, and multi-port fairness."""

import pytest

from repro.core import FeedbackPunctuation
from repro.engine import QueryPlan, Simulator
from repro.operators import (
    CollectSink,
    ListSource,
    PassThrough,
    Select,
    Union,
)
from repro.punctuation import Pattern
from repro.stream import Schema, StreamTuple

SCHEMA = Schema([("ts", "timestamp", True), ("v", "int")])


def tup(ts, v=0):
    return StreamTuple(SCHEMA, (ts, v))


class TestAvailabilityStamps:
    def test_slow_producer_delays_consumer_observation(self):
        """A consumer never observes output before the producer finished it."""
        plan = QueryPlan("slow-producer")
        source = ListSource("src", SCHEMA, [(0.0, tup(0.0, i)) for i in range(8)])
        slow = PassThrough("slow", SCHEMA, tuple_cost=5.0)
        sink = CollectSink("sink", SCHEMA)
        plan.add(source)
        plan.connect(source, slow, page_size=2)
        plan.connect(slow, sink, page_size=2)
        Simulator(plan).run()
        arrivals = [t for t, _ in sink.arrivals]
        # Tuple i finished at slow at 5*(i+1); pages of 2 ship in pairs.
        assert arrivals[0] >= 10.0 - 1e-9   # first page: tuples 0,1
        assert arrivals[-1] >= 40.0 - 1e-9  # last page: tuples 6,7

    def test_fast_consumer_of_two_speed_producers_orders_by_availability(self):
        """UNION pulls whichever input's page became available first."""
        plan = QueryPlan("two-speeds")
        fast = ListSource("fast", SCHEMA, [(float(i), tup(float(i), 1)) for i in range(6)])
        slow_src = ListSource("slow_src", SCHEMA, [(0.0, tup(100.0, 2)) for _ in range(3)])
        slow = PassThrough("slow", SCHEMA, tuple_cost=4.0)
        union = Union("union", SCHEMA, arity=2)
        sink = CollectSink("sink", SCHEMA)
        for op in (fast, slow_src, slow, union, sink):
            plan.add(op)
        plan.connect(fast, union, port=0, page_size=1)
        plan.connect(slow_src, slow, page_size=1)
        plan.connect(slow, union, port=1, page_size=1)
        plan.connect(union, sink, page_size=1)
        Simulator(plan).run()
        # Fast tuples (v=1) at times 0..5 interleave with slow ones (v=2)
        # finishing at 4, 8, 12 -- sink order must respect availability.
        seq = [(t, tup_["v"]) for t, tup_ in sink.arrivals]
        times = [t for t, _ in seq]
        assert times == sorted(times)
        first_slow = next(t for t, v in seq if v == 2)
        assert first_slow >= 4.0 - 1e-9


class TestControlPriority:
    def test_feedback_beats_buffered_data(self):
        """Feedback arriving while pages are queued applies before them.

        NiagaraST: "control messages ... are given high priority and
        processed before pending tuples."  A guarded tuple sitting in the
        queue when feedback arrives must be dropped, not processed.
        """
        plan = QueryPlan("priority")
        # All data arrives at t=0; the consumer is made slow so pages queue.
        source = ListSource(
            "src", SCHEMA, [(0.0, tup(0.0, i)) for i in range(20)]
        )
        work = Select("work", SCHEMA, lambda t: True, tuple_cost=1.0)
        sink = CollectSink("sink", SCHEMA)
        plan.add(source)
        plan.connect(source, work, page_size=1)
        plan.connect(work, sink, page_size=1)
        simulator = Simulator(plan)
        fb = FeedbackPunctuation.assumed(
            Pattern.from_mapping(SCHEMA, {"v": 15})
        )
        # Injected at t=2: tuple 15 is still ~13 pages deep in the queue.
        simulator.at(2.0, lambda: sink.inject_feedback(fb))
        simulator.run()
        assert not [r for r in sink.results if r["v"] == 15]
        assert work.metrics.input_guard_drops == 1
        # The guard saved the full tuple cost.
        assert work.metrics.busy_time == pytest.approx(19.0)


class TestRoundRobinFairness:
    def test_equal_availability_alternates_ports(self):
        plan = QueryPlan("fair")
        a = ListSource("a", SCHEMA, [(0.0, tup(0.0, 1)) for _ in range(4)])
        b = ListSource("b", SCHEMA, [(0.0, tup(0.0, 2)) for _ in range(4)])
        union = Union("union", SCHEMA, arity=2)
        sink = CollectSink("sink", SCHEMA)
        for op in (a, b, union, sink):
            plan.add(op)
        plan.connect(a, union, port=0, page_size=1)
        plan.connect(b, union, port=1, page_size=1)
        plan.connect(union, sink, page_size=1)
        Simulator(plan).run()
        values = [r["v"] for r in sink.results]
        # Neither input is fully drained before the other starts.
        assert values[:2] != [1, 1] or values[2:4] != [1, 1]
        assert sorted(values) == [1, 1, 1, 1, 2, 2, 2, 2]
