"""ASCII figure rendering (part of system S9 in DESIGN.md)."""

from repro.viz.ascii import grouped_bars, scatter, series_summary

__all__ = ["grouped_bars", "scatter", "series_summary"]
