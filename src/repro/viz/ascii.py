"""ASCII rendering of the paper's figures.

The benchmark harness prints the same *shapes* the paper plots: the
tuple-id-versus-output-time scatter of Figures 5/6 and the grouped
execution-time bars of Figure 7.  Pure text, no plotting dependency --
the output goes straight into bench logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["scatter", "grouped_bars", "series_summary"]


def scatter(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named point series on one character grid.

    Each series gets the first letter of its name as its mark; collisions
    show the later series' mark.  Axis ranges cover all series jointly.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for name, pts in series.items():
        mark = name[0].upper() if name else "?"
        for x, y in pts:
            col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
            row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{name[0].upper()} = {name}" for name in series)
    lines.append(legend)
    lines.append(f"{y_label} (top={y_hi:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {x_lo:g} .. {x_hi:g}"
    )
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    *,
    width: int = 50,
    title: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """Render grouped horizontal bars: {group: {series: value}}.

    Used for Figure 7: groups are feedback frequencies, series are the
    schemes F0-F3.
    """
    all_values = [v for row in groups.values() for v in row.values()]
    if not all_values:
        return f"{title}\n(no data)"
    peak = max(all_values) or 1.0
    label_width = max(
        (len(str(series)) for row in groups.values() for series in row),
        default=4,
    )
    lines = []
    if title:
        lines.append(title)
    for group, row in groups.items():
        lines.append(f"{group}:")
        for series, value in row.items():
            bar = "#" * max(1, int(value / peak * width))
            rendered = value_format.format(value)
            lines.append(
                f"  {str(series):<{label_width}} |{bar:<{width}} {rendered}"
            )
    return "\n".join(lines)


def series_summary(
    series: Iterable[tuple[float, float]], *, name: str = "series"
) -> str:
    """One-line numeric digest of a point series (for logs)."""
    pts = list(series)
    if not pts:
        return f"{name}: empty"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return (
        f"{name}: n={len(pts)}, x∈[{min(xs):g}, {max(xs):g}], "
        f"y∈[{min(ys):g}, {max(ys):g}]"
    )
