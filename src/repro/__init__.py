"""repro: Inter-operator feedback in data stream management systems.

A from-scratch Python reproduction of Fernández-Moctezuma, Tufte & Li,
"Inter-Operator Feedback in Data Stream Management Systems via
Punctuation" (CIDR 2009): a NiagaraST-style push-based stream engine with
embedded punctuation plus the paper's contribution -- **feedback
punctuation** flowing against the stream with assumed / desired / demanded
intents.

Quickstart::

    from repro import (
        Schema, StreamTuple, QueryPlan, Simulator,
        ListSource, Select, CollectSink,
    )

    schema = Schema.of("ts", "value")
    plan = QueryPlan("hello")
    source = ListSource("src", schema,
                        [(t, StreamTuple(schema, (t, t * 10))) for t in range(5)])
    plan.chain(source, Select("keep_even", schema,
                              lambda t: t["value"] % 20 == 0),
               CollectSink("out", schema))
    result = Simulator(plan).run()
    print([t.values for t in result.sink("out").results])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    Characterization,
    ExploitAction,
    FeedbackIntent,
    FeedbackLog,
    FeedbackPunctuation,
    GuardSet,
    PropagationPlanner,
    check_correct_exploitation,
    count_characterization,
    join_characterization,
    max_characterization,
    subset,
    sum_characterization,
)
from repro.engine import (
    PlanMetrics,
    QueryPlan,
    RunResult,
    Simulator,
    ThreadedRuntime,
)
from repro.operators import (
    AggregateKind,
    ArchiveDB,
    CollectSink,
    Duplicate,
    GeneratorSource,
    ImpatientJoin,
    Impute,
    ListSource,
    Map,
    OnDemandSink,
    Operator,
    Pace,
    PassThrough,
    PriorityBuffer,
    Project,
    PunctuatedSource,
    QualityFilter,
    Router,
    Select,
    SourceOperator,
    SymmetricHashJoin,
    ThriftyJoin,
    Union,
    WindowAggregate,
)
from repro.punctuation import (
    AtLeast,
    AtMost,
    Equals,
    GreaterThan,
    InSet,
    Interval,
    LessThan,
    Pattern,
    ProgressPunctuator,
    Punctuation,
    PunctuationScheme,
    WILDCARD,
)
from repro.stream import Attribute, Schema, SchemaMapping, StreamTuple

__version__ = "1.0.0"

__all__ = [
    "AggregateKind",
    "ArchiveDB",
    "AtLeast",
    "AtMost",
    "Attribute",
    "Characterization",
    "CollectSink",
    "Duplicate",
    "Equals",
    "ExploitAction",
    "FeedbackIntent",
    "FeedbackLog",
    "FeedbackPunctuation",
    "GeneratorSource",
    "GreaterThan",
    "GuardSet",
    "ImpatientJoin",
    "Impute",
    "InSet",
    "Interval",
    "LessThan",
    "ListSource",
    "Map",
    "OnDemandSink",
    "Operator",
    "Pace",
    "PassThrough",
    "Pattern",
    "PlanMetrics",
    "PriorityBuffer",
    "ProgressPunctuator",
    "Project",
    "PropagationPlanner",
    "Punctuation",
    "PunctuatedSource",
    "PunctuationScheme",
    "QualityFilter",
    "QueryPlan",
    "Router",
    "RunResult",
    "Schema",
    "SchemaMapping",
    "Select",
    "Simulator",
    "SourceOperator",
    "StreamTuple",
    "SymmetricHashJoin",
    "ThreadedRuntime",
    "ThriftyJoin",
    "Union",
    "WILDCARD",
    "WindowAggregate",
    "check_correct_exploitation",
    "count_characterization",
    "join_characterization",
    "max_characterization",
    "subset",
    "sum_characterization",
]
