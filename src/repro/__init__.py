"""repro: Inter-operator feedback in data stream management systems.

A from-scratch Python reproduction of Fernández-Moctezuma, Tufte & Li,
"Inter-Operator Feedback in Data Stream Management Systems via
Punctuation" (CIDR 2009): a NiagaraST-style push-based stream engine with
embedded punctuation plus the paper's contribution -- **feedback
punctuation** flowing against the stream with assumed / desired / demanded
intents.

Quickstart -- the fluent surface (``repro.api``)::

    from repro import Flow, Schema, StreamTuple

    schema = Schema.of("ts", "value")
    flow = Flow("hello")
    (flow.source(schema,
                 [(t, StreamTuple(schema, (t, t * 10))) for t in range(5)])
         .where(lambda t: t["value"] % 20 == 0, name="keep_even")
         .collect("out"))
    result = flow.run(engine="simulated")   # or "threaded" / "asyncio"
    print([t.values for t in result.sink("out").results])

Flows compile to :class:`QueryPlan` (the stable IR -- hand-wiring via
``QueryPlan``/``plan.chain`` remains fully supported) and run on any
engine registered in ``repro.engine.registry``.  See DESIGN.md for the
system inventory and EXPERIMENTS.md for the paper-versus-measured record.
"""

from repro.core import (
    Characterization,
    ExploitAction,
    FeedbackIntent,
    FeedbackLog,
    FeedbackPunctuation,
    GuardSet,
    PropagationPlanner,
    check_correct_exploitation,
    count_characterization,
    join_characterization,
    max_characterization,
    subset,
    sum_characterization,
)
from repro.engine import (
    AsyncioEngine,
    PlanMetrics,
    QueryPlan,
    RunResult,
    Simulator,
    ThreadedRuntime,
    available_engines,
    create_engine,
    register_engine,
)
from repro.operators import (
    AggregateKind,
    ArchiveDB,
    AsyncIterableSource,
    AwaitableSink,
    CollectSink,
    Duplicate,
    FusedOperator,
    GeneratorSource,
    ImpatientJoin,
    Impute,
    ListSource,
    Map,
    OnDemandSink,
    Operator,
    Pace,
    PassThrough,
    PriorityBuffer,
    Project,
    PunctuatedSource,
    QualityFilter,
    Router,
    Select,
    SourceOperator,
    SymmetricHashJoin,
    ThriftyJoin,
    Union,
    WindowAggregate,
)
from repro.punctuation import (
    AtLeast,
    AtMost,
    Equals,
    GreaterThan,
    InSet,
    Interval,
    LessThan,
    Pattern,
    ProgressPunctuator,
    Punctuation,
    PunctuationScheme,
    WILDCARD,
)
from repro.optimizer import OptimizationReport, optimize
from repro.stream import Attribute, Schema, SchemaMapping, StreamTuple

# The fluent API layers on top of the engine and operator packages, so it
# must import after them (the engine package must initialise before
# repro.operators does).
from repro.api import Flow, StreamHandle

__version__ = "1.0.0"

__all__ = [
    "AggregateKind",
    "ArchiveDB",
    "AsyncIterableSource",
    "AsyncioEngine",
    "AtLeast",
    "AtMost",
    "Attribute",
    "AwaitableSink",
    "Characterization",
    "CollectSink",
    "Duplicate",
    "Equals",
    "ExploitAction",
    "FeedbackIntent",
    "FeedbackLog",
    "FeedbackPunctuation",
    "Flow",
    "FusedOperator",
    "GeneratorSource",
    "GreaterThan",
    "GuardSet",
    "ImpatientJoin",
    "Impute",
    "InSet",
    "Interval",
    "LessThan",
    "ListSource",
    "Map",
    "OnDemandSink",
    "Operator",
    "OptimizationReport",
    "Pace",
    "PassThrough",
    "Pattern",
    "PlanMetrics",
    "PriorityBuffer",
    "ProgressPunctuator",
    "Project",
    "PropagationPlanner",
    "Punctuation",
    "PunctuatedSource",
    "PunctuationScheme",
    "QualityFilter",
    "QueryPlan",
    "Router",
    "RunResult",
    "Schema",
    "SchemaMapping",
    "Select",
    "Simulator",
    "SourceOperator",
    "StreamHandle",
    "StreamTuple",
    "SymmetricHashJoin",
    "ThreadedRuntime",
    "ThriftyJoin",
    "Union",
    "WILDCARD",
    "WindowAggregate",
    "available_engines",
    "check_correct_exploitation",
    "create_engine",
    "register_engine",
    "count_characterization",
    "join_characterization",
    "max_characterization",
    "optimize",
    "subset",
    "sum_characterization",
]
