"""Loopback clients for the serving layer: HTTP, SSE and websocket.

These are real network clients -- they open TCP connections to a
:class:`~repro.serving.server.StreamServer` and speak the wire protocols
byte for byte -- but deliberately minimal: just enough for the e2e test
battery, the load generator and the docs snippets to drive a server the
way curl / EventSource / a browser websocket would.  They share the
frame codecs in :mod:`repro.serving.wire` (with client-side masking for
websocket frames, as RFC 6455 requires of clients).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator

from repro.errors import ServingError
from repro.serving.wire import (
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    WS_TEXT,
    websocket_accept,
    ws_encode,
    ws_read,
)

__all__ = [
    "WebSocketClient",
    "http_request",
    "get_json",
    "get_text",
    "post_json",
    "sse_subscribe",
]


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    body: bytes = b"",
    content_type: str = "application/json",
) -> tuple[int, dict[str, str], bytes]:
    """One plain HTTP/1.1 exchange: ``(status, headers, body)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"host: {host}:{port}\r\n"
            f"content-type: {content_type}\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        status, headers = await _read_response_head(reader)
        payload = await _read_body(reader, headers)
        return status, headers, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def post_json(
    host: str, port: int, path: str, payload: Any
) -> tuple[int, Any]:
    """POST a JSON payload; returns ``(status, decoded_body)``."""
    status, _headers, body = await http_request(
        host, port, "POST", path, body=json.dumps(payload).encode()
    )
    return status, json.loads(body) if body else None


async def get_json(host: str, port: int, path: str) -> tuple[int, Any]:
    status, _headers, body = await http_request(host, port, "GET", path)
    return status, json.loads(body) if body else None


async def get_text(host: str, port: int, path: str) -> tuple[int, str]:
    status, _headers, body = await http_request(host, port, "GET", path)
    return status, body.decode()


async def _read_response_head(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str]]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ServingError(f"malformed status line {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if line:
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return int(parts[1]), headers


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str]
) -> bytes:
    length = headers.get("content-length")
    if length is not None:
        return await reader.readexactly(int(length))
    return await reader.read()  # connection: close delimits the body


async def sse_subscribe(
    host: str, port: int, path: str
) -> AsyncIterator[dict[str, Any]]:
    """Subscribe to an SSE endpoint, yielding decoded JSON events.

    The iterator ends when the server closes the stream (flow drained,
    or a ``?limit=N`` reached).  Closing the generator closes the
    connection -- disconnect-mid-stream in tests is just ``aclose()``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nhost: {host}:{port}\r\n"
            f"accept: text/event-stream\r\n\r\n".encode()
        )
        await writer.drain()
        status, headers = await _read_response_head(reader)
        if status != 200:
            body = await _read_body(reader, headers)
            raise ServingError(
                f"SSE subscribe failed with {status}: {body.decode()!r}"
            )
        data_lines: list[str] = []
        while True:
            line = await reader.readline()
            if not line:
                return
            text = line.decode().rstrip("\n").rstrip("\r")
            if text.startswith("data:"):
                data_lines.append(text[5:].lstrip())
            elif not text and data_lines:
                yield json.loads("\n".join(data_lines))
                data_lines = []
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class WebSocketClient:
    """A masked-frame websocket client for one serving endpoint."""

    def __init__(self, host: str, port: int, path: str) -> None:
        self.host = host
        self.port = port
        self.path = path
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "WebSocketClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._reader, self._writer = reader, writer
        key = "c2VydmluZy10ZXN0LWtleQ=="  # static 16-byte nonce, base64
        writer.write(
            f"GET {self.path} HTTP/1.1\r\n"
            f"host: {self.host}:{self.port}\r\n"
            f"upgrade: websocket\r\nconnection: Upgrade\r\n"
            f"sec-websocket-key: {key}\r\n"
            f"sec-websocket-version: 13\r\n\r\n".encode()
        )
        await writer.drain()
        status, headers = await _read_response_head(reader)
        if status != 101:
            body = await _read_body(reader, headers)
            raise ServingError(
                f"websocket handshake failed with {status}: "
                f"{body.decode()!r}"
            )
        expected = websocket_accept(key)
        if headers.get("sec-websocket-accept") != expected:
            raise ServingError("websocket handshake accept-key mismatch")

    async def send_json(self, payload: Any) -> None:
        assert self._writer is not None, "connect() first"
        self._writer.write(
            ws_encode(json.dumps(payload), opcode=WS_TEXT, mask=True)
        )
        await self._writer.drain()

    async def receive_json(self) -> Any | None:
        """The next pushed JSON message; ``None`` when the peer closed."""
        assert self._reader is not None, "connect() first"
        while True:
            frame = await ws_read(self._reader)
            if frame is None:
                return None
            opcode, payload = frame
            if opcode == WS_CLOSE:
                return None
            if opcode == WS_PING:
                assert self._writer is not None
                self._writer.write(
                    ws_encode(payload, opcode=WS_PONG, mask=True)
                )
                await self._writer.drain()
                continue
            if opcode == WS_TEXT:
                return json.loads(payload)

    async def close(self) -> None:
        writer = self._writer
        if writer is None:
            return
        self._writer = None
        try:
            writer.write(ws_encode(b"", opcode=WS_CLOSE, mask=True))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
