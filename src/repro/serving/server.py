"""The network front-end: one asyncio server multiplexing every flow.

:class:`StreamServer` binds a single listening socket and speaks the
three client protocols over it (HTTP POST ingest, SSE push delivery,
websocket duplex), routing everything to a
:class:`~repro.serving.supervisor.FlowSupervisor`.  The whole service --
every socket handler, every operator coroutine of every flow -- runs
cooperatively on one event loop, which is what makes the end-to-end
backpressure story airtight: a slow subscriber blocks its writer's
``drain()``, the hub gate closes, ingest awaits, and the ingesting
client's TCP connection stalls.  No thread hops, no unbounded buffers,
no drops (docs/serving.md walks the chain).

Routes::

    GET  /healthz                  readiness (200 iff all flows live)
    GET  /metrics                  Prometheus text (engine + serving)
    GET  /v1/flows                 per-flow status JSON
    POST /v1/flows/{flow}/ingest   JSON object or list of objects
    GET  /v1/flows/{flow}/stream   SSE push delivery (?limit=N to bound)
    GET  /v1/flows/{flow}/ws       websocket: ingest frames in,
                                   pushed results out (?mode=ingest|
                                   subscribe|duplex)

uvloop is the one optional acceleration: ``ServingConfig(uvloop=True)``
demands it through the import gate (:mod:`repro.serving._deps`) and
refuses to *silently* run on the stdlib loop -- use :func:`serve` (which
installs the policy before the loop starts) or raise the flag only
under uvloop.
"""

from __future__ import annotations

import asyncio
import json
import socket
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.errors import ServingError
from repro.serving._deps import install_uvloop
from repro.serving.codec import tuple_to_json, tuples_from_body
from repro.serving.metrics import render_prometheus
from repro.serving.supervisor import FlowSupervisor
from repro.serving.wire import (
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    WS_TEXT,
    HttpRequest,
    read_request,
    response_bytes,
    sse_event,
    websocket_accept,
    ws_encode,
    ws_read,
)

__all__ = ["ServingConfig", "StreamServer", "serve"]


@dataclass
class ServingConfig:
    """Tunables for one serving process."""

    host: str = "127.0.0.1"
    port: int = 0                    # 0 = ephemeral (tests, examples)
    uvloop: bool = False             # optional-dep gated acceleration
    max_body: int = 1 << 20          # per-request ingest bound (bytes)
    write_buffer_high: int = 16_384  # socket write buffer before drain()
                                     # blocks -- small, so slow-consumer
                                     # backpressure engages promptly
    sndbuf: int | None = None        # SO_SNDBUF per connection; the kernel
                                     # absorbs this much before drain() can
                                     # block, so tests shrink it to make
                                     # backpressure observable with little
                                     # data
    drain_timeout: float = 30.0      # graceful-shutdown budget


class StreamServer:
    """Serve a supervisor's flows over HTTP/SSE/websocket."""

    def __init__(
        self,
        supervisor: FlowSupervisor | None = None,
        *,
        config: ServingConfig | None = None,
    ) -> None:
        self.supervisor = supervisor or FlowSupervisor()
        self.config = config or ServingConfig()
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self.counters: dict[str, int] = {
            "connections_open": 0,
            "connections_total": 0,
            "requests_total": 0,
            "ingested_total": 0,
            "pushed_total": 0,
            "client_errors_total": 0,
        }

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the socket and start every admitted flow.

        Returns the bound ``(host, port)`` -- with the default ephemeral
        port the caller learns the real one here.
        """
        if self._server is not None:
            raise ServingError("server already started")
        if self.config.uvloop:
            uvloop = install_uvloop()  # raises when not installed
            loop = asyncio.get_running_loop()
            if "uvloop" not in type(loop).__module__:
                raise ServingError(
                    "ServingConfig(uvloop=True) but the current event "
                    "loop is not a uvloop loop; start the process with "
                    "repro.serving.serve() so the policy is installed "
                    "before the loop exists"
                )
            del uvloop
        self.supervisor.start_all()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def aclose(self, *, drain: bool = True) -> None:
        """Stop listening, end client connections, shut flows down.

        ``drain=True`` is the graceful path: ingest channels close, the
        flows process their backlog to end of stream, hubs close, and
        subscriber connections end naturally before being reaped.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            await self.supervisor.drain(
                timeout=self.config.drain_timeout
            )
        else:
            await self.supervisor.stop()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        self._connections.clear()

    # -- connection handling -----------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        self.counters["connections_total"] += 1
        self.counters["connections_open"] += 1

        def reap(finished: asyncio.Task) -> None:
            self._connections.discard(finished)
            self.counters["connections_open"] -= 1
            if not finished.cancelled():
                finished.exception()  # retrieve, so nothing logs late

        task.add_done_callback(reap)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # A small write buffer makes a slow consumer block drain() after
        # a few frames -- the last hop of the backpressure chain.
        writer.transport.set_write_buffer_limits(
            high=self.config.write_buffer_high
        )
        if self.config.sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, self.config.sndbuf
                )
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body
                    )
                except ServingError as exc:
                    self.counters["client_errors_total"] += 1
                    writer.write(_error_response(400, str(exc), False))
                    await writer.drain()
                    return
                if request is None:
                    return
                self.counters["requests_total"] += 1
                if request.wants_websocket:
                    await self._handle_websocket(request, reader, writer)
                    return  # an upgraded connection never reverts
                streaming = await self._handle_http(request, reader, writer)
                if streaming or not request.keep_alive:
                    return
        except (
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            raise
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- HTTP routes -------------------------------------------------------------

    async def _handle_http(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Serve one request; True when the response was a stream."""
        route = self._route(request)
        if route is None:
            writer.write(
                _error_response(
                    404, f"no route for {request.method} {request.path}",
                    request.keep_alive,
                )
            )
            await writer.drain()
            return False
        try:
            return await route(request, reader, writer)
        except ServingError as exc:
            self.counters["client_errors_total"] += 1
            writer.write(
                _error_response(400, str(exc), request.keep_alive)
            )
            await writer.drain()
            return False

    def _route(
        self, request: HttpRequest
    ) -> Callable[..., Awaitable[bool]] | None:
        path, method = request.path, request.method
        if path == "/healthz" and method == "GET":
            return self._get_healthz
        if path == "/metrics" and method == "GET":
            return self._get_metrics
        if path == "/v1/flows" and method == "GET":
            return self._get_flows
        parts = path.strip("/").split("/")
        if len(parts) == 4 and parts[:2] == ["v1", "flows"]:
            flow, action = parts[2], parts[3]
            if action == "ingest" and method == "POST":
                return self._bind_flow(self._post_ingest, flow)
            if action == "stream" and method == "GET":
                return self._bind_flow(self._get_stream, flow)
        return None

    @staticmethod
    def _bind_flow(
        handler: Callable[..., Awaitable[bool]], flow: str
    ) -> Callable[..., Awaitable[bool]]:
        async def bound(request, reader, writer):
            return await handler(flow, request, reader, writer)

        return bound

    async def _get_healthz(self, request, reader, writer) -> bool:
        healthy = self.supervisor.healthy()
        body = json.dumps(
            {
                "status": "ok" if healthy else "degraded",
                "flows": {
                    name: state["state"]
                    for name, state in self.supervisor.status().items()
                },
            }
        )
        writer.write(
            response_bytes(
                200 if healthy else 503, body,
                keep_alive=request.keep_alive,
            )
        )
        await writer.drain()
        return False

    async def _get_metrics(self, request, reader, writer) -> bool:
        text = render_prometheus(
            self.supervisor.live_metrics(),
            flow_states=self.supervisor.status(),
            tenants=self.supervisor.admission.snapshot(),
            server=self.counters,
        )
        writer.write(
            response_bytes(
                200, text,
                content_type="text/plain; version=0.0.4; charset=utf-8",
                keep_alive=request.keep_alive,
            )
        )
        await writer.drain()
        return False

    async def _get_flows(self, request, reader, writer) -> bool:
        writer.write(
            response_bytes(
                200, json.dumps(self.supervisor.status()),
                keep_alive=request.keep_alive,
            )
        )
        await writer.drain()
        return False

    async def _post_ingest(self, flow, request, reader, writer) -> bool:
        managed = self.supervisor._managed(flow)
        schema = managed.flow.channel().schema
        tuples = tuples_from_body(schema, request.body)
        for tup in tuples:
            # The full admission chain awaits here (token bucket, hub
            # gate, bounded channel), so an overloaded flow defers this
            # client's *response* -- HTTP-shaped backpressure.
            await self.supervisor.ingest(flow, tup)
        self.counters["ingested_total"] += len(tuples)
        writer.write(
            response_bytes(
                202, json.dumps({"admitted": len(tuples)}),
                keep_alive=request.keep_alive,
            )
        )
        await writer.drain()
        return False

    async def _get_stream(self, flow, request, reader, writer) -> bool:
        limit = _int_query(request, "limit")
        subscription = self.supervisor.subscribe(flow)
        writer.write(
            response_bytes(
                200, b"",
                content_type="text/event-stream",
                headers={"cache-control": "no-cache"},
                keep_alive=False,
            )
        )
        sent = 0
        iterator = subscription.__aiter__()
        # Watch the read side too: a subscriber of a quiet flow that
        # disconnects would otherwise park this handler (and leak its
        # subscription) until the next event tries to write.
        disconnect = asyncio.ensure_future(reader.read(1))
        try:
            while True:
                advance = asyncio.ensure_future(iterator.__anext__())
                done, _pending = await asyncio.wait(
                    {advance, disconnect},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if disconnect in done:
                    advance.cancel()
                    await asyncio.gather(advance, return_exceptions=True)
                    break
                try:
                    tup = advance.result()
                except StopAsyncIteration:
                    break
                writer.write(sse_event(tuple_to_json(tup)))
                # drain() blocks once the client stops reading and the
                # small write buffer fills: the subscription stops being
                # consumed, its hub buffer grows to high_water, and the
                # gate closes -- backpressure reached the socket.
                await writer.drain()
                self.counters["pushed_total"] += 1
                sent += 1
                if limit is not None and sent >= limit:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            disconnect.cancel()
            await asyncio.gather(disconnect, return_exceptions=True)
            subscription.close()
        return True

    # -- websocket ---------------------------------------------------------------

    async def _handle_websocket(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = request.path.strip("/").split("/")
        valid = (
            len(parts) == 4
            and parts[:2] == ["v1", "flows"]
            and parts[3] == "ws"
        )
        key = request.header("sec-websocket-key")
        if not valid or not key:
            self.counters["client_errors_total"] += 1
            writer.write(
                _error_response(
                    400, "websocket endpoint is /v1/flows/{flow}/ws", False
                )
            )
            await writer.drain()
            return
        flow = parts[2]
        mode = request.query.get("mode", "duplex")
        if mode not in ("duplex", "ingest", "subscribe"):
            self.counters["client_errors_total"] += 1
            writer.write(
                _error_response(
                    400, f"unknown websocket mode {mode!r}", False
                )
            )
            await writer.drain()
            return
        managed = self.supervisor._managed(flow)
        schema = managed.flow.channel().schema
        writer.write(
            response_bytes(
                101, b"",
                headers={
                    "upgrade": "websocket",
                    "connection": "Upgrade",
                    "sec-websocket-accept": websocket_accept(key),
                },
            )
        )
        await writer.drain()

        subscription = (
            self.supervisor.subscribe(flow)
            if mode in ("duplex", "subscribe") else None
        )
        push_task = (
            asyncio.ensure_future(
                self._ws_push(subscription, writer)
            )
            if subscription is not None else None
        )
        try:
            while True:
                frame = await ws_read(
                    reader, max_message=self.config.max_body
                )
                if frame is None:
                    break
                opcode, payload = frame
                if opcode == WS_CLOSE:
                    writer.write(ws_encode(payload, opcode=WS_CLOSE))
                    await writer.drain()
                    break
                if opcode == WS_PING:
                    writer.write(ws_encode(payload, opcode=WS_PONG))
                    await writer.drain()
                    continue
                if opcode != WS_TEXT or mode == "subscribe":
                    continue
                try:
                    tuples = tuples_from_body(schema, payload)
                except ServingError as exc:
                    self.counters["client_errors_total"] += 1
                    writer.write(
                        ws_encode(json.dumps({"error": str(exc)}))
                    )
                    await writer.drain()
                    continue
                for tup in tuples:
                    # Awaiting here stops this coroutine reading more
                    # frames: kernel buffers fill and the client's
                    # sends block -- websocket-shaped backpressure.
                    await self.supervisor.ingest(flow, tup)
                self.counters["ingested_total"] += len(tuples)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if subscription is not None:
                subscription.close()
            if push_task is not None:
                push_task.cancel()
                await asyncio.gather(push_task, return_exceptions=True)

    async def _ws_push(self, subscription, writer) -> None:
        try:
            async for tup in subscription:
                writer.write(ws_encode(tuple_to_json(tup)))
                await writer.drain()
                self.counters["pushed_total"] += 1
        except (ConnectionResetError, BrokenPipeError):
            pass


def _error_response(status: int, message: str, keep_alive: bool) -> bytes:
    return response_bytes(
        status, json.dumps({"error": message}), keep_alive=keep_alive
    )


def _int_query(request: HttpRequest, name: str) -> int | None:
    raw = request.query.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ServingError(
            f"query parameter {name}={raw!r} is not an integer"
        ) from None


def serve(
    server: StreamServer, *, ready: Callable[[str, int], None] | None = None
) -> None:
    """Run a server until interrupted (blocking convenience entry).

    Installs the uvloop policy *before* creating the loop when the
    config asks for it -- the only ordering under which the opt-in can
    actually take effect.
    """
    if server.config.uvloop:
        install_uvloop()

    async def main() -> None:
        host, port = await server.start()
        if ready is not None:
            ready(host, port)
        try:
            await asyncio.Event().wait()  # until cancelled / interrupted
        finally:
            await server.aclose(drain=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
