"""Per-tenant admission control: token buckets that delay, never drop.

The paper's thesis is that overload should surface as *feedback* --
pause punctuation travelling upstream -- rather than as silent load
shedding.  The serving layer extends that discipline past the process
boundary: when a tenant exceeds its provisioned ingest rate, the
admission controller converts the excess into *delay* on that tenant's
own connections (and records the transition as a
:class:`~repro.core.feedback.FlowControlPunctuation` pause on a virtual
``client->serving`` edge), while other tenants' traffic is untouched.
Nothing is dropped, mirroring the in-plan watermark behaviour
(docs/backpressure.md) at the socket boundary.

The policy objects are pure and synchronous -- no sockets, no event
loop, no wall clock of their own (callers pass ``now``).  That is the
same seam discipline as the elasticity layer's ``ScalePolicy.decide()``:
the property-based suite (tests/test_admission.py) drives thousands of
generated arrival schedules through them directly.

:class:`TokenBucket` uses the *reservation* variant of the classic
algorithm (GCRA-flavoured): ``reserve(now)`` always admits and returns
the delay after which the request conforms to the configured rate,
letting the token balance go negative to represent the FIFO queue of
waiting requests.  Over any window ``[s, t]`` the number of admissions
whose conforming time falls inside is at most ``burst + rate·(t-s)`` --
the property the hypothesis suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.feedback import FlowControlPunctuation
from repro.errors import ServingError

__all__ = [
    "AdmissionController",
    "TenantPolicy",
    "TokenBucket",
]


class TokenBucket:
    """A reservation token bucket: overload becomes delay, not drops.

    ``rate`` is the sustained admission rate (tokens/second refill) and
    ``burst`` the bucket depth (requests admitted instantly from idle).
    ``reserve(now)`` debits one token and returns the non-negative delay
    until the request *conforms*; the caller sleeps that long before
    acting (serving: before putting the element on the flow's ingest
    channel), so a tenant flooding its connection simply queues behind
    its own allowance.
    """

    __slots__ = ("rate", "burst", "tokens", "stamped_at", "reservations")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ServingError(f"token bucket rate must be > 0, got {rate}")
        if burst < 1:
            raise ServingError(
                f"token bucket burst must be >= 1, got {burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamped_at = 0.0
        self.reservations = 0

    def _refill(self, now: float) -> None:
        if now > self.stamped_at:
            self.tokens = min(
                self.burst, self.tokens + (now - self.stamped_at) * self.rate
            )
            self.stamped_at = now

    def peek(self, now: float) -> float:
        """The delay :meth:`reserve` would return, without reserving."""
        tokens = self.tokens
        if now > self.stamped_at:
            tokens = min(
                self.burst, tokens + (now - self.stamped_at) * self.rate
            )
        if tokens >= 1.0:
            return 0.0
        return (1.0 - tokens) / self.rate

    def reserve(self, now: float) -> float:
        """Debit one token; return seconds until the request conforms.

        Always admits: a depleted bucket goes negative, so concurrent
        over-rate requests are serialised FIFO at exactly ``rate``.
        """
        self._refill(now)
        self.tokens -= 1.0
        self.reservations += 1
        if self.tokens >= 0.0:
            return 0.0
        return -self.tokens / self.rate

    @property
    def exhausted(self) -> bool:
        """True while reservations are queued beyond the refill."""
        return self.tokens < 0.0


@dataclass(frozen=True)
class TenantPolicy:
    """Declarative per-tenant limits.

    ``rate``/``burst`` parameterise the ingest token bucket;
    ``max_flows`` caps concurrently admitted flows (the hard resource a
    tenant can hold on the shared event loop).
    """

    rate: float = 500.0
    burst: float = 50.0
    max_flows: int = 8

    def __post_init__(self) -> None:
        if self.max_flows < 1:
            raise ServingError(
                f"max_flows must be >= 1, got {self.max_flows}"
            )
        TokenBucket(self.rate, self.burst)  # validate rate/burst

    def bucket(self) -> TokenBucket:
        return TokenBucket(self.rate, self.burst)


@dataclass
class TenantState:
    """One tenant's live admission state (internal)."""

    policy: TenantPolicy
    bucket: TokenBucket
    flows: set[str] = field(default_factory=set)
    delayed: int = 0
    delay_total: float = 0.0
    paused: bool = False


class AdmissionController:
    """Admission decisions for every tenant sharing one serving process.

    Pure policy: the supervisor calls :meth:`admit_flow` /
    :meth:`release_flow` around a flow's lifetime and :meth:`reserve`
    per ingested element, honouring the returned delay.  Fairness falls
    out of isolation -- each tenant debits only its own bucket, so one
    tenant's burst cannot consume another's allowance (the property
    suite asserts both bounds).

    Bucket exhausted/recovered transitions are recorded in
    :attr:`control_log` as pause/resume
    :class:`~repro.core.feedback.FlowControlPunctuation` on the virtual
    ``tenant-><controller>`` edge -- the same vocabulary the in-plan
    watermarks speak, extended to the client boundary.
    """

    def __init__(
        self,
        default_policy: TenantPolicy | None = None,
        *,
        name: str = "serving",
    ) -> None:
        self.name = name
        self.default_policy = default_policy or TenantPolicy()
        self._tenants: dict[str, TenantState] = {}
        self.control_log: list[FlowControlPunctuation] = []

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        """Provision ``tenant`` explicitly (otherwise: default policy).

        Must happen before the tenant's first admission; re-provisioning
        a live tenant would invalidate its bucket state.
        """
        if tenant in self._tenants:
            raise ServingError(
                f"tenant {tenant!r} is already provisioned; set policies "
                f"before first admission"
            )
        self._tenants[tenant] = TenantState(policy, policy.bucket())

    def _state(self, tenant: str) -> TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = TenantState(
                self.default_policy, self.default_policy.bucket()
            )
            self._tenants[tenant] = state
        return state

    @property
    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def flows_of(self, tenant: str) -> set[str]:
        return set(self._state(tenant).flows)

    # -- flow admission ----------------------------------------------------------

    def admit_flow(self, tenant: str, flow_name: str) -> None:
        """Admit a flow or raise when the tenant is at ``max_flows``."""
        state = self._state(tenant)
        if flow_name in state.flows:
            raise ServingError(
                f"tenant {tenant!r} already runs a flow named {flow_name!r}"
            )
        if len(state.flows) >= state.policy.max_flows:
            raise ServingError(
                f"tenant {tenant!r} is at its limit of "
                f"{state.policy.max_flows} concurrent flow(s); release one "
                f"before admitting {flow_name!r}"
            )
        state.flows.add(flow_name)

    def release_flow(self, tenant: str, flow_name: str) -> None:
        self._state(tenant).flows.discard(flow_name)

    # -- rate admission ----------------------------------------------------------

    def reserve(self, tenant: str, now: float) -> float:
        """Reserve one ingest slot; returns the conforming delay.

        Logs the pause punctuation when this reservation pushes the
        tenant's bucket into exhaustion, and the matching resume when a
        later reservation finds it refilled.
        """
        state = self._state(tenant)
        delay = state.bucket.reserve(now)
        if delay > 0.0:
            state.delayed += 1
            state.delay_total += delay
        exhausted = state.bucket.exhausted
        if exhausted and not state.paused:
            state.paused = True
            self.control_log.append(
                FlowControlPunctuation.pause(
                    f"{tenant}->{self.name}", issuer=self.name,
                    issued_at=now, occupancy=state.delayed,
                )
            )
        elif not exhausted and state.paused:
            state.paused = False
            self.control_log.append(
                FlowControlPunctuation.resume(
                    f"{tenant}->{self.name}", issuer=self.name,
                    issued_at=now,
                )
            )
        return delay

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-tenant counters for ``/metrics`` and status endpoints."""
        return {
            tenant: {
                "flows": len(state.flows),
                "max_flows": state.policy.max_flows,
                "rate": state.policy.rate,
                "burst": state.policy.burst,
                "reservations": state.bucket.reservations,
                "delayed": state.delayed,
                "delay_total": state.delay_total,
                "paused": state.paused,
            }
            for tenant, state in sorted(self._tenants.items())
        }
