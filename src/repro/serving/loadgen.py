"""Load generator: N simulated clients at T msg/s against one flow.

The "heavy traffic" scenario as a measurable harness
(BENCH_serving.json): ``run_load`` opens one websocket *ingest*
connection per simulated client plus a single *subscribe* connection
collecting every pushed result, paces each client at the target rate,
and stamps a send-side ``perf_counter`` into every payload so end-to-end
latency (client socket → parse → admission → channel → plan → hub →
push socket → client) is measured from real timestamps, not inferred.

The driven flow's schema must carry the three correlation attributes
``client``/``seq``/``sent_at`` through to the push sink (extra
attributes are free).  Delivery is verified exactly: every (client, seq)
sent must be received once, so a run that drops or duplicates under
load fails loudly rather than reporting flattering latency.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import ServingError
from repro.serving.client import WebSocketClient

__all__ = ["LoadReport", "run_load"]


@dataclass
class LoadReport:
    """One load run's outcome, ready for a BENCH payload."""

    clients: int
    rate_per_client: float
    duration: float          # wall seconds, first send → last receive
    sent: int
    received: int
    dropped: int             # sent but never delivered (must be 0)
    throughput: float        # delivered results / second
    p50_ms: float
    p99_ms: float
    max_ms: float
    per_client_p99_ms: dict[str, float]

    def as_dict(self) -> dict[str, Any]:
        return {
            "clients": self.clients,
            "rate_per_client": self.rate_per_client,
            "offered_rate": self.clients * self.rate_per_client,
            "duration_s": round(self.duration, 4),
            "sent": self.sent,
            "received": self.received,
            "dropped": self.dropped,
            "throughput_per_s": round(self.throughput, 2),
            "latency_p50_ms": round(self.p50_ms, 3),
            "latency_p99_ms": round(self.p99_ms, 3),
            "latency_max_ms": round(self.max_ms, 3),
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


async def run_load(
    host: str,
    port: int,
    flow: str,
    *,
    clients: int = 32,
    rate_per_client: float = 15.0,
    messages_per_client: int = 30,
    payload_extra: dict[str, Any] | None = None,
    receive_timeout: float = 30.0,
) -> LoadReport:
    """Drive ``flow`` with paced websocket clients; collect every result.

    Each client sends ``messages_per_client`` JSON messages at
    ``rate_per_client`` msg/s over its own ``?mode=ingest`` websocket;
    one ``?mode=subscribe`` websocket drains the push hub and matches
    results back to their send timestamps.
    """
    if clients < 1:
        raise ServingError(f"need >= 1 client, got {clients}")
    expected = clients * messages_per_client
    path = f"/v1/flows/{flow}/ws"
    extra = payload_extra or {}

    subscriber = WebSocketClient(host, port, path + "?mode=subscribe")
    await subscriber.connect()

    latencies: list[float] = []
    by_client: dict[str, list[float]] = {}
    seen: set[tuple[str, int]] = set()
    received = 0
    last_receive = time.perf_counter()

    async def collect() -> None:
        nonlocal received, last_receive
        while received < expected:
            message = await subscriber.receive_json()
            if message is None:
                return
            key = (message["client"], message["seq"])
            if key in seen:
                raise ServingError(f"duplicate delivery for {key}")
            seen.add(key)
            now = time.perf_counter()
            latency = now - message["sent_at"]
            latencies.append(latency)
            by_client.setdefault(message["client"], []).append(latency)
            received += 1
            last_receive = now

    async def drive(client_id: str) -> int:
        sent = 0
        async with WebSocketClient(
            host, port, path + "?mode=ingest"
        ) as socket:
            interval = 1.0 / rate_per_client
            next_at = time.perf_counter()
            for seq in range(messages_per_client):
                next_at += interval
                delay = next_at - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                await socket.send_json(
                    {
                        "client": client_id,
                        "seq": seq,
                        "sent_at": time.perf_counter(),
                        **extra,
                    }
                )
                sent += 1
        return sent

    started = time.perf_counter()
    collector = asyncio.ensure_future(collect())
    try:
        sent_counts = await asyncio.gather(
            *(drive(f"c{i:03d}") for i in range(clients))
        )
        await asyncio.wait_for(collector, receive_timeout)
    finally:
        if not collector.done():
            collector.cancel()
            await asyncio.gather(collector, return_exceptions=True)
        await subscriber.close()

    sent = sum(sent_counts)
    duration = max(last_receive - started, 1e-9)
    latencies.sort()
    return LoadReport(
        clients=clients,
        rate_per_client=rate_per_client,
        duration=duration,
        sent=sent,
        received=received,
        dropped=sent - received,
        throughput=received / duration,
        p50_ms=_percentile(latencies, 0.50) * 1e3,
        p99_ms=_percentile(latencies, 0.99) * 1e3,
        max_ms=max(latencies, default=0.0) * 1e3,
        per_client_p99_ms={
            client: round(_percentile(sorted(vals), 0.99) * 1e3, 3)
            for client, vals in sorted(by_client.items())
        },
    )
