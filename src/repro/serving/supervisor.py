"""The flow supervisor: admit, start, restart, drain always-on flows.

One :class:`FlowSupervisor` multiplexes many tenant flows on the event
loop it runs on -- the serving layer's core (docs/serving.md).  Each
admitted flow is an ordinary :class:`repro.api.Flow` declared with the
serving verbs (``flow.ingest(...)`` sources, ``.push(...)`` delivery),
and the supervisor owns its lifecycle:

* **admit** -- per-tenant admission control via
  :class:`~repro.serving.tenancy.AdmissionController` (max concurrent
  flows; per-element token buckets applied in :meth:`ingest`);
* **start** -- build a fresh plan and run it on an
  :class:`~repro.engine.async_engine.AsyncioEngine` with the watchdog
  disabled (``timeout=None``): serving flows end only when drained;
* **restart** -- a crashed run is rebuilt and restarted under bounded
  exponential backoff; the flow's ingest channels and delivery hubs
  persist across the rebuild, so connected clients ride through (input
  admitted during the outage is delivered by the next run; elements the
  dead engine had consumed but not yet delivered are lost unless the
  flow runs with a checkpoint store);
* **drain** -- close the ingest channels and await end-of-stream, so
  every admitted element is processed and pushed before shutdown;
* **stop** -- cancel outright (for tests and emergency shutdown).

The supervisor is engine-facing but socket-free: the network front-end
(:mod:`repro.serving.server`) calls :meth:`ingest` / :meth:`subscribe`,
and tests drive the same methods directly.
"""

from __future__ import annotations

import asyncio
import enum
import time
from typing import Any, Callable

from repro.api.flow import Flow
from repro.engine.registry import create_engine
from repro.errors import ServingError
from repro.serving.tenancy import AdmissionController, TenantPolicy
from repro.stream.channels import Broadcast, Channel, Subscription

__all__ = ["FlowState", "FlowSupervisor", "ManagedFlow"]


class FlowState(enum.Enum):
    ADMITTED = "admitted"      # registered, not yet started
    RUNNING = "running"        # engine coroutine in flight
    RESTARTING = "restarting"  # crashed; waiting out the backoff
    DRAINED = "drained"        # clean end of stream
    FAILED = "failed"          # crashed beyond the restart budget
    STOPPED = "stopped"        # cancelled by stop()


class ManagedFlow:
    """One supervised flow: the Flow, its tenant, and live run state."""

    def __init__(self, flow: Flow, tenant: str) -> None:
        self.flow = flow
        self.tenant = tenant
        self.state = FlowState.ADMITTED
        self.plan: Any = None
        self.engine: Any = None
        self.task: asyncio.Task | None = None
        self.restarts = 0
        self.crashes: list[str] = []
        self.error: BaseException | None = None
        self.result: Any = None
        self.ingested = 0

    @property
    def name(self) -> str:
        return self.flow.name

    @property
    def channels(self) -> dict[str, Channel]:
        return self.flow._serving_channels

    @property
    def hubs(self) -> dict[str, Broadcast]:
        return self.flow._serving_hubs

    def summary(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "state": self.state.value,
            "restarts": self.restarts,
            "crashes": list(self.crashes),
            "ingested": self.ingested,
            "channels": {
                name: {
                    "backlog": len(channel),
                    "capacity": channel.capacity,
                    "admitted": channel.admitted,
                    "delivered": channel.delivered,
                    "peak_backlog": channel.peak_backlog,
                    "closed": channel.closed,
                }
                for name, channel in self.channels.items()
            },
            "hubs": {
                name: {
                    "subscribers": hub.subscribers,
                    "backlog": hub.backlog,
                    "published": hub.published,
                    "peak_backlog": hub.peak_backlog,
                    "pauses": hub.pauses,
                    "resumes": hub.resumes,
                    "gate_open": hub.gate_open,
                }
                for name, hub in self.hubs.items()
            },
        }


class FlowSupervisor:
    """Admit, run and supervise many always-on flows on one loop.

    Parameters
    ----------
    admission:
        The per-tenant policy seam; defaults to an
        :class:`AdmissionController` with the default
        :class:`~repro.serving.tenancy.TenantPolicy`.
    queue_capacity:
        Bounded-queue capacity applied to every built plan, so in-plan
        backpressure (pause/resume punctuation) is always armed.
    restart_limit:
        Crashes tolerated per flow before it is marked ``FAILED``.
    backoff_base / backoff_cap:
        Exponential restart backoff: crash *k* waits
        ``min(cap, base · 2^(k-1))`` seconds.
    engine_options:
        Extra keyword arguments for every built asyncio engine (e.g.
        ``checkpoint_every=...``, ``checkpoint_store=...`` to make a
        supervised flow durable).
    """

    def __init__(
        self,
        *,
        admission: AdmissionController | None = None,
        queue_capacity: int | None = 64,
        restart_limit: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        engine_options: dict[str, Any] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.admission = admission or AdmissionController()
        self.queue_capacity = queue_capacity
        if restart_limit < 0:
            raise ServingError(
                f"restart_limit must be >= 0, got {restart_limit}"
            )
        self.restart_limit = restart_limit
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.engine_options = dict(engine_options or {})
        self._clock = clock
        self._flows: dict[str, ManagedFlow] = {}

    # -- lifecycle ---------------------------------------------------------------

    def admit(
        self,
        flow: Flow,
        *,
        tenant: str = "default",
        policy: TenantPolicy | None = None,
    ) -> ManagedFlow:
        """Register a flow under a tenant, enforcing its flow cap.

        The flow must declare at least one ``ingest()`` channel and one
        ``.push()`` hub -- a serving flow has a network-facing input and
        output by definition (use plain ``flow.run()`` for batch runs).
        """
        if flow.name in self._flows:
            raise ServingError(
                f"a flow named {flow.name!r} is already admitted"
            )
        if not flow._serving_channels:
            raise ServingError(
                f"flow {flow.name!r} declares no ingest channel; serving "
                f"flows start from flow.ingest(schema)"
            )
        if not flow._serving_hubs:
            raise ServingError(
                f"flow {flow.name!r} declares no delivery hub; serving "
                f"flows terminate in .push()"
            )
        if policy is not None:
            self.admission.set_policy(tenant, policy)
        self.admission.admit_flow(tenant, flow.name)
        managed = ManagedFlow(flow, tenant)
        self._flows[flow.name] = managed
        return managed

    def start(self, name: str) -> ManagedFlow:
        """Launch the flow's supervised run task (must be on the loop)."""
        managed = self._managed(name)
        if managed.task is not None:
            raise ServingError(f"flow {name!r} is already started")
        managed.task = asyncio.ensure_future(self._supervise(managed))
        return managed

    def start_all(self) -> list[ManagedFlow]:
        return [
            self.start(name)
            for name, managed in self._flows.items()
            if managed.task is None
        ]

    async def _supervise(self, managed: ManagedFlow) -> None:
        """Run the flow, restarting with bounded backoff on crashes."""
        crashes = 0
        try:
            while True:
                plan = managed.flow.build(
                    queue_capacity=self.queue_capacity
                )
                engine = create_engine(
                    "asyncio", plan, timeout=None, **self.engine_options
                )
                managed.plan = plan
                managed.engine = engine
                managed.state = FlowState.RUNNING
                try:
                    managed.result = await engine.arun()
                except asyncio.CancelledError:
                    managed.state = FlowState.STOPPED
                    raise
                except Exception as exc:
                    crashes += 1
                    managed.crashes.append(f"{type(exc).__name__}: {exc}")
                    if crashes > self.restart_limit:
                        managed.state = FlowState.FAILED
                        managed.error = exc
                        return
                    managed.state = FlowState.RESTARTING
                    managed.restarts += 1
                    await asyncio.sleep(
                        min(
                            self.backoff_cap,
                            self.backoff_base * 2 ** (crashes - 1),
                        )
                    )
                else:
                    managed.state = FlowState.DRAINED
                    return
        finally:
            self.admission.release_flow(managed.tenant, managed.name)

    # -- data plane ---------------------------------------------------------------

    async def ingest(
        self,
        name: str,
        element: Any,
        *,
        channel: str | None = None,
    ) -> int:
        """Admit one element into a flow's ingest channel.

        The full admission chain, in order: the tenant's token bucket
        (over-rate ⇒ sleep out the conforming delay), the flow's
        delivery-hub gates (a slow subscriber ⇒ wait for the hub to
        re-open), then the bounded channel itself (a paused plan ⇒
        ``put`` awaits).  Every stage converts overload into delay for
        *this caller only*; nothing is dropped.
        """
        managed = self._managed(name)
        if managed.state in (FlowState.FAILED, FlowState.STOPPED):
            raise ServingError(
                f"flow {name!r} is {managed.state.value}; not accepting "
                f"input"
            )
        delay = self.admission.reserve(managed.tenant, self._clock())
        if delay > 0.0:
            await asyncio.sleep(delay)
        for hub in managed.hubs.values():
            await hub.wait_open()
        seq = await managed.flow.channel(channel).put(element)
        managed.ingested += 1
        return seq

    def subscribe(self, name: str, *, hub: str | None = None) -> Subscription:
        """Attach a delivery subscription to a flow's push hub."""
        return self._managed(name).flow.hub(hub).subscribe()

    # -- shutdown -----------------------------------------------------------------

    async def drain(self, *, timeout: float | None = 30.0) -> None:
        """Graceful shutdown: close ingest, process everything, stop.

        Closes every flow's ingest channels (new ``put`` calls raise)
        and awaits the supervised runs; each plan sees end of stream
        once its channel backlog drains, pushes its final results, and
        closes its hubs -- so subscribers' iterators end too.
        """
        for managed in self._flows.values():
            for channel in managed.channels.values():
                channel.close()
        tasks = [m.task for m in self._flows.values() if m.task is not None]
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=timeout)
            if pending:
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                raise ServingError(
                    f"{len(pending)} flow(s) did not drain within "
                    f"{timeout}s and were cancelled"
                )

    async def stop(self) -> None:
        """Hard shutdown: cancel every run and close every adapter."""
        tasks = [m.task for m in self._flows.values() if m.task is not None]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for managed in self._flows.values():
            for channel in managed.channels.values():
                channel.close()
            for hub in managed.hubs.values():
                hub.close()

    # -- observation --------------------------------------------------------------

    def _managed(self, name: str) -> ManagedFlow:
        try:
            return self._flows[name]
        except KeyError:
            raise ServingError(
                f"no admitted flow named {name!r}; admitted: "
                f"{sorted(self._flows) or 'none'}"
            ) from None

    @property
    def flows(self) -> list[ManagedFlow]:
        return list(self._flows.values())

    def flow_names(self) -> list[str]:
        return sorted(self._flows)

    def status(self) -> dict[str, Any]:
        return {
            name: managed.summary()
            for name, managed in sorted(self._flows.items())
        }

    def healthy(self) -> bool:
        """True when every started flow is live (running or backing off)."""
        return all(
            managed.state
            in (FlowState.RUNNING, FlowState.RESTARTING, FlowState.DRAINED)
            for managed in self._flows.values()
            if managed.task is not None
        )

    def live_metrics(self) -> dict[str, Any]:
        """Per-flow engine metrics snapshots (running flows only)."""
        snapshots: dict[str, Any] = {}
        for name, managed in self._flows.items():
            if managed.engine is not None:
                snapshots[name] = managed.engine.live_metrics()
        return snapshots
