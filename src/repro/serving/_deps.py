"""Optional-dependency gate for the serving layer.

The serving stack is deliberately pure stdlib: ``asyncio.start_server``
plus the hand-rolled HTTP/1.1 + websocket + SSE wire layer in
:mod:`repro.serving.wire`, so it runs anywhere the library does.  The
one genuinely optional dependency is **uvloop**, the drop-in libuv event
loop that roughly doubles socket throughput on CPython.  Environments
without it must degrade *loudly* when asked for it -- a quiet fallback
would invalidate any benchmark that believed it was running accelerated.

``require()`` is the single chokepoint: every optional import goes
through it and surfaces a :class:`~repro.errors.ServingError` naming the
feature, the missing distribution, and the install command.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.errors import ServingError

__all__ = [
    "install_uvloop",
    "require",
    "uvloop_available",
]


def require(module: str, *, feature: str, hint: str | None = None) -> Any:
    """Import an optional module or fail with an actionable error.

    Returns the imported module.  Raises
    :class:`~repro.errors.ServingError` when it is not installed, naming
    the feature that wanted it -- callers never see a bare
    ``ModuleNotFoundError`` whose relevance they would have to guess.
    """
    try:
        return importlib.import_module(module)
    except ModuleNotFoundError as exc:
        if exc.name is not None and not module.startswith(exc.name):
            raise  # the module exists but has a broken transitive import
        raise ServingError(
            f"{feature} needs the optional dependency {module!r}, which "
            f"is not installed in this environment"
            + (f" ({hint})" if hint else f"; install it with "
               f"'pip install {module}' or run without {feature}")
        ) from exc


def uvloop_available() -> bool:
    """True when the optional uvloop accelerator can be imported."""
    try:
        importlib.import_module("uvloop")
    except ModuleNotFoundError:
        return False
    return True


def install_uvloop() -> Any:
    """Install uvloop's event-loop policy (opt-in acceleration).

    Called by :func:`repro.serving.server.serve` (before the loop
    exists) when the config sets ``uvloop=True``; returns the uvloop
    module.  Raises a clear :class:`~repro.errors.ServingError` when
    uvloop is absent rather than silently serving on the stdlib loop.
    """
    uvloop = require(
        "uvloop",
        feature="ServingConfig(uvloop=True)",
        hint="pip install uvloop, or set uvloop=False to use the "
        "stdlib event loop",
    )
    import asyncio

    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return uvloop
