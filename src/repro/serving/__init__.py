"""The network-native serving layer: always-on flows as a service.

This package turns the asyncio engine into a long-running service
(docs/serving.md): flows declared with ``flow.ingest(schema)`` sources
and ``.push()`` delivery terminals are admitted to a
:class:`FlowSupervisor` (per-tenant admission control, bounded-backoff
restarts, graceful drain) and served over one listening socket by a
:class:`StreamServer` -- HTTP POST ingest, SSE and websocket push
delivery, ``/metrics`` in Prometheus text, ``/healthz`` readiness.

The stack is pure stdlib asyncio; uvloop is the one optional
acceleration, behind the import gate in :mod:`repro.serving._deps`
(requesting it when absent raises a clear
:class:`~repro.errors.ServingError`).

Layering, bottom up: :mod:`~repro.serving.wire` (HTTP/SSE/RFC 6455
codecs) → :mod:`~repro.serving.codec` (JSON ⇄ StreamTuple) →
:mod:`~repro.serving.tenancy` (pure admission policy) →
:mod:`~repro.serving.supervisor` (flow lifecycle, socket-free) →
:mod:`~repro.serving.server` (network front-end) with
:mod:`~repro.serving.client` / :mod:`~repro.serving.loadgen` as the
matching client side.
"""

from repro.serving._deps import install_uvloop, require, uvloop_available
from repro.serving.codec import (
    tuple_from_json,
    tuple_to_json,
    tuples_from_body,
)
from repro.serving.loadgen import LoadReport, run_load
from repro.serving.metrics import render_prometheus
from repro.serving.server import ServingConfig, StreamServer, serve
from repro.serving.supervisor import FlowState, FlowSupervisor, ManagedFlow
from repro.serving.tenancy import (
    AdmissionController,
    TenantPolicy,
    TokenBucket,
)

__all__ = [
    "AdmissionController",
    "FlowState",
    "FlowSupervisor",
    "LoadReport",
    "ManagedFlow",
    "ServingConfig",
    "StreamServer",
    "TenantPolicy",
    "TokenBucket",
    "install_uvloop",
    "render_prometheus",
    "require",
    "run_load",
    "serve",
    "tuple_from_json",
    "tuple_to_json",
    "tuples_from_body",
    "uvloop_available",
]
