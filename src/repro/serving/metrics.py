"""Prometheus text rendering of the engine's existing metrics.

The serving layer does not invent a new metrics model: the engines
already account per-operator work, punctuation traffic and feedback
(:class:`~repro.engine.metrics.OperatorMetrics`) and per-edge queue
occupancy (:class:`~repro.engine.metrics.QueueMetrics`).  This module
renders those -- plus the serving adapters' own counters (channels,
hubs, tenants, server connections) -- in the Prometheus text exposition
format (version 0.0.4), so a standard scraper pointed at ``/metrics``
sees the paper's feedback control plane as ordinary time series:
``repro_operator_pauses_issued_total`` *is* the pause-punctuation count
of docs/backpressure.md.

Pure functions over plain data, no sockets: the server calls
:func:`render_prometheus` with live snapshots, and the unit tests call
it with synthetic ones.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = ["render_prometheus"]

#: OperatorMetrics counters exported per operator.  Monotone counts get
#: the ``_total`` suffix per Prometheus naming conventions; the two
#: ``_seconds`` entries are cumulative times.
_OPERATOR_COUNTERS = (
    ("tuples_in", "repro_operator_tuples_in_total",
     "Tuples consumed by the operator"),
    ("tuples_out", "repro_operator_tuples_out_total",
     "Tuples emitted by the operator"),
    ("punctuations_in", "repro_operator_punctuations_in_total",
     "Embedded punctuations consumed"),
    ("punctuations_out", "repro_operator_punctuations_out_total",
     "Embedded punctuations emitted"),
    ("feedback_received", "repro_operator_feedback_received_total",
     "Feedback punctuations received on the control channel"),
    ("feedback_produced", "repro_operator_feedback_produced_total",
     "Feedback punctuations issued upstream"),
    ("pauses_issued", "repro_operator_pauses_issued_total",
     "Backpressure pause punctuations issued by this consumer"),
    ("resumes_issued", "repro_operator_resumes_issued_total",
     "Backpressure resume punctuations issued by this consumer"),
    ("pauses_received", "repro_operator_pauses_received_total",
     "Pause punctuations received (producer side)"),
    ("resumes_received", "repro_operator_resumes_received_total",
     "Resume punctuations received (producer side)"),
    ("time_paused", "repro_operator_paused_seconds_total",
     "Cumulative seconds the operator spent paused"),
    ("busy_time", "repro_operator_busy_seconds_total",
     "Cumulative seconds of accounted operator work"),
)

_QUEUE_GAUGES = (
    ("peak_occupancy", "repro_queue_peak_occupancy",
     "High-water mark of elements buffered on the edge"),
    ("elements_enqueued", "repro_queue_elements_enqueued_total",
     "Elements ever enqueued on the edge"),
)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(**labels: Any) -> str:
    inner = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def _number(value: Any) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


class _Writer:
    """Accumulates samples grouped under HELP/TYPE headers."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def sample(
        self,
        metric: str,
        help_text: str,
        kind: str,
        value: Any,
        **labels: Any,
    ) -> None:
        if metric not in self._declared:
            self._declared.add(metric)
            self._lines.append(f"# HELP {metric} {help_text}")
            self._lines.append(f"# TYPE {metric} {kind}")
        self._lines.append(f"{metric}{_labels(**labels)} {_number(value)}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n" if self._lines else ""


def render_prometheus(
    plan_metrics: Mapping[str, Any] | None = None,
    *,
    flow_states: Mapping[str, Mapping[str, Any]] | None = None,
    tenants: Mapping[str, Mapping[str, Any]] | None = None,
    server: Mapping[str, Any] | None = None,
) -> str:
    """Render one scrape of the serving process.

    ``plan_metrics`` maps flow name to a live
    :class:`~repro.engine.metrics.PlanMetrics`; ``flow_states`` is
    :meth:`FlowSupervisor.status`'s output; ``tenants`` is
    :meth:`AdmissionController.snapshot`'s; ``server`` is the network
    front-end's own counter dict.  All sections are optional, so policy
    tests render tenants alone and engine tests render plans alone.
    """
    out = _Writer()

    for flow, metrics in (plan_metrics or {}).items():
        for op_name, op in metrics.operator_metrics.items():
            for attr, metric, help_text in _OPERATOR_COUNTERS:
                out.sample(
                    metric, help_text, "counter", getattr(op, attr),
                    flow=flow, operator=op_name,
                )
        for edge_key, queue in metrics.queue_metrics.items():
            for attr, metric, help_text in _QUEUE_GAUGES:
                kind = "counter" if metric.endswith("_total") else "gauge"
                out.sample(
                    metric, help_text, kind, getattr(queue, attr),
                    flow=flow, edge=edge_key,
                    capacity=queue.capacity
                    if queue.capacity is not None else "unbounded",
                )

    for flow, state in (flow_states or {}).items():
        out.sample(
            "repro_flow_up",
            "1 while the flow's supervised run is live",
            "gauge",
            1 if state.get("state") in ("running", "restarting") else 0,
            flow=flow, tenant=state.get("tenant", ""),
            state=state.get("state", ""),
        )
        out.sample(
            "repro_flow_restarts_total",
            "Supervised restarts after operator crashes",
            "counter", state.get("restarts", 0), flow=flow,
        )
        out.sample(
            "repro_flow_ingested_total",
            "Elements admitted into the flow's ingest channels",
            "counter", state.get("ingested", 0), flow=flow,
        )
        for channel, stats in state.get("channels", {}).items():
            out.sample(
                "repro_channel_backlog",
                "Elements currently buffered in the ingest channel",
                "gauge", stats["backlog"], flow=flow, channel=channel,
            )
            out.sample(
                "repro_channel_peak_backlog",
                "High-water mark of the ingest channel backlog",
                "gauge", stats["peak_backlog"], flow=flow, channel=channel,
            )
            out.sample(
                "repro_channel_admitted_total",
                "Elements ever admitted into the ingest channel",
                "counter", stats["admitted"], flow=flow, channel=channel,
            )
        for hub, stats in state.get("hubs", {}).items():
            out.sample(
                "repro_hub_subscribers",
                "Live delivery subscriptions on the hub",
                "gauge", stats["subscribers"], flow=flow, hub=hub,
            )
            out.sample(
                "repro_hub_backlog",
                "Deepest current subscriber buffer on the hub",
                "gauge", stats["backlog"], flow=flow, hub=hub,
            )
            out.sample(
                "repro_hub_published_total",
                "Results pushed through the hub",
                "counter", stats["published"], flow=flow, hub=hub,
            )
            out.sample(
                "repro_hub_pauses_total",
                "Delivery-gate closures (slow-subscriber backpressure)",
                "counter", stats["pauses"], flow=flow, hub=hub,
            )

    for tenant, stats in (tenants or {}).items():
        out.sample(
            "repro_tenant_flows",
            "Concurrently admitted flows for the tenant",
            "gauge", stats["flows"], tenant=tenant,
        )
        out.sample(
            "repro_tenant_reservations_total",
            "Ingest reservations taken from the tenant's token bucket",
            "counter", stats["reservations"], tenant=tenant,
        )
        out.sample(
            "repro_tenant_delayed_total",
            "Reservations that exceeded the rate and were delayed",
            "counter", stats["delayed"], tenant=tenant,
        )
        out.sample(
            "repro_tenant_delay_seconds_total",
            "Cumulative admission delay imposed on the tenant",
            "counter", stats["delay_total"], tenant=tenant,
        )
        out.sample(
            "repro_tenant_paused",
            "1 while the tenant's bucket is exhausted (pause issued)",
            "gauge", 1 if stats["paused"] else 0, tenant=tenant,
        )

    for key, value in (server or {}).items():
        out.sample(
            f"repro_server_{key}",
            f"Serving front-end counter: {key.replace('_', ' ')}",
            "counter" if key.endswith("_total") else "gauge",
            value, scope="server",
        )

    return out.render()


def iter_metric_lines(text: str) -> Iterable[str]:
    """The sample lines of a rendered scrape (test helper)."""
    return [
        line for line in text.splitlines() if not line.startswith("#")
    ]
