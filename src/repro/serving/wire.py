"""Minimal HTTP/1.1, SSE and RFC 6455 websocket wire helpers.

The container this library targets has no aiohttp/websockets, and the
serving layer needs only a narrow slice of each protocol: parse one
request line + headers, answer with framed responses, stream
``text/event-stream`` chunks, and exchange websocket data frames.  This
module implements exactly that slice over asyncio stream reader/writer
pairs -- ~200 lines instead of a framework dependency, and every byte
on the wire is visible to the tests.

Scope notes (deliberate): HTTP/1.1 with ``Content-Length`` bodies only
(no chunked ingest), no TLS (front a real deployment with a terminating
proxy), websocket per-message-deflate not negotiated.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from dataclasses import dataclass
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ServingError

__all__ = [
    "HttpRequest",
    "WS_CLOSE",
    "WS_PONG",
    "WS_TEXT",
    "read_request",
    "response_bytes",
    "sse_event",
    "websocket_accept",
    "ws_encode",
    "ws_read",
]

MAX_HEADER_BYTES = 16 * 1024
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

# Websocket opcodes (RFC 6455 §5.2).
WS_CONT = 0x0
WS_TEXT = 0x1
WS_BINARY = 0x2
WS_CLOSE = 0x8
WS_PING = 0x9
WS_PONG = 0xA


@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    keep_alive: bool = True

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.header("upgrade").lower()
            and "upgrade" in self.header("connection").lower()
        )


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = 1 << 20
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`~repro.errors.ServingError` for malformed requests
    and for bodies/headers over the configured bounds (the connection
    handler answers 400/413 and closes).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests (keep-alive close)
        raise ServingError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ServingError("request head exceeds the header limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ServingError("request head exceeds the header limit")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServingError(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ServingError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    length = headers.get("content-length", "0")
    try:
        n_body = int(length)
    except ValueError:
        raise ServingError(f"bad Content-Length {length!r}") from None
    if n_body > max_body:
        raise ServingError(
            f"request body of {n_body} bytes exceeds the {max_body}-byte "
            f"ingest limit"
        )
    body = await reader.readexactly(n_body) if n_body else b""

    connection = headers.get("connection", "").lower()
    keep_alive = version != "HTTP/1.0" and "close" not in connection
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path),
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


_REASONS = {
    200: "OK",
    202: "Accepted",
    101: "Switching Protocols",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


def response_bytes(
    status: int,
    body: bytes | str = b"",
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Frame a complete HTTP/1.1 response."""
    if isinstance(body, str):
        body = body.encode()
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    all_headers = {
        "content-type": content_type,
        "content-length": str(len(body)),
        "connection": "keep-alive" if keep_alive else "close",
    }
    if headers:
        all_headers.update({k.lower(): v for k, v in headers.items()})
    lines.extend(f"{name}: {value}" for name, value in all_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def sse_event(data: str, *, event: str | None = None) -> bytes:
    """Frame one Server-Sent Events message."""
    out = []
    if event is not None:
        out.append(f"event: {event}")
    out.extend(f"data: {line}" for line in data.split("\n"))
    return ("\n".join(out) + "\n\n").encode()


# -- RFC 6455 ------------------------------------------------------------------


def websocket_accept(key: str) -> str:
    """The Sec-WebSocket-Accept value for a client's handshake key."""
    digest = hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode()


def ws_encode(
    payload: bytes | str, *, opcode: int = WS_TEXT, mask: bool = False
) -> bytes:
    """Frame one complete (FIN) websocket message.

    Servers send unmasked frames; clients (the loopback test client and
    the load generator) set ``mask=True`` as RFC 6455 §5.3 requires.
    """
    if isinstance(payload, str):
        payload = payload.encode()
    head = bytearray([0x80 | opcode])
    mask_bit = 0x80 if mask else 0
    n = len(payload)
    if n < 126:
        head.append(mask_bit | n)
    elif n < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", n)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", n)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def ws_read(
    reader: asyncio.StreamReader, *, max_message: int = 1 << 20
) -> tuple[int, bytes] | None:
    """Read one websocket *message* (reassembling fragments).

    Returns ``(opcode, payload)``; ``None`` on EOF.  Control frames
    (ping/pong/close) are returned as-is -- they are never fragmented.
    """
    message = bytearray()
    message_opcode: int | None = None
    while True:
        try:
            b1, b2 = await reader.readexactly(2)
        except asyncio.IncompleteReadError:
            return None
        fin, opcode = b1 & 0x80, b1 & 0x0F
        masked, n = b2 & 0x80, b2 & 0x7F
        if n == 126:
            (n,) = struct.unpack("!H", await reader.readexactly(2))
        elif n == 127:
            (n,) = struct.unpack("!Q", await reader.readexactly(8))
        if n > max_message:
            raise ServingError(
                f"websocket frame of {n} bytes exceeds the "
                f"{max_message}-byte limit"
            )
        key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(n)
        if masked:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        if opcode >= WS_CLOSE:  # control frame: FIN always set
            return opcode, payload
        if opcode != WS_CONT:
            message_opcode = opcode
        if message_opcode is None:
            raise ServingError("websocket continuation without a start frame")
        message += payload
        if len(message) > max_message:
            raise ServingError(
                f"websocket message exceeds the {max_message}-byte limit"
            )
        if fin:
            return message_opcode, bytes(message)
