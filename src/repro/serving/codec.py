"""JSON ⇄ :class:`StreamTuple` codec for the wire boundary.

Network clients speak JSON objects keyed by attribute name; plans speak
positional :class:`~repro.stream.tuples.StreamTuple` rows against a
:class:`~repro.stream.schema.Schema`.  This module is the one place that
translation happens, so every ingest path (HTTP POST, websocket frame,
load generator) validates identically and every delivery path renders
identically.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import ServingError
from repro.stream.schema import Schema
from repro.stream.tuples import StreamTuple

__all__ = ["tuple_from_json", "tuple_to_json", "tuples_from_body"]


def tuple_from_json(schema: Schema, payload: Mapping[str, Any]) -> StreamTuple:
    """Build a tuple from a JSON object, validating against ``schema``.

    Every schema attribute must be present; unknown keys are rejected so
    client typos fail fast instead of silently dropping a field.
    """
    if not isinstance(payload, Mapping):
        raise ServingError(
            f"ingest payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    names = schema.names
    missing = [n for n in names if n not in payload]
    if missing:
        raise ServingError(
            f"ingest payload is missing attribute(s) {missing}; "
            f"schema is {list(names)}"
        )
    unknown = [k for k in payload if k not in names]
    if unknown:
        raise ServingError(
            f"ingest payload has unknown attribute(s) {unknown}; "
            f"schema is {list(names)}"
        )
    return StreamTuple(schema, tuple(payload[n] for n in names))


def tuples_from_body(schema: Schema, body: bytes) -> list[StreamTuple]:
    """Decode an ingest request body: one JSON object or a JSON list."""
    try:
        decoded = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServingError(f"ingest body is not valid JSON: {exc}") from exc
    if isinstance(decoded, list):
        return [tuple_from_json(schema, item) for item in decoded]
    return [tuple_from_json(schema, decoded)]


def tuple_to_json(tup: StreamTuple) -> str:
    """Render a result tuple as a compact JSON object."""
    return json.dumps(tup.as_dict(), separators=(",", ":"), default=str)
