"""Patterns: conjunctions of atoms describing a subset of a stream.

A :class:`Pattern` has one :class:`~repro.punctuation.atoms.Atom` per schema
attribute.  The paper writes patterns as bracketed lists --
``[*, *, <='2008-12-08 9:00']`` -- and this module preserves that notation in
``repr`` and in the mini-language (:mod:`repro.lang`).

Patterns are *boxes* (per-attribute conjunctions), so subsumption and
intersection decompose pointwise: box ``A`` subsumes box ``B`` iff every atom
of ``A`` subsumes the corresponding atom of ``B`` (atoms are never empty, so
the pointwise rule is exact, not just sufficient).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import PatternError
from repro.punctuation.atoms import Atom, WILDCARD, atom_from_literal
from repro.stream.schema import Schema
from repro.stream.tuples import StreamTuple

__all__ = ["Pattern"]


class Pattern:
    """An immutable conjunction of per-attribute atoms.

    A pattern may optionally be *bound* to a schema; binding enables
    name-based access and validates arity.  Unbound patterns are positional
    and are used inside the algebra and the propagation planner.
    """

    __slots__ = ("atoms", "schema", "_hash")

    def __init__(
        self, atoms: Iterable[Atom], schema: Schema | None = None
    ) -> None:
        atom_tuple = tuple(atoms)
        if not atom_tuple:
            raise PatternError("pattern requires at least one atom")
        if not all(isinstance(a, Atom) for a in atom_tuple):
            raise PatternError("pattern atoms must be Atom instances")
        if schema is not None and len(schema) != len(atom_tuple):
            raise PatternError(
                f"pattern arity {len(atom_tuple)} does not match schema "
                f"{schema.names} (arity {len(schema)})"
            )
        object.__setattr__(self, "atoms", atom_tuple)
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "_hash", hash(atom_tuple))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Pattern is immutable")

    # Immutability blocks the default slot-state unpickling (it goes
    # through ``setattr``), so patterns restore their slots explicitly --
    # they must cross process boundaries inside serialized feedback and
    # punctuation (see repro.engine.multiprocess).
    def __getstate__(self) -> tuple:
        return (self.atoms, self.schema)

    def __setstate__(self, state: tuple) -> None:
        atoms, schema = state
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "_hash", hash(atoms))

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, *literals: Any, schema: Schema | None = None) -> "Pattern":
        """Build from convenience literals (see ``atom_from_literal``).

        ``Pattern.build("*", 3, {1, 2})`` is ``[*, =3, in{1,2}]``.
        """
        return cls((atom_from_literal(v) for v in literals), schema=schema)

    @classmethod
    def all_wildcards(cls, arity: int, schema: Schema | None = None) -> "Pattern":
        """The pattern matching every tuple of the given arity."""
        return cls((WILDCARD,) * arity, schema=schema)

    @classmethod
    def single(
        cls, schema: Schema, attribute: str, atom: Atom | Any
    ) -> "Pattern":
        """A pattern constraining exactly one named attribute of ``schema``."""
        index = schema.index_of(attribute)
        atoms = [WILDCARD] * len(schema)
        atoms[index] = atom if isinstance(atom, Atom) else atom_from_literal(atom)
        return cls(atoms, schema=schema)

    @classmethod
    def from_mapping(
        cls, schema: Schema, constraints: dict[str, Atom | Any]
    ) -> "Pattern":
        """A pattern constraining the named attributes of ``schema``."""
        atoms: list[Atom] = [WILDCARD] * len(schema)
        for name, spec in constraints.items():
            atoms[schema.index_of(name)] = (
                spec if isinstance(spec, Atom) else atom_from_literal(spec)
            )
        return cls(atoms, schema=schema)

    # -- matching ---------------------------------------------------------------

    def matches(self, element: StreamTuple | Sequence[Any]) -> bool:
        """True when every atom matches the corresponding value."""
        values = element.values if isinstance(element, StreamTuple) else element
        if len(values) != len(self.atoms):
            raise PatternError(
                f"pattern arity {len(self.atoms)} does not match value "
                f"arity {len(values)}"
            )
        return all(a.matches(v) for a, v in zip(self.atoms, values))

    def filter(self, elements: Iterable[StreamTuple]) -> list[StreamTuple]:
        """The paper's ``subset(stream, punctuation)`` over a finite stream."""
        return [t for t in elements if self.matches(t)]

    # -- structure ----------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.atoms)

    @property
    def is_all_wildcard(self) -> bool:
        """True when the pattern matches every tuple."""
        return all(a.is_wildcard for a in self.atoms)

    def constrained_indices(self) -> tuple[int, ...]:
        """Positions whose atom is not the wildcard."""
        return tuple(i for i, a in enumerate(self.atoms) if not a.is_wildcard)

    def constrained(self) -> tuple[tuple[int, Atom], ...]:
        """The non-wildcard atoms with their positions.

        This is the column view of a pattern: each entry names one value
        column and the atom constraining it.  Batch evaluators (the guard
        batch filter, the columnar page codec's consumers) hoist this once
        and then test only the constrained columns per element, skipping
        the wildcard sweeps :meth:`matches` performs.
        """
        return tuple(
            (i, a) for i, a in enumerate(self.atoms) if not a.is_wildcard
        )

    def constrained_names(self) -> tuple[str, ...]:
        """Names of constrained attributes (requires a bound schema)."""
        if self.schema is None:
            raise PatternError("pattern is not bound to a schema")
        return tuple(self.schema[i].name for i in self.constrained_indices())

    def atom_at(self, key: int | str) -> Atom:
        """Atom by position, or by name when bound to a schema."""
        if isinstance(key, str):
            if self.schema is None:
                raise PatternError("pattern is not bound to a schema")
            return self.atoms[self.schema.index_of(key)]
        return self.atoms[key]

    # -- algebra ---------------------------------------------------------------------

    def subsumes(self, other: "Pattern") -> bool:
        """True when every tuple matched by ``other`` is matched by self."""
        self._check_arity(other)
        return all(
            mine.subsumes(theirs)
            for mine, theirs in zip(self.atoms, other.atoms)
        )

    def intersect(self, other: "Pattern") -> "Pattern | None":
        """Pattern matching exactly the common tuples; None when empty."""
        self._check_arity(other)
        atoms: list[Atom] = []
        for mine, theirs in zip(self.atoms, other.atoms):
            joint = mine.intersect(theirs)
            if joint is None:
                return None
            atoms.append(joint)
        return Pattern(atoms, schema=self.schema or other.schema)

    def is_disjoint(self, other: "Pattern") -> bool:
        """True when no tuple matches both patterns."""
        return self.intersect(other) is None

    def _check_arity(self, other: "Pattern") -> None:
        if len(self.atoms) != len(other.atoms):
            raise PatternError(
                f"pattern arity mismatch: {len(self.atoms)} vs "
                f"{len(other.atoms)}"
            )

    # -- derivation -----------------------------------------------------------------

    def project(
        self, indices: Sequence[int], schema: Schema | None = None
    ) -> "Pattern":
        """Pattern over the attributes at ``indices`` (used by propagation)."""
        return Pattern((self.atoms[i] for i in indices), schema=schema)

    def widen_except(self, keep_indices: Sequence[int]) -> "Pattern":
        """Copy with every atom outside ``keep_indices`` replaced by ``*``."""
        keep = set(keep_indices)
        return Pattern(
            (a if i in keep else WILDCARD for i, a in enumerate(self.atoms)),
            schema=self.schema,
        )

    def with_schema(self, schema: Schema) -> "Pattern":
        """The same atoms bound to ``schema``."""
        return Pattern(self.atoms, schema=schema)

    def with_atom(self, key: int | str, atom: Atom | Any) -> "Pattern":
        """Copy with the atom at ``key`` replaced."""
        index = (
            self.schema.index_of(key)  # type: ignore[union-attr]
            if isinstance(key, str)
            else key
        )
        if isinstance(key, str) and self.schema is None:
            raise PatternError("pattern is not bound to a schema")
        atoms = list(self.atoms)
        atoms[index] = atom if isinstance(atom, Atom) else atom_from_literal(atom)
        return Pattern(atoms, schema=self.schema)

    # -- identity -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.atoms == other.atoms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.atoms)
        return f"[{inner}]"
