"""Embedded punctuation: in-stream assertions about stream progress.

An embedded punctuation (paper section 3.1, after [12][13]) flows *with* the
data and asserts: **no tuple matching this pattern will appear later in the
stream**.  Operators use it to unblock (emit results for closed windows) and
to purge state.  In this library punctuations travel inside data pages and
flush them (see :mod:`repro.stream.pages`).

The classic shape is a progress punctuation on a timestamp attribute --
``[*, *, <='2008-12-08 9:00']`` -- but the representation is general: any
pattern may be punctuated, which is what makes feedback expiration on
delimited attributes possible (paper section 4.4).
"""

from __future__ import annotations

from typing import Any

from repro.errors import PatternError
from repro.punctuation.atoms import AtMost, LessThan
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema
from repro.stream.tuples import StreamTuple

__all__ = ["Punctuation"]


class Punctuation:
    """An in-stream statement that a subset of the stream is complete.

    Instances are immutable.  ``source`` names the operator (or external
    source) that emitted the punctuation, for diagnostics.
    """

    __slots__ = ("pattern", "source")

    is_punctuation = True

    def __init__(self, pattern: Pattern, source: str = "") -> None:
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "source", source)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Punctuation is immutable")

    # Immutability blocks the default slot-state unpickling (it applies
    # state via ``setattr``); restore the slots explicitly so punctuation
    # survives the columnar-page serialization boundary intact
    # (flush-on-punctuation must hold across processes).
    def __getstate__(self) -> tuple:
        return (self.pattern, self.source)

    def __setstate__(self, state: tuple) -> None:
        object.__setattr__(self, "pattern", state[0])
        object.__setattr__(self, "source", state[1])

    # -- constructors -----------------------------------------------------------

    @classmethod
    def up_to(
        cls,
        schema: Schema,
        attribute: str,
        bound: Any,
        *,
        inclusive: bool = True,
        source: str = "",
    ) -> "Punctuation":
        """Progress punctuation: all tuples with ``attribute`` <= ``bound``
        (or < when ``inclusive`` is False) have been seen.
        """
        atom = AtMost(bound) if inclusive else LessThan(bound)
        return cls(Pattern.single(schema, attribute, atom), source=source)

    @classmethod
    def group_done(
        cls,
        schema: Schema,
        constraints: dict[str, Any],
        *,
        source: str = "",
    ) -> "Punctuation":
        """Punctuation asserting a specific group/window is complete.

        For example ``group_done(schema, {"window": 4})`` is the paper's
        "all vehicle data has been seen for window 4".
        """
        return cls(Pattern.from_mapping(schema, constraints), source=source)

    # -- semantics ---------------------------------------------------------------

    def covers(self, element: StreamTuple) -> bool:
        """True when ``element`` belongs to the completed subset."""
        return self.pattern.matches(element)

    def subsumes(self, other: "Punctuation") -> bool:
        """True when this punctuation implies ``other``."""
        return self.pattern.subsumes(other.pattern)

    @property
    def schema(self) -> Schema | None:
        return self.pattern.schema

    def rebound(self, schema: Schema) -> "Punctuation":
        """The same pattern bound to a different schema (same arity)."""
        if len(schema) != self.pattern.arity:
            raise PatternError(
                f"cannot rebind punctuation of arity {self.pattern.arity} "
                f"to schema {schema.names}"
            )
        return Punctuation(self.pattern.with_schema(schema), source=self.source)

    # -- identity ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Punctuation):
            return NotImplemented
        return self.pattern == other.pattern

    def __hash__(self) -> int:
        return hash(("punctuation", self.pattern))

    def __repr__(self) -> str:
        return f"Punct{self.pattern!r}"
