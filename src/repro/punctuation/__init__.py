"""Pattern and punctuation algebra (system S2 in DESIGN.md).

Exports the atom vocabulary, :class:`Pattern`, embedded
:class:`Punctuation`, punctuation schemes and the progress punctuator.
Feedback punctuation -- which *carries* a pattern but travels out-of-band
with an intent -- lives in :mod:`repro.core.feedback`.
"""

from repro.punctuation.atoms import (
    AtLeast,
    AtMost,
    Atom,
    Equals,
    GreaterThan,
    InSet,
    Interval,
    LessThan,
    WILDCARD,
    Wildcard,
    atom_from_literal,
)
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.punctuation.schemes import ProgressPunctuator, PunctuationScheme

__all__ = [
    "AtLeast",
    "AtMost",
    "Atom",
    "Equals",
    "GreaterThan",
    "InSet",
    "Interval",
    "LessThan",
    "Pattern",
    "ProgressPunctuator",
    "Punctuation",
    "PunctuationScheme",
    "WILDCARD",
    "Wildcard",
    "atom_from_literal",
]
