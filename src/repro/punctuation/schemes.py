"""Punctuation schemes and delimited attributes.

Paper section 4.4 ties the *supportability* of feedback to punctuation
schemes [14]: feedback predicates on **delimited** attributes -- attributes
covered by progressive embedded punctuation -- eventually expire (the
punctuation catches up with the guard and the guard can be dropped), whereas
feedback on undelimited attributes would accumulate predicate state forever.

:class:`PunctuationScheme` records which attributes of a stream are
delimited and answers supportability queries.  :class:`ProgressPunctuator`
is the utility sources use to actually emit periodic progress punctuation on
a delimited attribute.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import PatternError
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema

__all__ = ["PunctuationScheme", "ProgressPunctuator"]


class PunctuationScheme:
    """Which attributes of a schema carry progressive punctuation.

    By default the scheme delimits exactly the attributes flagged
    ``progressing`` in the schema; an explicit attribute list overrides
    that.
    """

    __slots__ = ("schema", "_delimited")

    def __init__(
        self, schema: Schema, delimited: Iterable[str] | None = None
    ) -> None:
        self.schema = schema
        if delimited is None:
            names = {schema[i].name for i in schema.progressing_indices()}
        else:
            names = set(delimited)
            for name in names:
                if name not in schema:
                    raise PatternError(
                        f"cannot delimit unknown attribute {name!r}"
                    )
            names = {schema.attribute(n).name for n in names}
        self._delimited = frozenset(names)

    @property
    def delimited_attributes(self) -> frozenset[str]:
        return self._delimited

    def is_delimited(self, attribute: str) -> bool:
        """True when ``attribute`` is covered by embedded punctuation."""
        return self.schema.attribute(attribute).name in self._delimited

    def supports(self, pattern: Pattern) -> bool:
        """True when feedback carrying ``pattern`` is supportable.

        A pattern is supportable when at least one of its constrained
        attributes is delimited: progress punctuation on that attribute will
        eventually subsume the guard, bounding predicate-state lifetime.
        The paper's example of *unsupportable* feedback -- "don't show bids
        more than $1.00" on a stream punctuated only by time -- fails this
        test because its only constrained attribute (amount) is never
        punctuated.
        """
        constrained = pattern.constrained_indices()
        if not constrained:
            return True
        return any(
            self.schema[i].name in self._delimited for i in constrained
        )

    def fully_supports(self, pattern: Pattern) -> bool:
        """Stricter check: *every* constrained attribute is delimited."""
        return all(
            self.schema[i].name in self._delimited
            for i in pattern.constrained_indices()
        )

    def __repr__(self) -> str:
        return (
            f"PunctuationScheme({self.schema.names}, "
            f"delimited={sorted(self._delimited)})"
        )


class ProgressPunctuator:
    """Emit periodic progress punctuation on one attribute of a stream.

    Tracks the maximum attribute value observed and, every ``interval`` of
    that attribute's domain, produces ``[*,...,<= high_watermark - grace,
    ...,*]``.  ``grace`` models permissible disorder: tuples may arrive up
    to ``grace`` behind the watermark, so the punctuation trails it.

    Typical use inside a source::

        punctuator = ProgressPunctuator(schema, "timestamp", interval=60.0)
        ...
        for punct in punctuator.observe(tuple_timestamp):
            emit(punct)
    """

    __slots__ = ("schema", "attribute", "interval", "grace",
                 "_high_watermark", "_next_boundary", "source")

    def __init__(
        self,
        schema: Schema,
        attribute: str,
        interval: float,
        *,
        grace: float = 0.0,
        origin: float = 0.0,
        source: str = "",
    ) -> None:
        if interval <= 0:
            raise PatternError(f"punctuation interval must be > 0: {interval}")
        if grace < 0:
            raise PatternError(f"grace must be >= 0: {grace}")
        self.schema = schema
        self.attribute = attribute
        self.interval = float(interval)
        self.grace = float(grace)
        self._high_watermark: float | None = None
        self._next_boundary = float(origin) + self.interval
        self.source = source

    @property
    def high_watermark(self) -> float | None:
        """Largest attribute value observed so far, or None initially."""
        return self._high_watermark

    def observe(self, value: Any) -> list[Punctuation]:
        """Record one observed value; return punctuations now due.

        Multiple punctuations are returned when the value jumps across
        several interval boundaries at once (bursty streams).
        """
        value = float(value)
        if self._high_watermark is None or value > self._high_watermark:
            self._high_watermark = value
        due: list[Punctuation] = []
        while (
            self._high_watermark is not None
            and self._high_watermark - self.grace >= self._next_boundary
        ):
            due.append(
                Punctuation.up_to(
                    self.schema,
                    self.attribute,
                    self._next_boundary,
                    inclusive=False,
                    source=self.source,
                )
            )
            self._next_boundary += self.interval
        return due

    def final(self) -> Punctuation:
        """Punctuation closing the whole stream (end of input)."""
        return Punctuation(
            Pattern.all_wildcards(len(self.schema), schema=self.schema),
            source=self.source,
        )

    def __repr__(self) -> str:
        return (
            f"ProgressPunctuator({self.attribute!r}, interval={self.interval}, "
            f"grace={self.grace}, hwm={self._high_watermark})"
        )
