"""Pattern atoms: per-attribute predicates inside a punctuation pattern.

A punctuation like ``[*, *, <='2008-12-08 9:00']`` (paper section 3.1) is a
conjunction of one *atom* per schema attribute.  Atoms come in three shapes:

* :class:`Wildcard` -- matches any value (``*``);
* finite-set atoms -- :class:`Equals` and :class:`InSet`;
* order atoms -- :class:`LessThan`, :class:`AtMost`, :class:`GreaterThan`,
  :class:`AtLeast` and :class:`Interval`.

All atoms support ``matches``, ``subsumes``, ``intersect`` and
``is_disjoint``; patterns lift these pointwise.  Subsumption may be
*conservative* on countable domains: ``InSet({1,2})`` is not recognised as
subsuming ``Interval(1, 2)`` even over integers, because the algebra treats
ordered domains as dense.  Conservative answers are always safe for the
feedback framework -- a guard that is released late or a propagation that is
skipped never violates Definition 1 or 2.

``None`` values (the paper's Example 3 has sensors reporting nulls) are
matched only by :class:`Wildcard`, by ``Equals(None)`` and by an ``InSet``
containing ``None``; order atoms never match ``None``.  Values of mutually
incomparable types likewise never match order atoms.  Both rules err on the
side of *not* matching, which for guards means *not* dropping a tuple --
again the safe direction.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import PatternError

__all__ = [
    "Atom",
    "Wildcard",
    "Equals",
    "InSet",
    "LessThan",
    "AtMost",
    "GreaterThan",
    "AtLeast",
    "Interval",
    "WILDCARD",
    "atom_from_literal",
]


class _NegInf:
    """Sentinel below every value (used for open lower bounds)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "-inf"

    def __reduce__(self) -> str:
        # Pickle by reference: atoms compare bounds with ``is NEG_INF``,
        # so unpickling (pages crossing a process boundary) must resolve
        # to this module's singleton, never construct a fresh instance.
        return "NEG_INF"


class _PosInf:
    """Sentinel above every value (used for open upper bounds)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "+inf"

    def __reduce__(self) -> str:
        return "POS_INF"


NEG_INF = _NegInf()
POS_INF = _PosInf()


def _compare(a: Any, b: Any) -> int | None:
    """Three-way compare with infinity sentinels; None when incomparable."""
    if a is NEG_INF:
        return 0 if b is NEG_INF else -1
    if b is NEG_INF:
        return 1
    if a is POS_INF:
        return 0 if b is POS_INF else 1
    if b is POS_INF:
        return -1
    try:
        if a == b:
            return 0
        if a < b:
            return -1
        if a > b:
            return 1
    except TypeError:
        return None
    return None


class Atom:
    """Base class for pattern atoms.

    Every concrete atom normalises itself to one of two internal forms so
    the binary operations need only three cases:

    * ``_members`` -- a frozenset, for finite-set atoms;
    * ``_bounds`` -- ``(lo, lo_inclusive, hi, hi_inclusive)``, for order
      atoms and the wildcard (whose bounds are infinite).
    """

    __slots__ = ()

    _members: frozenset | None = None
    _bounds: tuple[Any, bool, Any, bool] | None = None

    # -- matching ---------------------------------------------------------------

    def matches(self, value: Any) -> bool:
        """True when ``value`` satisfies this atom."""
        if self._members is not None:
            try:
                return value in self._members
            except TypeError:
                return False
        lo, lo_inc, hi, hi_inc = self._bounds  # type: ignore[misc]
        if value is None and not self.is_wildcard:
            return False
        if lo is NEG_INF and hi is POS_INF:
            return True
        if value is None:
            return False
        cmp_lo = _compare(value, lo)
        if cmp_lo is None or cmp_lo < 0 or (cmp_lo == 0 and not lo_inc):
            return False
        cmp_hi = _compare(value, hi)
        if cmp_hi is None or cmp_hi > 0 or (cmp_hi == 0 and not hi_inc):
            return False
        return True

    # -- structure --------------------------------------------------------------

    @property
    def is_wildcard(self) -> bool:
        """True for atoms that match every value."""
        if self._bounds is None:
            return False
        lo, _, hi, _ = self._bounds
        return lo is NEG_INF and hi is POS_INF

    @property
    def is_point(self) -> bool:
        """True when the atom admits exactly one value."""
        if self._members is not None:
            return len(self._members) == 1
        lo, lo_inc, hi, hi_inc = self._bounds  # type: ignore[misc]
        return lo_inc and hi_inc and _compare(lo, hi) == 0

    def point_value(self) -> Any:
        """The single admitted value (only valid when ``is_point``)."""
        if not self.is_point:
            raise PatternError(f"{self!r} is not a point atom")
        if self._members is not None:
            return next(iter(self._members))
        return self._bounds[0]  # type: ignore[index]

    # -- algebra -----------------------------------------------------------------

    def subsumes(self, other: "Atom") -> bool:
        """True when every value matched by ``other`` is matched by self.

        May answer False conservatively across finite/interval shapes on
        countable domains (see module docstring).
        """
        if self.is_wildcard:
            return True
        if other.is_wildcard:
            return False
        if other._members is not None:
            return all(self.matches(v) for v in other._members)
        if self._members is not None:
            # A finite set subsumes an interval only if that interval is a
            # single point contained in the set.
            return other.is_point and self.matches(other.point_value())
        s_lo, s_lo_inc, s_hi, s_hi_inc = self._bounds  # type: ignore[misc]
        o_lo, o_lo_inc, o_hi, o_hi_inc = other._bounds  # type: ignore[misc]
        cmp_lo = _compare(s_lo, o_lo)
        if cmp_lo is None:
            return False
        if cmp_lo > 0 or (cmp_lo == 0 and not s_lo_inc and o_lo_inc):
            return False
        cmp_hi = _compare(s_hi, o_hi)
        if cmp_hi is None:
            return False
        if cmp_hi < 0 or (cmp_hi == 0 and not s_hi_inc and o_hi_inc):
            return False
        return True

    def intersect(self, other: "Atom") -> "Atom | None":
        """The atom matching exactly the common values; None when empty."""
        if self.is_wildcard:
            return other
        if other.is_wildcard:
            return self
        if self._members is not None and other._members is not None:
            common = self._members & other._members
            return InSet(common) if common else None
        if self._members is not None:
            kept = frozenset(v for v in self._members if other.matches(v))
            return InSet(kept) if kept else None
        if other._members is not None:
            kept = frozenset(v for v in other._members if self.matches(v))
            return InSet(kept) if kept else None
        s_lo, s_lo_inc, s_hi, s_hi_inc = self._bounds  # type: ignore[misc]
        o_lo, o_lo_inc, o_hi, o_hi_inc = other._bounds  # type: ignore[misc]
        cmp_lo = _compare(s_lo, o_lo)
        cmp_hi = _compare(s_hi, o_hi)
        if cmp_lo is None or cmp_hi is None:
            raise PatternError(
                f"cannot intersect atoms over incomparable domains: "
                f"{self!r} and {other!r}"
            )
        if cmp_lo > 0:
            lo, lo_inc = s_lo, s_lo_inc
        elif cmp_lo < 0:
            lo, lo_inc = o_lo, o_lo_inc
        else:
            lo, lo_inc = s_lo, s_lo_inc and o_lo_inc
        if cmp_hi < 0:
            hi, hi_inc = s_hi, s_hi_inc
        elif cmp_hi > 0:
            hi, hi_inc = o_hi, o_hi_inc
        else:
            hi, hi_inc = s_hi, s_hi_inc and o_hi_inc
        cmp_bounds = _compare(lo, hi)
        if cmp_bounds is None or cmp_bounds > 0:
            return None
        if cmp_bounds == 0 and not (lo_inc and hi_inc):
            return None
        return Interval(lo, hi, lo_inclusive=lo_inc, hi_inclusive=hi_inc)

    def is_disjoint(self, other: "Atom") -> bool:
        """True when no value matches both atoms."""
        return self.intersect(other) is None

    # -- identity ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return (
            self._members == other._members and self._bounds == other._bounds
        )

    def __hash__(self) -> int:
        if self._members is not None:
            return hash(("members", self._members))
        lo, lo_inc, hi, hi_inc = self._bounds  # type: ignore[misc]
        key = (
            "bounds",
            "neg" if lo is NEG_INF else lo,
            lo_inc,
            "pos" if hi is POS_INF else hi,
            hi_inc,
        )
        return hash(key)


class Wildcard(Atom):
    """``*`` -- matches every value, including None."""

    __slots__ = ()
    _bounds = (NEG_INF, False, POS_INF, False)

    def __repr__(self) -> str:
        return "*"


WILDCARD = Wildcard()


class Equals(Atom):
    """``=v`` -- matches exactly one value (None allowed)."""

    __slots__ = ("_members", "value")

    def __init__(self, value: Any) -> None:
        self.value = value
        self._members = frozenset([value])

    def __repr__(self) -> str:
        return f"{self.value!r}"


class InSet(Atom):
    """``in {v1, v2, ...}`` -- matches a finite, non-empty set of values."""

    __slots__ = ("_members",)

    def __init__(self, values: Iterable[Any]) -> None:
        members = frozenset(values)
        if not members:
            raise PatternError("InSet atom requires at least one value")
        self._members = members

    @property
    def values(self) -> frozenset:
        return self._members

    def __repr__(self) -> str:
        inner = ",".join(repr(v) for v in sorted(self._members, key=repr))
        return f"in{{{inner}}}"


class LessThan(Atom):
    """``<v`` -- strictly below ``v``."""

    __slots__ = ("_bounds", "value")

    def __init__(self, value: Any) -> None:
        self.value = value
        self._bounds = (NEG_INF, False, value, False)

    def __repr__(self) -> str:
        return f"<{self.value!r}"


class AtMost(Atom):
    """``<=v`` -- at or below ``v``."""

    __slots__ = ("_bounds", "value")

    def __init__(self, value: Any) -> None:
        self.value = value
        self._bounds = (NEG_INF, False, value, True)

    def __repr__(self) -> str:
        return f"<={self.value!r}"


class GreaterThan(Atom):
    """``>v`` -- strictly above ``v``."""

    __slots__ = ("_bounds", "value")

    def __init__(self, value: Any) -> None:
        self.value = value
        self._bounds = (value, False, POS_INF, False)

    def __repr__(self) -> str:
        return f">{self.value!r}"


class AtLeast(Atom):
    """``>=v`` -- at or above ``v``."""

    __slots__ = ("_bounds", "value")

    def __init__(self, value: Any) -> None:
        self.value = value
        self._bounds = (value, True, POS_INF, False)

    def __repr__(self) -> str:
        return f">={self.value!r}"


class Interval(Atom):
    """A bounded range ``lo..hi`` with per-end inclusivity.

    ``lo``/``hi`` accept the module sentinels ``NEG_INF``/``POS_INF`` for
    half-open ranges; an interval that admits no value raises
    :class:`~repro.errors.PatternError` at construction.
    """

    __slots__ = ("_bounds",)

    def __init__(
        self,
        lo: Any,
        hi: Any,
        *,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> None:
        cmp = _compare(lo, hi)
        if cmp is None:
            raise PatternError(f"interval bounds {lo!r}..{hi!r} not comparable")
        if cmp > 0 or (cmp == 0 and not (lo_inclusive and hi_inclusive)):
            raise PatternError(f"empty interval {lo!r}..{hi!r}")
        self._bounds = (lo, lo_inclusive, hi, hi_inclusive)

    @property
    def lo(self) -> Any:
        return self._bounds[0]

    @property
    def hi(self) -> Any:
        return self._bounds[2]

    def __repr__(self) -> str:
        lo, lo_inc, hi, hi_inc = self._bounds
        left = "[" if lo_inc else "("
        right = "]" if hi_inc else ")"
        lo_text = "-inf" if lo is NEG_INF else repr(lo)
        hi_text = "+inf" if hi is POS_INF else repr(hi)
        return f"{left}{lo_text}..{hi_text}{right}"


def atom_from_literal(value: Any) -> Atom:
    """Coerce a convenience literal into an atom.

    ``"*"`` and ``None`` become the wildcard; an existing :class:`Atom`
    passes through; a (frozen)set becomes :class:`InSet`; anything else
    becomes :class:`Equals`.  Used by pattern constructors so call sites can
    write ``Pattern.build("*", 3, {1, 2})``.
    """
    if isinstance(value, Atom):
        return value
    if value is None or (isinstance(value, str) and value == "*"):
        return WILDCARD
    if isinstance(value, (set, frozenset)):
        return InSet(value)
    return Equals(value)
