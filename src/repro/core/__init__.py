"""The paper's contribution (system S3): feedback punctuation.

Layered on the substrate packages, :mod:`repro.core` defines:

* :class:`FeedbackPunctuation` and its three intents (section 3.4);
* :class:`GuardSet` -- the predicate state of exploitation, with
  punctuation-driven expiration (sections 4.3-4.4);
* :class:`PropagationPlanner` -- safe propagation per Definition 2;
* Definition 1 correctness checkers (:mod:`repro.core.correctness`);
* machine-checkable operator characterizations (Tables 1-2);
* the producer / exploiter / relayer role protocols and the feedback log.
"""

from repro.core.characterization import (
    Characterization,
    avg_characterization,
    min_characterization,
    CharacterizationRule,
    ConstraintShape,
    PropagationBehavior,
    SchemaPartition,
    count_characterization,
    join_characterization,
    max_characterization,
    sum_characterization,
)
from repro.core.correctness import (
    CorrectnessReport,
    check_correct_exploitation,
    max_exploitation,
    subset,
)
from repro.core.extended_correctness import (
    DemandedReport,
    DesiredReport,
    check_demanded_exploitation,
    check_desired_content,
    check_desired_prioritization,
)
from repro.core.feedback import (
    FeedbackIntent,
    FeedbackPunctuation,
    FlowControlKind,
    FlowControlPunctuation,
)
from repro.core.guards import Guard, GuardSet
from repro.core.propagation import PropagationPlan, PropagationPlanner
from repro.core.roles import (
    ExploitAction,
    FeedbackEvent,
    FeedbackExploiter,
    FeedbackLog,
    FeedbackProducer,
    FeedbackRelayer,
)

__all__ = [
    "Characterization",
    "CharacterizationRule",
    "ConstraintShape",
    "CorrectnessReport",
    "DemandedReport",
    "DesiredReport",
    "ExploitAction",
    "FeedbackEvent",
    "FeedbackExploiter",
    "FeedbackIntent",
    "FeedbackLog",
    "FeedbackProducer",
    "FeedbackPunctuation",
    "FeedbackRelayer",
    "FlowControlKind",
    "FlowControlPunctuation",
    "Guard",
    "GuardSet",
    "PropagationBehavior",
    "PropagationPlan",
    "PropagationPlanner",
    "SchemaPartition",
    "avg_characterization",
    "check_correct_exploitation",
    "check_demanded_exploitation",
    "check_desired_content",
    "check_desired_prioritization",
    "count_characterization",
    "join_characterization",
    "max_characterization",
    "max_exploitation",
    "min_characterization",
    "subset",
    "sum_characterization",
]
