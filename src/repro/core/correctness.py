"""Correct exploitation of assumed feedback (paper Definition 1).

An operator ``O`` with reference output ``SR`` (what it would produce with
no feedback) *correctly exploits* assumed punctuation ``f`` iff its actual
output ``S`` satisfies::

    SR - subset(SR, f)  ⊆  S  ⊆  SR

That is: exploitation may remove tuples **only** from the subset the
feedback describes, and may never invent tuples.  The null response
(``S = SR``) is correct; the maximum exploitation is
``SR - subset(SR, f)``.

Streams may contain duplicate tuples, so containment here is **multiset**
containment (a stricter reading than the paper's set notation -- if the
reference output contains a tuple twice and the feedback does not cover it,
the exploited output must also contain it twice).

These checkers power both the unit tests and the hypothesis property tests
that run live operators with and without feedback.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.punctuation.patterns import Pattern
from repro.stream.tuples import StreamTuple

__all__ = [
    "subset",
    "max_exploitation",
    "CorrectnessReport",
    "check_correct_exploitation",
]


def subset(stream: Iterable[StreamTuple], pattern: Pattern) -> list[StreamTuple]:
    """The paper's ``subset(stream, punctuation)`` over a finite stream."""
    return [t for t in stream if pattern.matches(t)]


def max_exploitation(
    reference: Sequence[StreamTuple], pattern: Pattern
) -> list[StreamTuple]:
    """``SR - subset(SR, f)``: the smallest output a correct exploiter may have."""
    return [t for t in reference if not pattern.matches(t)]


@dataclass
class CorrectnessReport:
    """Outcome of a Definition 1 check, with enough detail to debug.

    ``invented`` lists tuples present in the exploited output beyond their
    multiplicity in the reference output (violating ``S ⊆ SR``).
    ``wrongly_suppressed`` lists mandatory tuples that are missing
    (violating ``SR - subset(SR, f) ⊆ S``).  ``suppressed`` lists tuples
    legitimately removed (covered by the feedback), and ``exploitation``
    is the fraction of coverable tuples actually removed (0.0 = null
    response, 1.0 = maximum exploitation; None when nothing was coverable).
    """

    ok: bool
    invented: list[StreamTuple] = field(default_factory=list)
    wrongly_suppressed: list[StreamTuple] = field(default_factory=list)
    suppressed: list[StreamTuple] = field(default_factory=list)
    exploitation: float | None = None

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            rate = (
                "n/a" if self.exploitation is None
                else f"{self.exploitation:.0%}"
            )
            return (
                f"correct exploitation (suppressed {len(self.suppressed)} "
                f"coverable tuples, exploitation={rate})"
            )
        lines = ["INCORRECT exploitation:"]
        if self.invented:
            lines.append(f"  invented tuples: {self.invented[:5]}")
        if self.wrongly_suppressed:
            lines.append(
                f"  wrongly suppressed tuples: {self.wrongly_suppressed[:5]}"
            )
        return "\n".join(lines)


def _counter_minus(a: Counter, b: Counter) -> list[StreamTuple]:
    """Elements of multiset ``a`` exceeding their multiplicity in ``b``."""
    extra: list[StreamTuple] = []
    for element, count in a.items():
        overflow = count - b.get(element, 0)
        extra.extend([element] * max(0, overflow))
    return extra


def check_correct_exploitation(
    reference: Sequence[StreamTuple],
    exploited: Sequence[StreamTuple],
    pattern: Pattern,
) -> CorrectnessReport:
    """Check ``SR - subset(SR, f) ⊆ S ⊆ SR`` with multiset semantics.

    ``reference`` is SR (the no-feedback run), ``exploited`` is S (the run
    that received assumed feedback with ``pattern``).
    """
    ref_counts = Counter(reference)
    out_counts = Counter(exploited)

    invented = _counter_minus(out_counts, ref_counts)

    mandatory = Counter(max_exploitation(reference, pattern))
    wrongly_suppressed = _counter_minus(mandatory, out_counts)

    coverable = Counter(subset(reference, pattern))
    removed = _counter_minus(ref_counts, out_counts)
    # Removed tuples that are coverable count toward exploitation.
    suppressed = [t for t in removed if pattern.matches(t)]
    total_coverable = sum(coverable.values())
    exploitation = (
        len(suppressed) / total_coverable if total_coverable else None
    )

    ok = not invented and not wrongly_suppressed
    return CorrectnessReport(
        ok=ok,
        invented=invented,
        wrongly_suppressed=wrongly_suppressed,
        suppressed=suppressed,
        exploitation=exploitation,
    )
