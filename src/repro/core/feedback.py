"""Feedback punctuation: the paper's central mechanism.

A :class:`FeedbackPunctuation` travels *against* the stream direction, out
of band (on the control channel, never inside data pages), and carries two
things (paper section 3.2):

* a **pattern** describing the subset of tuples the feedback is about, and
* an **intent** suggesting what the receiver should do about that subset:

  ========  ========  =====================================================
  intent    notation  meaning
  ========  ========  =====================================================
  ASSUMED   ``¬[…]``  the issuer will ignore this subset; avoid producing
                      it (a hint -- a null response is still correct)
  DESIRED   ``?[…]``  prioritise production of this subset (must not change
                      the final result, only its timing/order)
  DEMANDED  ``![…]``  the issuer needs this subset now and will accept
                      partial/approximate results
  ========  ========  =====================================================

Feedback is final: the model has no retractions (paper section 4.4), so the
class offers no "cancel" constructor and :mod:`repro.core.guards` never
un-enacts a guard except through punctuation-driven expiration.

This module also defines :class:`FlowControlPunctuation`, the
*runtime-generated* sibling of :class:`FeedbackPunctuation`: where semantic
feedback steers **which** tuples antecedents produce, flow control steers
**how fast** they produce them.  The paper's pacing examples (section 2,
Example 2) throttle by dropping; flow-control punctuation instead pauses
and resumes upstream emission so bounded queues never overflow -- the
backpressure use of the same out-of-band upstream channel.  Unlike semantic
feedback it carries no pattern (it is about the whole stream on one edge)
and it *is* retractable: every ``pause`` is eventually cancelled by its
``resume``.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any

from repro.errors import FeedbackError
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema

__all__ = [
    "CheckpointPunctuation",
    "FeedbackIntent",
    "FeedbackPunctuation",
    "FlowControlKind",
    "FlowControlPunctuation",
    "RebalancePunctuation",
]

_feedback_counter = itertools.count()


class FeedbackIntent(enum.Enum):
    """The three intents of section 3.4, with the paper's prefix glyphs."""

    ASSUMED = "assumed"
    DESIRED = "desired"
    DEMANDED = "demanded"

    @property
    def glyph(self) -> str:
        return {"assumed": "¬", "desired": "?", "demanded": "!"}[self.value]

    @classmethod
    def from_glyph(cls, glyph: str) -> "FeedbackIntent":
        table = {"¬": cls.ASSUMED, "~": cls.ASSUMED,
                 "?": cls.DESIRED, "!": cls.DEMANDED}
        try:
            return table[glyph]
        except KeyError:
            raise FeedbackError(f"unknown feedback glyph {glyph!r}") from None


class FeedbackPunctuation:
    """An intent plus a pattern, stamped with provenance.

    ``issuer`` is the operator that produced the feedback, ``issued_at`` the
    (virtual) time of production; both exist for logging and for the
    experiments' provenance traces.  ``seq`` totally orders feedback
    messages.  ``hops`` counts propagation steps -- each relayer derives a
    new instance with ``hops + 1`` via :meth:`propagated`.

    Instances are immutable and hashable on (intent, pattern).
    """

    __slots__ = ("intent", "pattern", "issuer", "issued_at", "seq", "hops")

    is_punctuation = False  # feedback never flows inside data pages

    def __init__(
        self,
        intent: FeedbackIntent,
        pattern: Pattern,
        *,
        issuer: str = "",
        issued_at: float = 0.0,
        hops: int = 0,
    ) -> None:
        if pattern.is_all_wildcard and intent is FeedbackIntent.ASSUMED:
            raise FeedbackError(
                "assumed feedback with an all-wildcard pattern would "
                "suppress the entire stream; issue a query change instead"
            )
        object.__setattr__(self, "intent", intent)
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "issuer", issuer)
        object.__setattr__(self, "issued_at", float(issued_at))
        object.__setattr__(self, "seq", next(_feedback_counter))
        object.__setattr__(self, "hops", int(hops))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("FeedbackPunctuation is immutable")

    # Immutability blocks the default slot-state unpickling (it applies
    # state via ``setattr``); restore the slots explicitly -- feedback
    # crosses process boundaries as a pickled control payload in the
    # multiprocess engine, and provenance (issuer/seq/hops) must survive.
    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def assumed(cls, pattern: Pattern, **kw: Any) -> "FeedbackPunctuation":
        """``¬[pattern]`` -- avoid producing this subset."""
        return cls(FeedbackIntent.ASSUMED, pattern, **kw)

    @classmethod
    def desired(cls, pattern: Pattern, **kw: Any) -> "FeedbackPunctuation":
        """``?[pattern]`` -- prioritise this subset."""
        return cls(FeedbackIntent.DESIRED, pattern, **kw)

    @classmethod
    def demanded(cls, pattern: Pattern, **kw: Any) -> "FeedbackPunctuation":
        """``![pattern]`` -- produce this subset now, partials acceptable."""
        return cls(FeedbackIntent.DEMANDED, pattern, **kw)

    # -- derivation -------------------------------------------------------------

    def propagated(
        self,
        pattern: Pattern,
        *,
        relayer: str = "",
        at: float | None = None,
    ) -> "FeedbackPunctuation":
        """A new feedback one hop further upstream with a mapped pattern."""
        return FeedbackPunctuation(
            self.intent,
            pattern,
            issuer=relayer or self.issuer,
            issued_at=self.issued_at if at is None else at,
            hops=self.hops + 1,
        )

    def rebound(self, schema: Schema) -> "FeedbackPunctuation":
        """Same intent and atoms bound to another (same-arity) schema."""
        return FeedbackPunctuation(
            self.intent,
            self.pattern.with_schema(schema),
            issuer=self.issuer,
            issued_at=self.issued_at,
            hops=self.hops,
        )

    # -- semantics --------------------------------------------------------------

    def concerns(self, element: Any) -> bool:
        """True when ``element`` is in the subset this feedback describes."""
        return self.pattern.matches(element)

    @property
    def is_assumed(self) -> bool:
        return self.intent is FeedbackIntent.ASSUMED

    @property
    def is_desired(self) -> bool:
        return self.intent is FeedbackIntent.DESIRED

    @property
    def is_demanded(self) -> bool:
        return self.intent is FeedbackIntent.DEMANDED

    # -- identity ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeedbackPunctuation):
            return NotImplemented
        return self.intent is other.intent and self.pattern == other.pattern

    def __hash__(self) -> int:
        return hash((self.intent, self.pattern))

    def __repr__(self) -> str:
        return f"{self.intent.glyph}{self.pattern!r}"


class FlowControlKind(enum.Enum):
    """The two flow-control verbs, with display glyphs.

    ``PAUSE`` (``⊣``) -- the consumer's queue crossed its high-water mark;
    suspend emission on this edge.  ``RESUME`` (``⊢``) -- the queue drained
    to its low-water mark; emission may continue.
    """

    PAUSE = "pause"
    RESUME = "resume"

    @property
    def glyph(self) -> str:
        return {"pause": "⊣", "resume": "⊢"}[self.value]


class FlowControlPunctuation:
    """Runtime-generated feedback about *rate*: pause or resume an edge.

    Travels upstream on the control channel exactly like
    :class:`FeedbackPunctuation` (out of band, high priority, delivered
    with ``control_latency`` arrival semantics), but is issued by the
    consumer's *runtime* when a bounded :class:`~repro.stream.queues.
    DataQueue` crosses a watermark -- no operator ever constructs one in
    normal operation.

    ``edge`` names the queue the signal is about (``"select->avg[0]"``);
    ``issuer`` is the consumer whose runtime spoke; ``occupancy`` records
    the queue depth at signalling time (for diagnostics and the
    backpressure benchmark).  Instances are immutable.
    """

    __slots__ = ("kind", "edge", "issuer", "issued_at", "occupancy", "seq")

    is_punctuation = False  # flow control never flows inside data pages

    def __init__(
        self,
        kind: FlowControlKind,
        edge: str,
        *,
        issuer: str = "",
        issued_at: float = 0.0,
        occupancy: int = 0,
    ) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "edge", edge)
        object.__setattr__(self, "issuer", issuer)
        object.__setattr__(self, "issued_at", float(issued_at))
        object.__setattr__(self, "occupancy", int(occupancy))
        object.__setattr__(self, "seq", next(_feedback_counter))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("FlowControlPunctuation is immutable")

    # Same explicit slot restore as FeedbackPunctuation: pause/resume
    # signals travel between worker processes in the multiprocess engine.
    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def pause(cls, edge: str, **kw: Any) -> "FlowControlPunctuation":
        """``⊣[edge]`` -- suspend emission into this queue."""
        return cls(FlowControlKind.PAUSE, edge, **kw)

    @classmethod
    def resume(cls, edge: str, **kw: Any) -> "FlowControlPunctuation":
        """``⊢[edge]`` -- emission into this queue may continue."""
        return cls(FlowControlKind.RESUME, edge, **kw)

    # -- semantics --------------------------------------------------------------

    @property
    def is_pause(self) -> bool:
        return self.kind is FlowControlKind.PAUSE

    @property
    def is_resume(self) -> bool:
        return self.kind is FlowControlKind.RESUME

    def __repr__(self) -> str:
        return f"{self.kind.glyph}[{self.edge}@{self.occupancy}]"


class CheckpointPunctuation:
    """A Chandy-Lamport checkpoint marker riding the *data* plane.

    The third punctuation family: where :class:`FeedbackPunctuation`
    steers *which* tuples antecedents produce and
    :class:`FlowControlPunctuation` steers *how fast*, a checkpoint
    marker asks every operator it passes to make its state *durable*.
    Unlike its two siblings it flows **in band** -- inside data pages,
    with the stream direction (``is_punctuation`` is True) -- because
    consistency demands it: the marker must arrive *after* every
    pre-checkpoint tuple on each edge, and only the data queue preserves
    that order (control messages are deliberately high priority and
    would overtake queued data, tearing the cut).

    ``epoch`` numbers the checkpoint (markers of one epoch, released at
    every source, sweep the plan as one consistent cut); ``source`` and
    ``offset`` record which source injected this marker and how many
    stream elements it had replayed when it did -- the replay position
    recovery rewinds to.  Instances are immutable; the explicit
    slot-state pickling mirrors the siblings because markers cross the
    multiprocess engine's columnar wire inside encoded pages.
    """

    __slots__ = ("epoch", "source", "offset", "issued_at", "seq")

    is_punctuation = True  # markers flow inside data pages, in order

    def __init__(
        self,
        epoch: int,
        *,
        source: str = "",
        offset: int = 0,
        issued_at: float = 0.0,
    ) -> None:
        object.__setattr__(self, "epoch", int(epoch))
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "offset", int(offset))
        object.__setattr__(self, "issued_at", float(issued_at))
        object.__setattr__(self, "seq", next(_feedback_counter))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("CheckpointPunctuation is immutable")

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __repr__(self) -> str:
        return f"⌖[epoch={self.epoch} {self.source}@{self.offset}]"


class RebalancePunctuation:
    """A re-partitioning marker riding the *data* plane.

    The fourth punctuation family: elasticity's cut marker.  When the
    elastic controller decides to move keys between shard lanes, the
    ``Partition`` broadcasts a ``cut`` marker down every lane.  Like
    :class:`CheckpointPunctuation` it flows **in band** (inside data
    pages, ``is_punctuation`` is True) because the cut must arrive
    *after* every tuple routed under the old table on each lane --
    only the data queue preserves that order.

    ``phase`` walks the two-phase migration protocol:

    ``cut``
        lane operators extract the state of moved keys and deposit it
        into the shared :class:`~repro.elasticity.rebalance.RebalanceRecord`;
        the ``ShardMerge`` counts cut arrivals and acks the partition.
    ``install``
        lane operators claim deposits destined for them and merge the
        state in; the merge re-arms its frontier bookkeeping.
    ``restore``
        the abort path -- a run finished while the cut was in flight,
        so each lane re-installs its *own* deposits and the old routing
        table stays live.

    ``epoch`` numbers the rebalance, ``issuer`` is the partition, and
    ``record`` carries the shared (lock-guarded on concurrent engines)
    deposit ledger.  The record travels by reference: rebalancing is
    declined on the multiprocess engine, so markers never cross a
    process boundary with a live record attached.
    """

    __slots__ = ("epoch", "phase", "issuer", "record", "issued_at", "seq")

    is_punctuation = True  # markers flow inside data pages, in order

    def __init__(
        self,
        epoch: int,
        phase: str,
        *,
        issuer: str = "",
        record: Any = None,
        issued_at: float = 0.0,
    ) -> None:
        if phase not in ("cut", "install", "restore"):
            raise FeedbackError(
                f"unknown rebalance phase {phase!r}; expected "
                "'cut', 'install' or 'restore'"
            )
        object.__setattr__(self, "epoch", int(epoch))
        object.__setattr__(self, "phase", phase)
        object.__setattr__(self, "issuer", issuer)
        object.__setattr__(self, "record", record)
        object.__setattr__(self, "issued_at", float(issued_at))
        object.__setattr__(self, "seq", next(_feedback_counter))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("RebalancePunctuation is immutable")

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __repr__(self) -> str:
        return f"⇄[epoch={self.epoch} {self.phase} from={self.issuer}]"
