"""Safe propagation of feedback through operator schemas (Definition 2).

Relaying feedback upstream requires translating a pattern on an operator's
*output* schema into patterns on its *input* schemas.  The translation is
only safe when exploitation by an antecedent cannot suppress tuples outside
the subset the original feedback describes (paper Definition 2).

The planner works from :class:`~repro.stream.schema.SchemaMapping` lineage:

* A pattern may be pushed to input *i* iff **every** constrained output
  attribute has an *exact* origin in input *i*.  If some constrained
  attribute is exclusive to another input (or is computed, like an
  average), a tuple of input *i* matching the partial pattern might still
  produce output tuples that do *not* match the full feedback -- the
  paper's ``¬[50,*,*,50]`` example, which has no safe propagation.
* Join attributes have exact origins in both inputs, so ``¬[*,j,*]``
  propagates to both sides (Table 2, row 1).

This module handles schema-level (state-independent) propagation.  Some
operators add *state-dependent* propagation on top -- e.g. COUNT translating
``¬[*,>=a]`` into the concrete set of groups currently matching (Table 1,
row 3); that logic lives in the operators themselves and is catalogued by
:mod:`repro.core.characterization`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.feedback import FeedbackPunctuation
from repro.punctuation.atoms import Atom, WILDCARD
from repro.punctuation.patterns import Pattern
from repro.stream.schema import SchemaMapping

__all__ = ["PropagationPlan", "PropagationPlanner"]


@dataclass(frozen=True)
class PropagationPlan:
    """The result of planning: per-input patterns that are safe to send.

    ``per_input`` maps input index -> pattern on that input's schema.  An
    empty mapping means no safe propagation exists.  ``blocked_inputs``
    explains, per skipped input, which constrained output attribute broke
    safety (diagnostics for tests and logging).
    """

    per_input: dict[int, Pattern] = field(default_factory=dict)
    blocked_inputs: dict[int, str] = field(default_factory=dict)

    @property
    def propagatable(self) -> bool:
        return bool(self.per_input)

    def __repr__(self) -> str:
        parts = [f"input {i}: {p!r}" for i, p in sorted(self.per_input.items())]
        if not parts:
            return "PropagationPlan(none safe)"
        return f"PropagationPlan({'; '.join(parts)})"


class PropagationPlanner:
    """Computes safe propagation plans for one operator's schema mapping."""

    __slots__ = ("mapping",)

    def __init__(self, mapping: SchemaMapping) -> None:
        self.mapping = mapping

    def plan(self, pattern: Pattern) -> PropagationPlan:
        """Translate an output-schema pattern into safe per-input patterns.

        The pattern must have the mapping's output arity.  Patterns with no
        constrained attribute are not propagated (an all-wildcard feedback
        carries no actionable subset).
        """
        out_schema = self.mapping.output_schema
        constrained = pattern.constrained_indices()
        per_input: dict[int, Pattern] = {}
        blocked: dict[int, str] = {}
        if not constrained:
            return PropagationPlan({}, {})
        for input_index, input_schema in enumerate(self.mapping.input_schemas):
            atoms: list[Atom] = [WILDCARD] * len(input_schema)
            safe = True
            for out_pos in constrained:
                out_name = out_schema[out_pos].name
                origin = self.mapping.exact_origin_in(out_name, input_index)
                if origin is None:
                    blocked[input_index] = out_name
                    safe = False
                    break
                in_pos = input_schema.index_of(origin.input_attribute)
                existing = atoms[in_pos]
                atom = pattern.atoms[out_pos]
                if not existing.is_wildcard:
                    joint = existing.intersect(atom)
                    if joint is None:
                        # Two output constraints map to one input attribute
                        # with an empty intersection: the feedback matches no
                        # tuple producible from this input, so there is
                        # nothing to suppress here.
                        safe = False
                        blocked[input_index] = out_name
                        break
                    atom = joint
                atoms[in_pos] = atom
            if safe:
                per_input[input_index] = Pattern(atoms, schema=input_schema)
        return PropagationPlan(per_input, blocked)

    def propagate(
        self,
        feedback: FeedbackPunctuation,
        *,
        relayer: str = "",
        at: float | None = None,
    ) -> dict[int, FeedbackPunctuation]:
        """Plan and wrap: per-input feedback ready for the control channel."""
        plan = self.plan(feedback.pattern)
        return {
            i: feedback.propagated(p, relayer=relayer, at=at)
            for i, p in plan.per_input.items()
        }
