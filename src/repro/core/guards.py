"""Guards: the predicate state created by enacting assumed feedback.

Exploiting assumed punctuation means installing *guards* (paper section
4.3): an **input guard** drops matching tuples before computation; an
**output guard** suppresses matching results after computation.  Guards are
predicate state, and section 4.4 warns that such state must not accumulate.
The supportability story ties guard lifetime to embedded punctuation:
when a punctuation arrives whose completed subset *covers* a guard's
pattern, no future tuple can match the guard, so the guard is released.

:class:`GuardSet` maintains active guards, answers ``blocks(tuple)``,
expires guards against punctuation, and keeps drop counters for metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.feedback import FeedbackPunctuation
from repro.punctuation.embedded import Punctuation
from repro.punctuation.patterns import Pattern

__all__ = ["Guard", "GuardSet"]


@dataclass
class Guard:
    """One active guard predicate.

    ``origin`` records the feedback that installed the guard (None for
    guards installed unilaterally by an operator, e.g. MAX's local input
    guard in section 3.5).  ``drops`` counts tuples suppressed by this
    guard -- the raw material of the experiments' savings numbers.
    """

    pattern: Pattern
    origin: FeedbackPunctuation | None = None
    enacted_at: float = 0.0
    drops: int = 0
    released: bool = False

    def blocks(self, element: Any) -> bool:
        """True when ``element`` matches the guard (and should be dropped)."""
        return not self.released and self.pattern.matches(element)

    def __repr__(self) -> str:
        state = "released" if self.released else f"drops={self.drops}"
        return f"Guard({self.pattern!r}, {state})"


class GuardSet:
    """The active guards on one port (input or output) of an operator.

    Subsumption-aware: adding a guard already covered by an active guard is
    a no-op, and adding a guard that covers existing guards retires them.
    This keeps the set minimal, which both bounds predicate state and makes
    the per-guard drop counters meaningful.
    """

    __slots__ = ("name", "_guards", "total_drops", "guards_installed",
                 "guards_expired")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._guards: list[Guard] = []
        self.total_drops = 0
        self.guards_installed = 0
        self.guards_expired = 0

    # -- installation -------------------------------------------------------------

    def install(
        self,
        pattern: Pattern,
        *,
        origin: FeedbackPunctuation | None = None,
        at: float = 0.0,
    ) -> Guard | None:
        """Install a guard for ``pattern``; return it (None when redundant)."""
        for guard in self._guards:
            if guard.pattern.subsumes(pattern):
                return None  # already covered
        self._guards = [
            g for g in self._guards if not pattern.subsumes(g.pattern)
        ]
        guard = Guard(pattern=pattern, origin=origin, enacted_at=at)
        self._guards.append(guard)
        self.guards_installed += 1
        return guard

    # -- filtering ---------------------------------------------------------------

    def blocks(self, element: Any) -> bool:
        """True when any active guard matches ``element``.

        Increments drop counters as a side effect, because a True answer
        means the caller is dropping the element.
        """
        for guard in self._guards:
            if guard.blocks(element):
                guard.drops += 1
                self.total_drops += 1
                return True
        return False

    def would_block(self, element: Any) -> bool:
        """Like :meth:`blocks` but without touching the counters."""
        return any(g.blocks(element) for g in self._guards)

    def filter_batch(self, batch: list) -> tuple[list, list]:
        """Split a run of data tuples into ``(kept, dropped)`` in one pass.

        The batch counterpart of :meth:`blocks`, used by the page-batched
        operator path: each guard's non-wildcard atoms (its constrained
        *columns*, see :meth:`~repro.punctuation.patterns.Pattern.
        constrained`) are hoisted once per batch, then evaluated
        positionally against each tuple's value array.  That skips the
        per-element ``Pattern.matches`` machinery -- arity check,
        wildcard-atom sweeps, generator dispatch -- which dominates the
        guard-heavy profile.  Semantics match :meth:`blocks` exactly: the
        first matching guard (in installation order) takes the drop and
        its counter.
        """
        guards = self._guards
        if not guards:
            return batch, []
        specs = [
            (g, tuple((i, a.matches) for i, a in g.pattern.constrained()),
             g.pattern.arity)
            for g in guards if not g.released
        ]
        if not specs:
            return batch, []
        kept: list = []
        dropped: list = []
        keep = kept.append
        drop = dropped.append
        for element in batch:
            values = element.values
            n = len(values)
            for guard, spec, arity in specs:
                if n != arity:
                    # Preserve blocks()'s error behaviour (via matches()).
                    guard.pattern.matches(element)
                    continue
                for index, matches in spec:
                    if not matches(values[index]):
                        break
                else:
                    guard.drops += 1
                    drop(element)
                    break
            else:
                keep(element)
        self.total_drops += len(dropped)
        return kept, dropped

    # -- expiration -----------------------------------------------------------------

    def expire_with(self, punctuation: Punctuation) -> list[Guard]:
        """Release guards whose subset the punctuation declares complete.

        A guard can be dropped once no future tuple can match it, i.e. when
        the punctuation's completed subset subsumes the guard pattern.
        Returns the released guards (mainly for logging and tests).
        """
        released: list[Guard] = []
        surviving: list[Guard] = []
        for guard in self._guards:
            if punctuation.pattern.subsumes(guard.pattern):
                guard.released = True
                released.append(guard)
                self.guards_expired += 1
            else:
                surviving.append(guard)
        self._guards = surviving
        return released

    def clear(self) -> None:
        """Drop all guards (end of stream teardown)."""
        self._guards.clear()

    # -- inspection -------------------------------------------------------------------

    @property
    def active(self) -> int:
        return len(self._guards)

    def __iter__(self) -> Iterator[Guard]:
        return iter(self._guards)

    def __len__(self) -> int:
        return len(self._guards)

    def covers(self, element: Any) -> bool:
        """Alias of :meth:`would_block` for read-only call sites."""
        return self.would_block(element)

    def __repr__(self) -> str:
        return (
            f"GuardSet({self.name!r}, active={len(self._guards)}, "
            f"drops={self.total_drops})"
        )
