"""Operator characterizations: machine-checkable Tables 1 and 2.

Section 4.3 of the paper characterises operators by partitioning their
output schema into named groups (``g``/``a`` for COUNT; ``L``/``J``/``R``
for JOIN) and tabulating, per class of assumed feedback, the correct local
exploitation and the safe propagation.  This module encodes those tables as
data so that:

* the table benchmarks (``benchmarks/test_table1_count.py`` and
  ``test_table2_join.py``) can *render* them exactly as the paper prints
  them, and
* the conformance tests can *verify* that the live operators in
  :mod:`repro.operators` take precisely the tabulated actions.

The classification is shape-based: a feedback pattern is assigned to the
first rule whose per-group constraint shapes it matches, where a shape is
EXACT (``=v`` / ``in{…}``), LOWER (``>=v`` / ``>v``), UPPER (``<=v`` /
``<v``) or RANGE (a bounded interval).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.roles import ExploitAction
from repro.errors import FeedbackError
from repro.punctuation.atoms import (
    AtLeast,
    AtMost,
    Atom,
    Equals,
    GreaterThan,
    InSet,
    Interval,
    LessThan,
)
from repro.punctuation.patterns import Pattern
from repro.stream.schema import Schema

__all__ = [
    "ConstraintShape",
    "PropagationBehavior",
    "SchemaPartition",
    "CharacterizationRule",
    "Characterization",
    "avg_characterization",
    "count_characterization",
    "join_characterization",
    "max_characterization",
    "min_characterization",
    "sum_characterization",
]


class ConstraintShape(enum.Enum):
    """The shape of the constraint a pattern places on one group."""

    NONE = "none"      # all atoms in the group are wildcards
    EXACT = "exact"    # equality / set membership / point interval
    LOWER = "lower"    # >= or >   (lower-bounded, unbounded above)
    UPPER = "upper"    # <= or <   (upper-bounded, unbounded below)
    RANGE = "range"    # bounded on both sides
    ANY = "any"        # rule wildcard: matches every non-NONE shape

    @classmethod
    def of_atom(cls, atom: Atom) -> "ConstraintShape":
        if atom.is_wildcard:
            return cls.NONE
        if isinstance(atom, (Equals, InSet)) or atom.is_point:
            return cls.EXACT
        if isinstance(atom, (AtLeast, GreaterThan)):
            return cls.LOWER
        if isinstance(atom, (AtMost, LessThan)):
            return cls.UPPER
        if isinstance(atom, Interval):
            return cls.RANGE
        return cls.EXACT if atom.is_point else cls.RANGE

    def accepts(self, observed: "ConstraintShape") -> bool:
        """True when a rule requiring self matches an ``observed`` shape."""
        if self is ConstraintShape.ANY:
            return observed is not ConstraintShape.NONE
        return self is observed


class PropagationBehavior(enum.Enum):
    """How a rule propagates feedback upstream."""

    NONE = "none"                        # exploitation is output-local
    MAPPED = "mapped"                    # schema-level mapping (planner)
    STATE_DEPENDENT = "state_dependent"  # translate via current state (G)


@dataclass(frozen=True)
class SchemaPartition:
    """Named groups over an output schema (``g``/``a``, ``L``/``J``/``R``).

    Groups must cover the schema and be disjoint, mirroring the paper's
    "meaningful partition of the output schema".
    """

    schema: Schema
    groups: dict[str, tuple[str, ...]]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for group, names in self.groups.items():
            for name in names:
                if name not in self.schema:
                    raise FeedbackError(
                        f"partition group {group!r} mentions unknown "
                        f"attribute {name!r}"
                    )
                if name in seen:
                    raise FeedbackError(
                        f"attribute {name!r} appears in two partition groups"
                    )
                seen.add(name)
        missing = set(self.schema.names) - seen
        if missing:
            raise FeedbackError(
                f"partition does not cover attributes {sorted(missing)}"
            )

    def group_indices(self, group: str) -> tuple[int, ...]:
        return tuple(
            self.schema.index_of(n) for n in self.groups[group]
        )

    def shape_of(self, pattern: Pattern, group: str) -> ConstraintShape:
        """Aggregate constraint shape a pattern places on one group.

        Groups with several attributes report EXACT only if every
        constrained atom is exact; mixed shapes degrade to RANGE.
        """
        shapes = {
            ConstraintShape.of_atom(pattern.atoms[i])
            for i in self.group_indices(group)
        }
        shapes.discard(ConstraintShape.NONE)
        if not shapes:
            return ConstraintShape.NONE
        if len(shapes) == 1:
            return next(iter(shapes))
        return ConstraintShape.RANGE

    def shapes_of(self, pattern: Pattern) -> dict[str, ConstraintShape]:
        return {g: self.shape_of(pattern, g) for g in self.groups}


@dataclass(frozen=True)
class CharacterizationRule:
    """One row of a characterization table.

    ``label`` is the paper's notation (``¬[g,*]``), ``condition`` the
    required shape per group (groups omitted default to NONE), ``exploit``
    the local actions, ``propagation`` the behaviour plus target inputs and
    a short rendering of what is sent (``¬[*, j]  -> left``).
    """

    label: str
    condition: dict[str, ConstraintShape]
    exploit: tuple[ExploitAction, ...]
    propagation: PropagationBehavior
    propagation_targets: tuple[int, ...] = ()
    propagation_note: str = ""
    exploit_note: str = ""

    def matches(
        self, shapes: dict[str, ConstraintShape]
    ) -> bool:
        for group, observed in shapes.items():
            required = self.condition.get(group, ConstraintShape.NONE)
            if not required.accepts(observed):
                return False
        return True


@dataclass
class Characterization:
    """A full characterization table for one operator."""

    operator: str
    partition: SchemaPartition
    rules: list[CharacterizationRule] = field(default_factory=list)

    def classify(self, pattern: Pattern) -> CharacterizationRule:
        """The first rule whose condition matches the pattern's shapes.

        Raises :class:`~repro.errors.FeedbackError` when no rule applies --
        callers treat that as "exhibit the null response", which Definition
        1 always permits.
        """
        shapes = self.partition.shapes_of(pattern)
        for rule in self.rules:
            if rule.matches(shapes):
                return rule
        raise FeedbackError(
            f"{self.operator}: no characterization rule for pattern "
            f"{pattern!r} (shapes {shapes})"
        )

    def classify_or_none(self, pattern: Pattern) -> CharacterizationRule | None:
        try:
            return self.classify(pattern)
        except FeedbackError:
            return None

    def render_table(self) -> str:
        """Plain-text rendering in the paper's three-column layout."""
        headers = ("Punctuation", "Local exploit", "Propagation")
        rows: list[tuple[str, str, str]] = []
        for rule in self.rules:
            exploit_lines = [a.value.replace("_", " ") for a in rule.exploit]
            if rule.exploit_note:
                exploit_lines.append(f"({rule.exploit_note})")
            if rule.propagation is PropagationBehavior.NONE:
                prop = "-"
            else:
                prop = rule.propagation_note or rule.propagation.value
            rows.append((rule.label, "; ".join(exploit_lines) or "-", prop))
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(3)
        ]
        def fmt(row: Sequence[str]) -> str:
            return " | ".join(c.ljust(widths[i]) for i, c in enumerate(row))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"Characterization for {self.operator}", fmt(headers), sep]
        lines.extend(fmt(r) for r in rows)
        return "\n".join(lines)


def count_characterization(
    schema: Schema,
    group_attributes: Sequence[str],
    count_attribute: str,
) -> Characterization:
    """Table 1: the characterization of windowed COUNT.

    Output schema partition ``(g, a)``: ``g`` the grouping attributes,
    ``a`` the count.  COUNT's result grows monotonically, which is why
    lower-bounded feedback on ``a`` admits aggressive purging while
    upper-bounded feedback only allows an output guard.
    """
    partition = SchemaPartition(
        schema,
        {"g": tuple(group_attributes), "a": (count_attribute,)},
    )
    rules = [
        CharacterizationRule(
            label="¬[g, *]",
            condition={"g": ConstraintShape.EXACT},
            exploit=(ExploitAction.PURGE_STATE, ExploitAction.GUARD_INPUT),
            exploit_note="remove group g from local state; guard input (g)",
            propagation=PropagationBehavior.MAPPED,
            propagation_targets=(0,),
            propagation_note="propagate g in terms of input schema",
        ),
        CharacterizationRule(
            label="¬[*, a]",
            condition={"a": ConstraintShape.EXACT},
            exploit=(ExploitAction.GUARD_OUTPUT,),
            exploit_note="guard output (a)",
            propagation=PropagationBehavior.NONE,
        ),
        CharacterizationRule(
            label="¬[*, >=a] / ¬[*, >a]",
            condition={"a": ConstraintShape.LOWER},
            exploit=(
                ExploitAction.PURGE_STATE,
                ExploitAction.GUARD_INPUT,
                ExploitAction.GUARD_OUTPUT,
            ),
            exploit_note=(
                "G <- group ids in local state matching the predicate; "
                "purge state (G); guard input (G)"
            ),
            propagation=PropagationBehavior.STATE_DEPENDENT,
            propagation_targets=(0,),
            propagation_note="propagate G in terms of input schema",
        ),
        CharacterizationRule(
            label="¬[*, <=a] / ¬[*, <a]",
            condition={"a": ConstraintShape.UPPER},
            exploit=(ExploitAction.GUARD_OUTPUT,),
            exploit_note="guard output (<=a or <a)",
            propagation=PropagationBehavior.NONE,
        ),
    ]
    return Characterization("COUNT", partition, rules)


def join_characterization(
    schema: Schema,
    left_attributes: Sequence[str],
    join_attributes: Sequence[str],
    right_attributes: Sequence[str],
) -> Characterization:
    """Table 2: the characterization of symmetric hash JOIN.

    Output partition ``(L, J, R)``.  Feedback on join attributes reaches
    both inputs; feedback exclusive to one side reaches that side; feedback
    constraining both exclusive sides at once has **no** safe propagation
    and exploitation degrades to an output guard (the ``¬[l,*,r]`` row).
    """
    partition = SchemaPartition(
        schema,
        {
            "L": tuple(left_attributes),
            "J": tuple(join_attributes),
            "R": tuple(right_attributes),
        },
    )
    rules = [
        CharacterizationRule(
            label="¬[*, j∈J, *]",
            condition={"J": ConstraintShape.EXACT},
            exploit=(
                ExploitAction.PURGE_STATE,
                ExploitAction.GUARD_INPUT,
            ),
            exploit_note="purge matching tuples from both hash tables; guard input",
            propagation=PropagationBehavior.MAPPED,
            propagation_targets=(0, 1),
            propagation_note="propagate ¬[*, j] to left and ¬[j, *] to right",
        ),
        CharacterizationRule(
            label="¬[l∈L, *, *]",
            condition={"L": ConstraintShape.EXACT},
            exploit=(
                ExploitAction.PURGE_STATE,
                ExploitAction.GUARD_INPUT,
            ),
            exploit_note="purge matching tuples from left hash table; guard input",
            propagation=PropagationBehavior.MAPPED,
            propagation_targets=(0,),
            propagation_note="propagate ¬[l, *] to left input",
        ),
        CharacterizationRule(
            label="¬[*, *, r∈R]",
            condition={"R": ConstraintShape.EXACT},
            exploit=(
                ExploitAction.PURGE_STATE,
                ExploitAction.GUARD_INPUT,
            ),
            exploit_note="purge matching tuples from right hash table; guard input",
            propagation=PropagationBehavior.MAPPED,
            propagation_targets=(1,),
            propagation_note="propagate ¬[*, r] to right input",
        ),
        CharacterizationRule(
            label="¬[l∈L, *, r∈R]",
            condition={"L": ConstraintShape.EXACT, "R": ConstraintShape.EXACT},
            exploit=(ExploitAction.GUARD_OUTPUT,),
            exploit_note="guard output (no safe propagation exists)",
            propagation=PropagationBehavior.NONE,
        ),
    ]
    return Characterization("JOIN", partition, rules)


def max_characterization(
    schema: Schema,
    group_attributes: Sequence[str],
    max_attribute: str,
) -> Characterization:
    """Characterization of windowed MAX (paper section 3.5 narrative).

    ``¬[*, >=a]`` lets MAX close every open window whose partial aggregate
    already matches (the aggregate can only grow, so the final result is
    certain to match) *and* mount a local input guard so fresh tuples do
    not recreate undesired windows before upstream reacts.
    """
    partition = SchemaPartition(
        schema,
        {"g": tuple(group_attributes), "a": (max_attribute,)},
    )
    rules = [
        CharacterizationRule(
            label="¬[g, *]",
            condition={"g": ConstraintShape.EXACT},
            exploit=(ExploitAction.PURGE_STATE, ExploitAction.GUARD_INPUT),
            exploit_note="remove group g from local state; guard input (g)",
            propagation=PropagationBehavior.MAPPED,
            propagation_targets=(0,),
            propagation_note="propagate g in terms of input schema",
        ),
        CharacterizationRule(
            label="¬[*, >=a] / ¬[*, >a]",
            condition={"a": ConstraintShape.LOWER},
            exploit=(
                ExploitAction.CLOSE_WINDOWS,
                ExploitAction.GUARD_INPUT,
                ExploitAction.GUARD_OUTPUT,
            ),
            exploit_note=(
                "close open windows whose partial max matches; "
                "guard input on the value attribute"
            ),
            propagation=PropagationBehavior.MAPPED,
            propagation_targets=(0,),
            propagation_note="propagate value predicate to input",
        ),
        CharacterizationRule(
            label="¬[*, <=a] / ¬[*, <a]",
            condition={"a": ConstraintShape.UPPER},
            exploit=(ExploitAction.GUARD_OUTPUT,),
            exploit_note="guard output only (partial max may still grow past a)",
            propagation=PropagationBehavior.NONE,
        ),
        CharacterizationRule(
            label="¬[*, a]",
            condition={"a": ConstraintShape.EXACT},
            exploit=(ExploitAction.GUARD_OUTPUT,),
            exploit_note="guard output (a)",
            propagation=PropagationBehavior.NONE,
        ),
    ]
    return Characterization("MAX", partition, rules)


def avg_characterization(
    schema: Schema,
    group_attributes: Sequence[str],
    avg_attribute: str,
) -> Characterization:
    """Characterization of windowed AVERAGE (section 3.5's running example).

    The average is not monotone in either direction (the partial-51
    example: future tuples can drag it below 50), so every value-side
    class degrades to an output guard; group feedback purges and relays
    exactly like COUNT's first row.
    """
    partition = SchemaPartition(
        schema,
        {"g": tuple(group_attributes), "a": (avg_attribute,)},
    )
    rules = [
        CharacterizationRule(
            label="¬[g, *]",
            condition={"g": ConstraintShape.EXACT},
            exploit=(ExploitAction.PURGE_STATE, ExploitAction.GUARD_INPUT),
            exploit_note="remove group g from local state; guard input (g)",
            propagation=PropagationBehavior.MAPPED,
            propagation_targets=(0,),
            propagation_note="propagate g in terms of input schema",
        ),
        CharacterizationRule(
            label="¬[*, θ a] (any θ)",
            condition={"a": ConstraintShape.ANY},
            exploit=(ExploitAction.GUARD_OUTPUT,),
            exploit_note=(
                "guard output only: a partial average inside the region "
                "may leave it (and vice versa) as tuples keep arriving"
            ),
            propagation=PropagationBehavior.NONE,
        ),
    ]
    return Characterization("AVERAGE", partition, rules)


def min_characterization(
    schema: Schema,
    group_attributes: Sequence[str],
    min_attribute: str,
) -> Characterization:
    """Characterization of windowed MIN: MAX's mirror image.

    The partial minimum only shrinks, so *upper*-bounded feedback
    (``¬[*, <=a]``) identifies certain groups; lower-bounded feedback can
    only guard the output.
    """
    partition = SchemaPartition(
        schema,
        {"g": tuple(group_attributes), "a": (min_attribute,)},
    )
    rules = [
        CharacterizationRule(
            label="¬[g, *]",
            condition={"g": ConstraintShape.EXACT},
            exploit=(ExploitAction.PURGE_STATE, ExploitAction.GUARD_INPUT),
            exploit_note="remove group g from local state; guard input (g)",
            propagation=PropagationBehavior.MAPPED,
            propagation_targets=(0,),
            propagation_note="propagate g in terms of input schema",
        ),
        CharacterizationRule(
            label="¬[*, <=a] / ¬[*, <a]",
            condition={"a": ConstraintShape.UPPER},
            exploit=(
                ExploitAction.CLOSE_WINDOWS,
                ExploitAction.GUARD_INPUT,
                ExploitAction.GUARD_OUTPUT,
            ),
            exploit_note=(
                "close open windows whose partial min already matches "
                "(it can only shrink further); guard their re-formation"
            ),
            propagation=PropagationBehavior.STATE_DEPENDENT,
            propagation_targets=(0,),
            propagation_note="propagate G in terms of input schema",
        ),
        CharacterizationRule(
            label="¬[*, >=a] / ¬[*, >a]",
            condition={"a": ConstraintShape.LOWER},
            exploit=(ExploitAction.GUARD_OUTPUT,),
            exploit_note="guard output only (partial min may still shrink)",
            propagation=PropagationBehavior.NONE,
        ),
        CharacterizationRule(
            label="¬[*, a]",
            condition={"a": ConstraintShape.EXACT},
            exploit=(ExploitAction.GUARD_OUTPUT,),
            exploit_note="guard output (a)",
            propagation=PropagationBehavior.NONE,
        ),
    ]
    return Characterization("MIN", partition, rules)


def sum_characterization(
    schema: Schema,
    group_attributes: Sequence[str],
    sum_attribute: str,
) -> Characterization:
    """Characterization of windowed SUM over a signed value attribute.

    Unlike COUNT, SUM is **not** monotone (section 3.5: "COUNT's produced
    result increases monotonically, SUM's doesn't"), so every value-side
    feedback class degrades to an output guard; only group feedback admits
    purging and input guards.
    """
    partition = SchemaPartition(
        schema,
        {"g": tuple(group_attributes), "a": (sum_attribute,)},
    )
    rules = [
        CharacterizationRule(
            label="¬[g, *]",
            condition={"g": ConstraintShape.EXACT},
            exploit=(ExploitAction.PURGE_STATE, ExploitAction.GUARD_INPUT),
            exploit_note="remove group g from local state; guard input (g)",
            propagation=PropagationBehavior.MAPPED,
            propagation_targets=(0,),
            propagation_note="propagate g in terms of input schema",
        ),
        CharacterizationRule(
            label="¬[*, θ a] (any θ)",
            condition={"a": ConstraintShape.ANY},
            exploit=(ExploitAction.GUARD_OUTPUT,),
            exploit_note="guard output only (sum is not monotone)",
            propagation=PropagationBehavior.NONE,
        ),
    ]
    return Characterization("SUM", partition, rules)
