"""Feedback roles and the action vocabulary operators respond with.

The paper (abstract, section 3.5) names three roles an operator may play:

* **producer** -- discovers a processing opportunity and issues feedback;
* **exploiter** -- acts on received feedback (guards, purges, priorities);
* **relayer** -- maps feedback through its schema and forwards it upstream.

A single operator can play all three.  This module defines the role
protocols (structural typing -- operators need not inherit anything), the
:class:`ExploitAction` vocabulary used by the characterization tables and
metrics, and the :class:`FeedbackLog` that records every feedback event for
experiments and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.core.feedback import FeedbackPunctuation

__all__ = [
    "ExploitAction",
    "FeedbackProducer",
    "FeedbackExploiter",
    "FeedbackRelayer",
    "FeedbackEvent",
    "FeedbackLog",
]


class ExploitAction(enum.Enum):
    """What an operator did in response to a feedback punctuation.

    The first five correspond to the paper's menu of responses (section
    4.3 and Tables 1-2); the remainder cover desired/demanded intents and
    the null response.
    """

    GUARD_INPUT = "guard_input"        # drop matching tuples before work
    GUARD_OUTPUT = "guard_output"      # suppress matching results
    PURGE_STATE = "purge_state"        # evict matching internal state
    CLOSE_WINDOWS = "close_windows"    # emit-and-evict satisfied windows (MAX)
    PROPAGATE = "propagate"            # relayed upstream (possibly mapped)
    PRIORITIZE = "prioritize"          # reorder production (desired)
    EMIT_PARTIAL = "emit_partial"      # unblock with partial results (demanded)
    IGNORE = "ignore"                  # null response (still correct)


@runtime_checkable
class FeedbackProducer(Protocol):
    """An operator that can discover opportunities and issue feedback."""

    def pending_feedback(self) -> Iterable[FeedbackPunctuation]:
        """Feedback discovered since the last call (drained on read)."""
        ...


@runtime_checkable
class FeedbackExploiter(Protocol):
    """An operator that acts on received feedback."""

    def on_feedback(self, feedback: FeedbackPunctuation) -> list[ExploitAction]:
        """Handle one feedback punctuation; return the actions taken."""
        ...


@runtime_checkable
class FeedbackRelayer(Protocol):
    """An operator that can map feedback onto its inputs and forward it."""

    def relay_feedback(
        self, feedback: FeedbackPunctuation
    ) -> dict[int, FeedbackPunctuation]:
        """Per-input mapped feedback that is safe to send upstream."""
        ...


@dataclass(frozen=True)
class FeedbackEvent:
    """One entry of the feedback provenance log."""

    time: float
    operator: str
    feedback: FeedbackPunctuation
    actions: tuple[ExploitAction, ...]
    note: str = ""

    def __repr__(self) -> str:
        acts = ",".join(a.value for a in self.actions) or "-"
        return (
            f"[t={self.time:.3f}] {self.operator}: {self.feedback!r} "
            f"-> {acts}{' (' + self.note + ')' if self.note else ''}"
        )


class FeedbackLog:
    """Append-only record of feedback production, exploitation and relays.

    The engines attach one log per plan; experiments read it to report how
    much feedback flowed and what it triggered, and tests assert on it.
    """

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events: list[FeedbackEvent] = []

    def record(
        self,
        time: float,
        operator: str,
        feedback: FeedbackPunctuation,
        actions: Iterable[ExploitAction],
        note: str = "",
    ) -> FeedbackEvent:
        event = FeedbackEvent(time, operator, feedback, tuple(actions), note)
        self._events.append(event)
        return event

    def __iter__(self) -> Iterator[FeedbackEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def by_operator(self, operator: str) -> list[FeedbackEvent]:
        return [e for e in self._events if e.operator == operator]

    def with_action(self, action: ExploitAction) -> list[FeedbackEvent]:
        return [e for e in self._events if action in e.actions]

    def produced(self) -> list[FeedbackEvent]:
        """Events where feedback originated (hop count zero)."""
        return [e for e in self._events if e.feedback.hops == 0
                and ExploitAction.PROPAGATE not in e.actions]

    def summary(self) -> str:
        """Human-readable digest used by example scripts."""
        if not self._events:
            return "no feedback activity"
        lines = [f"{len(self._events)} feedback events:"]
        lines.extend(f"  {event!r}" for event in self._events[:50])
        if len(self._events) > 50:
            lines.append(f"  ... and {len(self._events) - 50} more")
        return "\n".join(lines)
