"""Correct exploitation for *desired* and *demanded* punctuation.

The paper defines correctness only for assumed punctuation (Definition 1)
and names the rest as future work: "add theoretical descriptions of
correct exploitation and safe propagation for desired and demanded
punctuation" (section 8).  This module supplies working formalizations,
used by tests and available to library users:

**Desired** (``?[…]``, section 3.4): "does not change the overall result
of the issuing operator, but affects … the production time and order of
its result stream."  Two checkable halves:

* *content preservation* — the exploited output equals the reference
  output as a multiset (:func:`check_desired_content`);
* *prioritisation* — tuples covered by the desired pattern appear no
  later, in rank terms, than they did without feedback
  (:func:`check_desired_prioritization` compares the mean output rank of
  the covered subset).

**Demanded** (``![…]``): the issuer accepts approximate results for the
subset.  Formally (:func:`check_demanded_exploitation`):

* nothing outside the demanded subset changes — extra (partial) tuples
  must match the demanded pattern;
* no exact result is lost — every reference tuple still appears (a partial
  may precede it, but must not replace it silently unless it matches the
  demanded pattern itself).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.punctuation.patterns import Pattern
from repro.stream.tuples import StreamTuple

__all__ = [
    "DesiredReport",
    "DemandedReport",
    "check_desired_content",
    "check_desired_prioritization",
    "check_demanded_exploitation",
]


@dataclass
class DesiredReport:
    """Outcome of a desired-punctuation correctness check."""

    ok: bool
    missing: list[StreamTuple] = field(default_factory=list)
    extra: list[StreamTuple] = field(default_factory=list)
    reference_mean_rank: float | None = None
    exploited_mean_rank: float | None = None

    def __bool__(self) -> bool:
        return self.ok

    @property
    def rank_improvement(self) -> float | None:
        """Positive when the covered subset moved earlier in the stream."""
        if self.reference_mean_rank is None or self.exploited_mean_rank is None:
            return None
        return self.reference_mean_rank - self.exploited_mean_rank


@dataclass
class DemandedReport:
    """Outcome of a demanded-punctuation correctness check."""

    ok: bool
    lost_exact_results: list[StreamTuple] = field(default_factory=list)
    foreign_extras: list[StreamTuple] = field(default_factory=list)
    partials: list[StreamTuple] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def _multiset_diff(a: Sequence[StreamTuple], b: Sequence[StreamTuple]):
    counts_a, counts_b = Counter(a), Counter(b)
    only_a = [t for t, n in counts_a.items() for _ in range(n - counts_b.get(t, 0)) if n > counts_b.get(t, 0)]
    only_b = [t for t, n in counts_b.items() for _ in range(n - counts_a.get(t, 0)) if n > counts_a.get(t, 0)]
    return only_a, only_b


def check_desired_content(
    reference: Sequence[StreamTuple],
    exploited: Sequence[StreamTuple],
) -> DesiredReport:
    """Desired feedback must leave the result multiset unchanged."""
    missing, extra = _multiset_diff(reference, exploited)
    return DesiredReport(ok=not missing and not extra,
                         missing=missing, extra=extra)


def check_desired_prioritization(
    reference: Sequence[StreamTuple],
    exploited: Sequence[StreamTuple],
    pattern: Pattern,
    *,
    tolerance: float = 0.0,
) -> DesiredReport:
    """Content preserved *and* the covered subset not de-prioritised.

    Rank = position in the output stream.  The mean rank of tuples
    matching the desired pattern in the exploited run must not exceed the
    reference mean rank by more than ``tolerance`` ranks.
    """
    content = check_desired_content(reference, exploited)

    def mean_rank(stream: Sequence[StreamTuple]) -> float | None:
        ranks = [i for i, t in enumerate(stream) if pattern.matches(t)]
        return sum(ranks) / len(ranks) if ranks else None

    ref_rank = mean_rank(reference)
    new_rank = mean_rank(exploited)
    ok = content.ok
    if ref_rank is not None and new_rank is not None:
        ok = ok and new_rank <= ref_rank + tolerance
    return DesiredReport(
        ok=ok,
        missing=content.missing,
        extra=content.extra,
        reference_mean_rank=ref_rank,
        exploited_mean_rank=new_rank,
    )


def check_demanded_exploitation(
    reference: Sequence[StreamTuple],
    exploited: Sequence[StreamTuple],
    pattern: Pattern,
) -> DemandedReport:
    """Demanded feedback: partials allowed, but only inside the subset.

    * every reference tuple must still appear (``lost_exact_results``
    flags violations), and
    * any extra tuple must match the demanded pattern (it is a partial for
      the demanded subset); extras outside the pattern
      (``foreign_extras``) are violations.
    """
    missing, extras = _multiset_diff(reference, exploited)
    lost = [t for t in missing if not pattern.matches(t)]
    partials = [t for t in extras if pattern.matches(t)]
    foreign = [t for t in extras if not pattern.matches(t)]
    # A missing exact result *inside* the subset is tolerable only if a
    # partial stands in for it; we require at least as many appearances
    # per (window/group) identity, which multiset accounting above already
    # captures: a replaced exact shows up as one missing + one extra, both
    # matching the pattern.
    missing_inside = [t for t in missing if pattern.matches(t)]
    ok = not lost and not foreign and len(missing_inside) <= len(partials)
    return DemandedReport(
        ok=ok,
        lost_exact_results=lost,
        foreign_extras=foreign,
        partials=partials,
    )
