"""Centralized adaptation baseline: the strawman of paper Figure 2(a).

The paper argues *against* a centralized monitor that watches every
operator, pulls (samples of) the data stream to a central point, and pushes
parameter changes back -- the Aurora/Borealis-style architecture -- because

1. optimization decisions are state-dependent, so the monitor needs access
   to the data stream itself, and shipping the stream to a central point
   is expensive in a distributed system; and
2. the monitor must know every operator's semantics and interactions.

To *quantify* claim (1), this module provides :class:`CentralizedMonitor`,
an operator that models the monitor's data plane: it consumes a duplicated
copy of the stream (each tuple charged ``transfer_cost`` -- the shipping
and inspection overhead) and batches its decisions every
``decision_interval`` of stream time (central decisions are made on a
collection cycle, not per tuple -- the exploitation *latency* of the
centralized design).

The ablation benchmark (``benchmarks/test_ablation_centralized.py``) runs
the Experiment 2 workload both ways and reports total work, data shipped
to the decision point, and savings lost to decision latency.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.operators.base import Operator
from repro.stream.schema import Schema
from repro.stream.tuples import StreamTuple

__all__ = ["CentralizedMonitor"]


class CentralizedMonitor(Operator):
    """The monitor's data plane: consume a stream copy, batch decisions.

    ``on_decision`` is invoked once per ``decision_interval`` of observed
    stream time with the monitor's accumulated observation count; the
    experiment harness uses it to apply the (late) parameter changes the
    monitor would push to operators.  The monitor is itself
    feedback-unaware -- it *is* the alternative to feedback.
    """

    feedback_aware = False
    relay_enabled = False

    def __init__(
        self,
        name: str,
        schema: Schema,
        *,
        timestamp_attribute: str,
        transfer_cost: float,
        decision_interval: float,
        on_decision: Callable[[float, int], None] | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, schema, tuple_cost=transfer_cost, **kwargs)
        self._ts_index = schema.index_of(timestamp_attribute)
        self.decision_interval = float(decision_interval)
        self.on_decision = on_decision
        self.tuples_observed = 0
        self.decisions_made = 0
        self._next_decision: float | None = None

    def on_tuple(self, port_index: int, tup: StreamTuple) -> None:
        self.tuples_observed += 1
        timestamp = float(tup.values[self._ts_index])
        if self._next_decision is None:
            self._next_decision = timestamp + self.decision_interval
        while timestamp >= self._next_decision:
            self.decisions_made += 1
            if self.on_decision is not None:
                self.on_decision(self._next_decision, self.tuples_observed)
            self._next_decision += self.decision_interval

    @property
    def data_shipped(self) -> int:
        """Tuples copied to the central decision point."""
        return self.tuples_observed
