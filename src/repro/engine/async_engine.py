"""Asyncio engine: coroutine-per-operator scheduling on one event loop.

The third execution backend over the shared runtime core, built for
network-facing sources and sinks (paper section 5 fixes NiagaraST's
runtime as thread-per-operator; related work on scalable data feeds --
Grover & Carey's AsterixDB ingestion, and the Röger & Mayer
parallelization survey, see PAPERS.md -- argues that ingesting from many
slow or remote endpoints should not burn an OS thread per operator).
This engine keeps the paper's architecture -- one worker per operator,
page queues between them, out-of-band high-priority control (section 5,
"control messages are given high priority and processed before pending
tuples") -- but the workers are coroutines multiplexed on one asyncio
event loop: thousands of idle sources cost nothing but a parked
``await``.

Like the simulator and the threaded runtime, this engine is a *policy*
layer over :class:`~repro.engine.runtime.RuntimeCore` (DESIGN.md section
3): the core owns control draining (``control_latency`` arrival
semantics on the wall clock, exactly as the threaded runtime), input
completion, finish, backpressure watermarks and shard-lane flow control;
this module owns the coroutines.  The wake-up half of the policy is the
shared :class:`~repro.engine.notify.NotificationPolicy` bound to an
:class:`~repro.stream.waiters.AsyncioConditionWaiter`: wake-ups ride an
``asyncio.Condition`` mirroring the threaded engine's
``threading.Condition`` discipline -- every state change notifies, idle
coroutines ``await`` the condition (no polling), and the only timed wait
is the arrival deadline of an in-flight control message.  Paused
coroutines likewise ``await`` instead of sleeping a thread, so
backpressure (``queue_capacity``, docs/backpressure.md) parks work
without occupying the loop.

Scheduling discipline: each coroutine runs its synchronous engine steps
while holding the condition's lock -- free under cooperative scheduling,
since only one coroutine executes at a time -- and releases it exactly
at its awaits (``Condition.wait``, the per-page cooperative yield, and
``emulate_costs`` sleeps).  Because notifications originate inside
synchronous operator callbacks, "the lock is held" always means "held by
the running task", which is what makes a plain synchronous
``notify_all`` legal (see :mod:`repro.stream.waiters`).

``emulate_costs=True`` charges each operator's cost model with
``asyncio.sleep`` *outside* the lock, so modeled CPU cost overlaps
across operator coroutines exactly as the threaded engine's modeled
costs overlap across threads (and as NiagaraST's real per-operator CPU
time would).

Sources that expose ``aevents()`` -- an *async* iterator of ``(arrival,
element)`` pairs, e.g. :class:`~repro.operators.source.
AsyncIterableSource` -- are consumed natively with ``await`` between
elements, so a slow network feed never blocks the loop; plain sources
fall back to their synchronous ``events()`` timeline.

Use :meth:`AsyncioEngine.run` from synchronous code (it owns a private
event loop via ``asyncio.run``), or ``await`` :meth:`AsyncioEngine.arun`
from inside an existing loop -- e.g. alongside an
:class:`~repro.operators.sink.AwaitableSink` that client coroutines
await concurrently with the run.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.engine.notify import NotificationPolicy
from repro.engine.plan import QueryPlan
from repro.engine.runtime import RunResult, RuntimeCore
from repro.errors import EngineError
from repro.operators.base import Operator, SourceOperator
from repro.stream.clock import WallClock
from repro.stream.waiters import AsyncioConditionWaiter

__all__ = ["AsyncioEngine"]


class AsyncioEngine(NotificationPolicy, RuntimeCore):
    """Run a plan with one coroutine per operator on an asyncio loop.

    Parameters
    ----------
    timeout:
        Run-level watchdog: maximum wall-clock seconds for the whole
        plan to drain (worker waits themselves are untimed and purely
        notification-driven), mirroring the threaded runtime's join
        watchdog.  ``None`` disables the watchdog for always-on serving
        flows whose sources never end until drained by a supervisor.
    control_latency:
        Wall-clock seconds between sending a control message and its
        arrival (the simulator's feedback propagation delay, honoured
        here exactly as in the threaded runtime; default 0).
    emulate_costs:
        Charge each operator's cost model (``tuple_cost`` and friends)
        as ``asyncio.sleep`` outside the condition lock, so modeled CPU
        cost parallelises across operator coroutines the way it does
        across the threaded engine's threads.  Slept cost is recorded as
        ``busy_time``.
    """

    def __init__(
        self,
        plan: QueryPlan,
        *,
        timeout: float | None = 60.0,
        control_latency: float = 0.0,
        emulate_costs: bool = False,
        checkpoint_every: int | None = None,
        checkpoint_store: Any = None,
        recover_from: Any = None,
        ingestion_policy: str = "exactly-once",
        elastic: Any = None,
    ) -> None:
        super().__init__(
            plan, WallClock(), control_latency=control_latency,
            checkpoint_every=checkpoint_every,
            checkpoint_store=checkpoint_store,
            recover_from=recover_from,
            ingestion_policy=ingestion_policy,
            elastic=elastic,
        )
        self.timeout = timeout
        self.emulate_costs = emulate_costs
        self._init_notifications(AsyncioConditionWaiter())
        self._actions: list[tuple[float, Callable[[], None]]] = []
        self._action_errors: list[BaseException] = []

    def at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a client-side action at ``time`` wall-clock seconds.

        Mirrors ``Simulator.at`` / ``ThreadedRuntime.at`` so ``Flow.run``'s
        declarative feedback injection works engine-agnostically.  The
        action runs on its own coroutine under the condition lock; an
        action whose time falls after the plan has already drained never
        fires -- the same "the stream is over" rule every engine applies
        to in-flight feedback.
        """
        if self._started:
            raise EngineError("schedule actions before calling run()")
        self._actions.append((float(time), action))

    # -- coroutine bodies ----------------------------------------------------------

    async def _wait_for_work(self, operator: Operator) -> None:
        """Park (lock held) until a page or control message arrives.

        Purely notification-driven; the only timed wait is the arrival
        deadline of an in-flight (deferred) control message.  The lock is
        re-held when this returns, timed out or notified.
        """
        await self._waiter.wait(self.wait_timeout(operator))

    async def _yield_outside_lock(self, sleep: float) -> None:
        """Release the condition, await, re-acquire.

        This is the engine's only suspension point besides
        ``Condition.wait``: the per-page cooperative yield (``sleep=0``)
        that lets pipelined operators interleave, and the
        ``emulate_costs`` sleep that lets modeled costs overlap.
        """
        condition = self._waiter.condition
        condition.release()
        try:
            await asyncio.sleep(sleep)
        finally:
            await condition.acquire()

    async def _source_body(self, source: SourceOperator) -> None:
        condition = self._waiter.condition
        aevents = getattr(source, "aevents", None)
        if aevents is not None:
            # Async-native source: await between elements on the loop --
            # a slow network feed parks this coroutine, nothing else.
            async for _arrival, element in self.source_aevents(
                source, aevents()
            ):
                await self._admit_source_element(source, element)
        else:
            for _arrival, element in self.source_events(source):
                await self._admit_source_element(source, element)
        await condition.acquire()
        try:
            # Same rule as the other engines: arrived control is
            # delivered, but feedback still in flight toward an exhausted
            # source is dropped -- the stream is over.
            self.drain_control(source)
            self.finish_operator(source)
            self._waiter.notify_all()
        finally:
            condition.release()

    async def _admit_source_element(self, source: SourceOperator, element) -> None:
        if self.emulate_costs:
            cost = source.cost_of(element)
            if cost > 0.0:
                await asyncio.sleep(cost)  # outside the lock: sources overlap
                source.metrics.busy_time += cost
        else:
            await asyncio.sleep(0)  # cooperative yield: consumers interleave
        condition = self._waiter.condition
        await condition.acquire()
        try:
            self.drain_control(source)
            while self.is_paused(source):
                # Honour backpressure: park until the consumer's resume
                # arrives (every control send notifies the condition).
                await self._wait_for_work(source)
                self.drain_control(source)
            self.dispatch_source_element(source, element)
            wants_flush = getattr(source, "wants_flush", None)
            if wants_flush is not None and wants_flush():
                # Interactive feed gone quiet (Flow.ingest's channel is
                # empty): flush partial pages now rather than batching
                # them against input that may be seconds away.
                source.flush_outputs()
            self.check_pressure(source)
            self._waiter.notify_all()
        finally:
            condition.release()

    async def _operator_body(self, operator: Operator) -> None:
        condition = self._waiter.condition
        await condition.acquire()
        try:
            while True:
                if self.drain_control(operator):
                    # Feedback handling may have emitted (partial results,
                    # flushes, a lane-stash replay); consumers must hear
                    # about it, and a replayed stash may refill a lane
                    # queue past its high-water mark.
                    self.check_pressure(operator)
                    self._waiter.notify_all()
                if self.is_paused(operator):
                    # Transitive pressure: while paused this operator
                    # pulls no pages, so its own inputs back up and pause
                    # its producers.  Exhausted inputs may still finish
                    # it -- holding finish hostage to a resume could
                    # deadlock the tail of the stream.
                    self.check_input_completion(operator)
                    if operator.finished:
                        return
                    await self._wait_for_work(operator)
                    continue
                page, port = None, None
                for candidate in operator.inputs:
                    if candidate is None:
                        continue
                    page = candidate.queue.get_page()
                    if page is not None:
                        port = candidate
                        break
                if page is None:
                    # Out of input: flush partial output pages before
                    # parking, so interactive (always-on) flows deliver
                    # results at input-idle time instead of holding them
                    # until a page fills.  Under sustained load pages
                    # fill before the input runs dry, so batching -- and
                    # the batch-path throughput floor -- is preserved.
                    operator.flush_outputs()
                    self.check_input_completion(operator)
                    if operator.finished:
                        return
                    await self._wait_for_work(operator)
                    continue
                operator.set_now(self.clock.now())
                # Cooperative yield (or modeled-cost sleep) with the lock
                # released, so sibling coroutines -- shard replicas,
                # upstream producers -- interleave per page the way the
                # threaded engine's threads get preempted.
                if self.emulate_costs and operator.needs_metering:
                    cost = 0.0
                    for element in page:
                        cost += operator.admission_cost(port.index, element)
                    await self._yield_outside_lock(cost)
                    if cost > 0.0:
                        operator.metrics.busy_time += cost
                else:
                    await self._yield_outside_lock(0)
                # Page processing is synchronous and single-threaded, so
                # holding the lock through it is free; control for this
                # operator waits until the next loop turn (control-before-
                # data is preserved per page, as on every engine).
                operator.process_page(port.index, page)
                self.mark_done_ports(operator)
                self.check_relief(operator)
                self.check_pressure(operator)
                self._waiter.notify_all()
        finally:
            if condition.locked():
                # Single-threaded loop: a held lock belongs to the
                # running task (us); a cancellation delivered exactly at
                # an internal re-acquire can land here without it.
                condition.release()

    async def _elastic_body(self) -> None:
        """Controller ticker task: observe/decide/apply every interval.

        Ticks run under the condition lock (the controller reads operator
        counters and enqueues control, like any callback); the task is
        cancelled by ``_arun`` once the workers drain.  A tick failure is
        captured like an action error so ``arun`` re-raises it.
        """
        interval = self.elastic.config.interval
        condition = self._waiter.condition
        while True:
            await asyncio.sleep(interval)
            await condition.acquire()
            try:
                try:
                    self.elastic.tick(self.clock.now())
                except BaseException as error:  # noqa: BLE001 - rethrown
                    self._action_errors.append(error)
                    return
                self._waiter.notify_all()
            finally:
                condition.release()

    async def _action_body(self, when: float, action: Callable[[], None]) -> None:
        await asyncio.sleep(max(0.0, when - self.clock.now()))
        condition = self._waiter.condition
        await condition.acquire()
        try:
            try:
                action()
            except BaseException as error:  # noqa: BLE001 - re-raised in run()
                # A raised exception would otherwise vanish with this
                # task and the run would report success with the action's
                # effect silently missing.  Capture it; arun() re-raises.
                self._action_errors.append(error)
            self._waiter.notify_all()
        finally:
            condition.release()

    # -- run -------------------------------------------------------------------------

    async def arun(self) -> RunResult:
        """Run the plan on the *current* event loop (async entry point)."""
        self._begin()
        try:
            return await self._arun()
        except BaseException as error:
            # Fail anyone parked on an unfinished operator (an
            # AwaitableSink's client coroutines) instead of leaving them
            # awaiting an on_finish that will never come.
            self._notify_run_aborted(error)
            raise

    async def _arun(self) -> RunResult:
        for op in self.plan:
            # One cooperative loop needs no queue mutexes, but queues
            # announce page-ready/close on the shared waiter seam so
            # consumer coroutines wake as soon as a producer's page lands.
            for edge in op.outputs:
                edge.queue.attach_waiter(self._waiter)
        condition = self._waiter.condition
        await condition.acquire()
        try:
            # on_start may inject feedback (notify_control), so it must
            # run under the same lock discipline as every callback.
            self._start_operators()
        finally:
            condition.release()
        workers = []
        for op in self.plan:
            if isinstance(op, SourceOperator):
                body = self._source_body(op)
            else:
                body = self._operator_body(op)
            workers.append(asyncio.ensure_future(body))
            workers[-1].set_name(f"op-{op.name}")
        actions = [
            asyncio.ensure_future(self._action_body(when, action))
            for when, action in self._actions
        ]
        if self.elastic is not None:
            ticker = asyncio.ensure_future(self._elastic_body())
            ticker.set_name("elastic-controller")
            actions.append(ticker)
        try:
            await asyncio.wait_for(asyncio.gather(*workers), self.timeout)
        except asyncio.TimeoutError:
            raise EngineError(
                f"operator coroutines did not finish within "
                f"{self.timeout}s"
            ) from None
        finally:
            # An action whose time falls after the plan drained never
            # fires (and on failure nothing should linger on the loop).
            for task in actions:
                task.cancel()
            for task in workers:
                task.cancel()
            await asyncio.gather(*actions, *workers, return_exceptions=True)
        if self._action_errors:
            raise self._action_errors[0]
        return self.build_result(self.collect_metrics())

    def run(self) -> RunResult:
        """Run the plan to completion (synchronous entry point).

        Owns a private event loop via ``asyncio.run``.  From inside an
        already-running loop, blocking here would deadlock the loop on
        itself -- ``await engine.arun()`` instead.
        """
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(self.arun())
        raise EngineError(
            "AsyncioEngine.run() cannot block inside a running event "
            "loop; await engine.arun() instead"
        )
