"""Multiprocess engine: worker processes past the GIL.

The threaded runtime reproduces NiagaraST's thread-per-operator
architecture, but CPython's GIL serialises pure-Python operator work, so
CPU-bound plans gain little wall-clock parallelism from it.  This engine
keeps the exact same runtime protocol -- control-before-data draining
with ``control_latency`` arrival semantics, upstream feedback, watermark
pause/resume backpressure, shard-region punctuation alignment -- and
moves the *operators* into separate OS processes:

* the plan is partitioned into **operator groups**, one worker process
  per group (for a sharded plan, each lane becomes a group, so replicas
  run with real CPU parallelism);
* inside a worker, the group runs on an ordinary
  :class:`~repro.engine.threaded.ThreadedRuntime` restricted to the
  owned operators (:class:`_WorkerRuntime`) -- one mechanism, stacked
  policies;
* a **cross edge** (producer and consumer in different groups) ships
  complete pages over a per-worker ``multiprocessing.Queue`` inbox in
  the columnar wire form of :func:`~repro.stream.pages.encode_page`:
  schema described once per page, values as per-attribute columns, the
  tuple/punctuation interleaving preserved exactly -- so
  flush-on-punctuation survives the process boundary.  In-process edges
  keep passing pages by reference (the zero-copy fast path);
* the cross edge's **control channel** is proxied in both workers
  (:class:`_ProxyControlChannel`): sends toward the remote end travel as
  pickled :class:`~repro.stream.control.ControlMessage` frames and are
  delivered into the peer's local channel, so feedback punctuation,
  pause/resume flow control and result requests cross processes on the
  ordinary drain path, honouring ``control_latency`` against the shared
  wall clock.

**Start method.**  Workers are started with the ``fork`` method: each
child inherits the coordinator's whole object graph -- plan, operators,
closures scheduled via :meth:`at` -- so nothing in the user's plan ever
needs to be picklable.  Only what crosses a boundary at runtime does:
encoded pages, control messages, and the result payloads.  On platforms
without ``fork`` the engine refuses to construct
(:func:`fork_available` lets callers probe first).

**Backpressure across the boundary.**  The consumer-side worker owns the
real bounded :class:`~repro.stream.queues.DataQueue`; its receiver
thread injects decoded pages with
:meth:`~repro.stream.queues.DataQueue.put_page` and then runs
:meth:`~repro.engine.runtime.RuntimeCore.check_pressure` against its
local *copy* of the remote producer, so a queue crossing its high-water
mark issues the ordinary *pause* punctuation -- which the proxy ships
upstream, pausing the real producer in its own worker.  Relief
(*resume*) flows the same way when the consumer drains to the low-water
mark; a ``close`` frame marks the local producer copy finished so
resume-to-finished signals are dropped exactly as in-process.

**Results.**  Each worker ships a ``done`` payload -- owned operators'
metrics and :meth:`~repro.operators.base.Operator.snapshot_state`,
consumer-side queue counters per edge, output-log records, feedback
events, and its makespan -- to the coordinator, which merges everything
onto its own plan copy and builds the usual
:class:`~repro.engine.runtime.RunResult`.  Call sites therefore read
sinks, metrics, shard rollups and logs exactly as on the other engines.

**Scheduled actions** must name an ``owner`` operator (``at(time,
action, owner=...)``): the action is a closure over the coordinator's
plan objects, and only the worker owning that operator has the copy the
action must run against.  ``Flow.run`` tags its declarative feedback
injections automatically; owner-less actions raise
:class:`~repro.errors.EngineError` on this engine.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import traceback
from typing import Any, Callable, Sequence

from repro.engine.plan import QueryPlan
from repro.engine.runtime import RunResult, RuntimeCore
from repro.engine.threaded import ThreadedRuntime
from repro.errors import DurabilityError, EngineError
from repro.operators.base import Operator, SourceOperator
from repro.stream.clock import WallClock
from repro.stream.control import ControlChannel, ControlMessage, Direction
from repro.stream.pages import decode_page, encode_page
from repro.stream.queues import DataQueue

__all__ = ["MultiprocessEngine", "fork_available"]

#: Frame tags on the inter-worker inboxes.
_DATA, _CLOSE, _CTRL, _STOP = "data", "close", "ctrl", "stop"
#: Frame tags on the coordinator inbox.
_DONE, _ERROR = "done", "error"


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _edge_key(producer: str, consumer: str, port: int) -> str:
    return f"{producer}->{consumer}[{port}]"


class _ShippingQueue(DataQueue):
    """Producer-side stand-in for a cross edge's data queue.

    Collects the producer's open page exactly like a local queue, then
    ships every completed page -- columnar-encoded -- to the consumer's
    worker instead of keeping it.  Unbounded on purpose: occupancy (and
    thus pressure) is accounted on the consumer side, where the pages
    actually pile up.
    """

    __slots__ = ("_ship",)

    def __init__(
        self,
        name: str,
        page_size: int,
        ship: Callable[[tuple], None],
    ) -> None:
        super().__init__(name, page_size=page_size)
        self._ship = ship

    def _drain_ready(self) -> None:
        while (page := self.get_page()) is not None:
            self._ship((_DATA, self.name, encode_page(page)))

    def put(self, element: Any) -> bool:
        completed = super().put(element)
        if completed:
            self._drain_ready()
        return completed

    def put_many(self, elements: list) -> int:
        completed = super().put_many(elements)
        if completed:
            self._drain_ready()
        return completed

    def put_page(self, page: Any) -> None:
        super().put_page(page)
        self._drain_ready()

    def flush(self) -> bool:
        flushed = super().flush()
        if flushed:
            self._drain_ready()
        return flushed

    def close(self) -> None:
        super().close()  # flushes any residue into the ready backlog
        self._drain_ready()
        self._ship((_CLOSE, self.name))


class _ProxyControlChannel(ControlChannel):
    """Control channel of a cross edge, as seen from one worker.

    Each worker holds one end of the edge: messages travelling toward
    the remote end are shipped as pickled frames to the peer's inbox;
    messages travelling toward the local end queue locally as usual.
    The peer's receiver thread lands shipped messages via
    :meth:`deliver`, after which the ordinary drain path (arrival
    gating, control-before-data) takes over.
    """

    __slots__ = ("_remote", "_ship")

    def __init__(
        self,
        name: str,
        remote_direction: Direction,
        ship: Callable[[tuple], None],
    ) -> None:
        super().__init__(name)
        self._remote = remote_direction
        self._ship = ship

    def send(self, message: ControlMessage) -> None:
        if message.direction is self._remote:
            if message.direction is Direction.UPSTREAM:
                self.upstream_sent += 1
            else:
                self.downstream_sent += 1
            self._ship((_CTRL, self.name, message))
        else:
            super().send(message)

    def deliver(self, message: ControlMessage) -> None:
        """Land a message shipped from the peer worker."""
        ControlChannel.send(self, message)


class _Route:
    """One cross edge's consumer-side receiving state in a worker."""

    __slots__ = ("queue", "producer", "proxy")

    def __init__(
        self,
        queue: DataQueue | None,
        producer: Operator | None,
        proxy: _ProxyControlChannel,
    ) -> None:
        self.queue = queue
        self.producer = producer
        self.proxy = proxy


class _WorkerRuntime(ThreadedRuntime):
    """A threaded runtime restricted to one worker's operator group.

    Remote operators stay in the plan (their fork copies anchor edge
    objects, pressure bookkeeping and ``finished`` flags) but get no
    thread, no ``on_start`` and no control draining here -- their owning
    worker does all of that against its own copies.
    """

    def __init__(
        self, plan: QueryPlan, owned: set[str], **options: Any
    ) -> None:
        super().__init__(plan, **options)
        self._owned = owned

    def _executed_operators(self) -> list[Operator]:
        return [op for op in self.plan if op.name in self._owned]

    def _start_operators(self) -> None:
        for op in self._executed_operators():
            op.runtime = self
            op.set_now(0.0)
            op.on_start()


class MultiprocessEngine(RuntimeCore):
    """Run a plan with one OS process per operator group.

    Parameters
    ----------
    groups:
        Explicit partition of the plan's operator names into worker
        groups (a sequence of name sequences).  Default: one group per
        shard lane plus one for everything else when the plan has shard
        regions; otherwise sources in one group and the rest in another.
    timeout:
        Coordinator watchdog: maximum wall-clock seconds to wait for all
        workers; hung workers are terminated and the run raises.  Also
        passed to each worker's internal thread watchdog.
    control_latency:
        Seconds between sending a control message and its arrival,
        measured on the wall clock shared by every worker.
    emulate_costs:
        Charge operator cost models as wall-clock sleeps, exactly as on
        the threaded runtime.
    """

    def __init__(
        self,
        plan: QueryPlan,
        *,
        groups: Sequence[Sequence[str]] | None = None,
        timeout: float = 60.0,
        control_latency: float = 0.0,
        emulate_costs: bool = False,
        checkpoint_every: int | None = None,
        checkpoint_store: Any = None,
        recover_from: Any = None,
        ingestion_policy: str = "exactly-once",
        elastic: Any = None,
    ) -> None:
        if not fork_available():
            raise EngineError(
                "the multiprocess engine requires the 'fork' start "
                "method, which this platform does not support"
            )
        # Durability activation (and recovery restore) runs in the super
        # constructor -- before the fork, so every worker inherits the
        # restored operator state and the computed replay offsets.
        # ``elastic`` is deliberately NOT passed down: this engine
        # declines elasticity (recorded below) rather than arming a
        # controller whose rebalance records cannot cross the fork.
        super().__init__(
            plan, WallClock(), control_latency=control_latency,
            checkpoint_every=checkpoint_every,
            checkpoint_store=checkpoint_store,
            recover_from=recover_from,
            ingestion_policy=ingestion_policy,
        )
        if elastic is not None:
            # The optimizer's decline convention: record why, run static.
            self.elastic_declines.append(
                (
                    "engine",
                    "multiprocess engine cannot rebalance: migration "
                    "records travel by reference and workers own "
                    "disjoint operator groups across process boundaries",
                )
            )
        if (
            self.checkpoints is not None
            and not self.checkpoints.store.shareable_across_processes
        ):
            raise DurabilityError(
                "the multiprocess engine needs a checkpoint store that "
                "is visible across processes (forked workers would write "
                "snapshots into throwaway copies of an in-memory store); "
                "pass a DirectoryCheckpointStore or a directory path"
            )
        self.timeout = timeout
        self.emulate_costs = emulate_costs
        self._ctx = multiprocessing.get_context("fork")
        self._groups = self._resolve_groups(groups)
        self._owner_of = {
            name: index
            for index, group in enumerate(self._groups)
            for name in group
        }
        self._actions: list[tuple[float, Callable[[], None], str]] = []
        self._inboxes: list[Any] = []
        self._coord_inbox: Any = None

    # -- grouping --------------------------------------------------------------------

    def _resolve_groups(
        self, groups: Sequence[Sequence[str]] | None
    ) -> list[list[str]]:
        names = [op.name for op in self.plan]
        if groups is None:
            return self._default_groups(names)
        resolved = [list(group) for group in groups if group]
        seen: set[str] = set()
        for group in resolved:
            for name in group:
                if name not in self.plan._operators:
                    raise EngineError(
                        f"group names unknown operator {name!r}"
                    )
                if name in seen:
                    raise EngineError(
                        f"operator {name!r} appears in more than one group"
                    )
                seen.add(name)
        missing = [n for n in names if n not in seen]
        if missing:
            raise EngineError(
                f"groups must cover every operator; missing: {missing}"
            )
        return resolved

    def _default_groups(self, names: list[str]) -> list[list[str]]:
        lane_groups: list[list[str]] = []
        in_lane: set[str] = set()
        for region in self.plan.shard_groups:
            for lane in region.lanes:
                if lane:
                    lane_groups.append(list(lane))
                    in_lane.update(lane)
        rest = [n for n in names if n not in in_lane]
        if lane_groups:
            return ([rest] if rest else []) + lane_groups
        sources = {
            op.name for op in self.plan if isinstance(op, SourceOperator)
        }
        downstream = [n for n in names if n not in sources]
        if not downstream:
            return [names]
        return [[n for n in names if n in sources], downstream]

    # -- scheduling ------------------------------------------------------------------

    def at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        owner: str | None = None,
    ) -> None:
        """Schedule ``action`` at ``time`` seconds, owned by an operator.

        ``owner`` names the operator the action targets; the action runs
        in (and against the plan copy of) the worker owning it.  The
        coordinator cannot run it: its plan objects are not the ones the
        workers execute.  ``Flow.run`` passes the feedback target
        automatically; owner-less actions are rejected.
        """
        if self._started:
            raise EngineError("schedule actions before calling run()")
        if owner is None:
            raise EngineError(
                "the multiprocess engine requires owner= on scheduled "
                "actions (the owning worker runs the action against its "
                "own plan copy); use feedback=(time, operator, punct) "
                "entries or pass owner= explicitly"
            )
        if owner not in self.plan._operators:
            raise EngineError(f"unknown action owner {owner!r}")
        self._actions.append((float(time), action, owner))

    # -- run -------------------------------------------------------------------------

    def run(self) -> RunResult:
        self._begin()
        try:
            return self._run()
        except BaseException as error:
            self._notify_run_aborted(error)
            raise

    def _run(self) -> RunResult:
        # Restart the shared epoch at run start so worker timestamps and
        # the merged makespan measure the run, not engine construction.
        self.clock = WallClock()
        self._inboxes = [self._ctx.Queue() for _ in self._groups]
        self._coord_inbox = self._ctx.Queue()
        workers = [
            self._ctx.Process(
                target=self._worker_entry,
                args=(index,),
                name=f"repro-worker-{index}",
                daemon=True,
            )
            for index in range(len(self._groups))
        ]
        for proc in workers:
            proc.start()
        try:
            payloads = self._await_workers(workers)
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
            for proc in workers:
                proc.join(timeout=5.0)
        return self._merge(payloads)

    def _await_workers(self, workers: list[Any]) -> list[dict]:
        payloads: list[dict | None] = [None] * len(workers)
        pending = len(workers)
        deadline = self.clock.now() + self.timeout
        while pending:
            remaining = deadline - self.clock.now()
            if remaining <= 0:
                raise EngineError(
                    f"multiprocess run did not finish within "
                    f"{self.timeout}s ({pending} worker(s) still running)"
                )
            try:
                frame = self._coord_inbox.get(timeout=min(remaining, 1.0))
            except queue_module.Empty:
                dead = [
                    p.name for p in workers
                    if not p.is_alive() and p.exitcode not in (0, None)
                ]
                if dead:
                    raise EngineError(
                        f"worker process(es) died without reporting: "
                        f"{', '.join(dead)}"
                    ) from None
                continue
            tag = frame[0]
            if tag == _ERROR:
                _, index, text = frame
                raise EngineError(
                    f"worker {index} failed:\n{text}"
                )
            _, index, payload = frame
            if payloads[index] is None:
                pending -= 1
            payloads[index] = payload
        return [payload for payload in payloads if payload is not None]

    # -- worker ----------------------------------------------------------------------

    def _worker_entry(self, index: int) -> None:
        try:
            payload = self._worker_body(index)
            self._coord_inbox.put((_DONE, index, payload))
        except BaseException:  # noqa: BLE001 - reported to the coordinator
            self._coord_inbox.put(
                (_ERROR, index, traceback.format_exc())
            )

    def _worker_body(self, index: int) -> dict:
        owned = set(self._groups[index])
        options: dict[str, Any] = {}
        if self.checkpoints is not None:
            # The worker gets the resolved (process-shareable) store and
            # interval, but NOT recover_from: the restore already ran in
            # the coordinator before the fork, so the worker's plan copy
            # carries the recovered state.  Only the replay offsets and
            # recovered epoch -- coordinator-side bookkeeping, not plan
            # state -- must be copied onto the worker's own coordinator.
            options = dict(
                checkpoint_every=self.checkpoints.every,
                checkpoint_store=self.checkpoints.store,
                ingestion_policy=self.checkpoints.policy,
            )
        runtime = _WorkerRuntime(
            self.plan,
            owned,
            timeout=self.timeout,
            control_latency=self.control_latency,
            emulate_costs=self.emulate_costs,
            clock=self.clock,
            **options,
        )
        if self.checkpoints is not None:
            runtime.checkpoints.replay_offsets.update(
                self.checkpoints.replay_offsets
            )
            runtime.checkpoints.recovered_epoch = (
                self.checkpoints.recovered_epoch
            )
        routes = self._rewire(index, runtime)
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(index, runtime, routes),
            name=f"recv-{index}",
            daemon=True,
        )
        receiver.start()
        for when, action, owner in self._actions:
            if owner in owned:
                runtime.at(when, action)
        try:
            runtime.run()
        finally:
            # Unblock the receiver; frames already queued (late control
            # toward a drained plan) are handled first, then dropped by
            # the same "the stream is over" rule the engines share.
            self._inboxes[index].put((_STOP,))
            receiver.join(timeout=5.0)
        return self._payload(index, runtime, owned)

    def _rewire(
        self, index: int, runtime: _WorkerRuntime
    ) -> dict[str, _Route]:
        """Replace this worker's halves of every cross edge.

        Producer owned here: the edge's queue becomes a
        :class:`_ShippingQueue` and its control channel a proxy shipping
        *downstream* traffic to the consumer's worker.  Consumer owned
        here: the local queue stays (it is the real, possibly bounded
        one) and the proxy ships *upstream* traffic -- feedback, flow
        control, result requests -- to the producer's worker.
        """
        routes: dict[str, _Route] = {}
        for op in self.plan:
            for edge in op.outputs:
                producer_group = self._owner_of[op.name]
                consumer_group = self._owner_of[edge.consumer.name]
                if producer_group == consumer_group:
                    continue
                if index not in (producer_group, consumer_group):
                    continue
                key = _edge_key(op.name, edge.consumer.name,
                                edge.consumer_port)
                port = edge.consumer.inputs[edge.consumer_port]
                if index == producer_group:
                    peer = self._inboxes[consumer_group]
                    shipping = _ShippingQueue(
                        edge.queue.name or key,
                        edge.queue.page_size,
                        peer.put,
                    )
                    proxy = _ProxyControlChannel(
                        edge.control.name or key,
                        Direction.DOWNSTREAM,
                        peer.put,
                    )
                    edge.queue = shipping
                    proxied_queue = None
                    producer_copy = None
                else:
                    peer = self._inboxes[producer_group]
                    proxy = _ProxyControlChannel(
                        edge.control.name or key,
                        Direction.UPSTREAM,
                        peer.put,
                    )
                    proxied_queue = edge.queue
                    proxied_queue.enable_thread_safety()
                    proxied_queue.attach_waiter(runtime._waiter)
                    producer_copy = op
                edge.control = proxy
                if port is not None:
                    port.control = proxy
                    if index == producer_group:
                        port.queue = edge.queue
                routes[proxy.name] = _Route(
                    proxied_queue, producer_copy, proxy
                )
                if proxy.name != key:
                    routes[key] = routes[proxy.name]
        return routes

    def _receive_loop(
        self,
        index: int,
        runtime: _WorkerRuntime,
        routes: dict[str, _Route],
    ) -> None:
        inbox = self._inboxes[index]
        while True:
            frame = inbox.get()
            tag = frame[0]
            if tag == _STOP:
                return
            route = routes.get(frame[1])
            if route is None:
                continue  # an edge this worker does not hold
            if tag == _DATA:
                if route.queue is None:
                    continue
                route.queue.put_page(decode_page(frame[2]))
                with runtime._wakeup:
                    if route.producer is not None:
                        runtime.check_pressure(route.producer)
                    runtime._wakeup.notify_all()
            elif tag == _CLOSE:
                if route.queue is not None:
                    route.queue.close()
                with runtime._wakeup:
                    if route.producer is not None:
                        # The remote producer finished; local resume
                        # signals toward it must be dropped, exactly as
                        # check_relief drops them in-process.
                        route.producer.finished = True
                    runtime._wakeup.notify_all()
            elif tag == _CTRL:
                route.proxy.deliver(frame[2])
                with runtime._wakeup:
                    runtime._wakeup.notify_all()

    def _payload(
        self, index: int, runtime: _WorkerRuntime, owned: set[str]
    ) -> dict:
        queues: dict[str, tuple[int, int, int]] = {}
        for op in self.plan:
            for edge in op.outputs:
                if self._owner_of[edge.consumer.name] != index:
                    continue
                queue = edge.queue
                queues[_edge_key(op.name, edge.consumer.name,
                                 edge.consumer_port)] = (
                    queue.peak_occupancy,
                    queue.elements_enqueued,
                    queue.pages_flushed,
                )
        states = {}
        for name in owned:
            state = self.plan.operator(name).snapshot_state()
            if state:
                states[name] = state
        return {
            "metrics": {
                name: self.plan.operator(name).metrics for name in owned
            },
            "state": states,
            "finished": [
                name for name in owned
                if self.plan.operator(name).finished
            ],
            "queues": queues,
            "outputs": list(runtime.output_log),
            "feedback": list(runtime.feedback_log),
            "makespan": self.clock.now(),
        }

    # -- merge -----------------------------------------------------------------------

    def _merge(self, payloads: list[dict]) -> RunResult:
        """Fold every worker's payload onto the coordinator's plan copy."""
        shipped_queues: dict[str, tuple[int, int, int]] = {}
        outputs: list[Any] = []
        feedback: list[Any] = []
        makespan = 0.0
        for payload in payloads:
            for name, metrics in payload["metrics"].items():
                self.plan.operator(name).metrics = metrics
            for name, state in payload["state"].items():
                self.plan.operator(name).restore_state(state)
            for name in payload["finished"]:
                self.plan.operator(name).finished = True
            shipped_queues.update(payload["queues"])
            outputs.extend(payload["outputs"])
            feedback.extend(payload["feedback"])
            makespan = max(makespan, payload["makespan"])
        for op in self.plan:
            for edge in op.outputs:
                key = _edge_key(op.name, edge.consumer.name,
                                edge.consumer_port)
                counters = shipped_queues.get(key)
                if counters is None:
                    continue
                queue = edge.queue
                (queue.peak_occupancy,
                 queue.elements_enqueued,
                 queue.pages_flushed) = counters
        outputs.sort(key=lambda record: record.time)
        feedback.sort(key=lambda event: event.time)
        self.output_log.extend(outputs)
        for event in feedback:
            self.feedback_log._events.append(event)
        metrics = self.collect_metrics()
        metrics.makespan = makespan
        return self.build_result(metrics)
