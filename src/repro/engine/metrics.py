"""Metrics: per-operator counters and the plan-wide output log.

The experiments report three kinds of numbers, all sourced here:

* **work accounting** -- virtual seconds charged per operator (the
  simulator's stand-in for the paper's "total query execution time" on a
  single-CPU machine);
* **output patterns** -- ``(tuple, emit_time)`` pairs recorded by sinks,
  which regenerate the scatter shapes of Figures 5 and 6;
* **feedback accounting** -- counts of feedback produced / exploited /
  relayed plus guard drop counters, used for the savings breakdowns;
* **flow-control accounting** -- pause/resume signals issued and received,
  time spent paused, and per-queue occupancy high-water marks, used by the
  backpressure benchmark (``BENCH_backpressure.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "OperatorMetrics",
    "OutputRecord",
    "OutputLog",
    "PlanMetrics",
    "QueueMetrics",
    "ShardGroupMetrics",
    "ShardLaneMetrics",
]


@dataclass
class OperatorMetrics:
    """Counters maintained by every operator.

    ``busy_time`` is the virtual time spent processing (charged by the cost
    model); ``state_size`` is a gauge the operator updates when its internal
    state grows or shrinks (hash-table entries, open windows, backlog).
    """

    tuples_in: int = 0
    tuples_out: int = 0
    punctuations_in: int = 0
    punctuations_out: int = 0
    pages_in: int = 0
    pages_batched: int = 0
    input_guard_drops: int = 0
    output_guard_drops: int = 0
    state_purged: int = 0
    state_size: int = 0
    peak_state_size: int = 0
    feedback_received: int = 0
    feedback_produced: int = 0
    feedback_relayed: int = 0
    feedback_ignored: int = 0
    control_messages: int = 0
    control_forwarded: int = 0
    pauses_issued: int = 0
    resumes_issued: int = 0
    pauses_received: int = 0
    resumes_received: int = 0
    time_paused: float = 0.0
    busy_time: float = 0.0
    #: Checkpoint markers this operator completed (snapshots taken), the
    #: pickled state bytes written, and wall time spent snapshotting.
    checkpoints: int = 0
    snapshot_bytes: int = 0
    snapshot_time: float = 0.0

    def grow_state(self, delta: int = 1) -> None:
        self.state_size += delta
        if self.state_size > self.peak_state_size:
            self.peak_state_size = self.state_size

    def shrink_state(self, delta: int = 1, *, purged: bool = False) -> None:
        self.state_size = max(0, self.state_size - delta)
        if purged:
            self.state_purged += delta

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view for reports and JSON-ish dumps."""
        return {
            "tuples_in": self.tuples_in,
            "tuples_out": self.tuples_out,
            "punctuations_in": self.punctuations_in,
            "punctuations_out": self.punctuations_out,
            "pages_in": self.pages_in,
            "pages_batched": self.pages_batched,
            "input_guard_drops": self.input_guard_drops,
            "output_guard_drops": self.output_guard_drops,
            "state_purged": self.state_purged,
            "peak_state_size": self.peak_state_size,
            "feedback_received": self.feedback_received,
            "feedback_produced": self.feedback_produced,
            "feedback_relayed": self.feedback_relayed,
            "feedback_ignored": self.feedback_ignored,
            "control_messages": self.control_messages,
            "control_forwarded": self.control_forwarded,
            "pauses_issued": self.pauses_issued,
            "resumes_issued": self.resumes_issued,
            "pauses_received": self.pauses_received,
            "resumes_received": self.resumes_received,
            "time_paused": self.time_paused,
            "busy_time": self.busy_time,
            "checkpoints": self.checkpoints,
            "snapshot_bytes": self.snapshot_bytes,
            "snapshot_time": self.snapshot_time,
        }


@dataclass(frozen=True)
class OutputRecord:
    """One sink emission: what arrived, when, and through which sink."""

    time: float
    element: Any
    sink: str = ""
    tag: str = ""


class OutputLog:
    """Append-only log of sink emissions (figures are drawn from this)."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: list[OutputRecord] = []

    def record(
        self, time: float, element: Any, *, sink: str = "", tag: str = ""
    ) -> None:
        self._records.append(OutputRecord(time, element, sink, tag))

    def record_many(
        self, time: float, elements: Any, *, sink: str = "", tag: str = ""
    ) -> None:
        """Bulk :meth:`record` for a batch arriving at one time stamp."""
        self._records.extend(
            OutputRecord(time, element, sink, tag) for element in elements
        )

    def extend(self, records: Any) -> None:
        """Append pre-built records (merging worker logs at run end)."""
        self._records.extend(records)

    def __iter__(self) -> Iterator[OutputRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def tuples(self) -> list[OutputRecord]:
        return [r for r in self._records if not r.element.is_punctuation]

    def tagged(self, tag: str) -> list[OutputRecord]:
        return [r for r in self._records if r.tag == tag]

    def series(self, tag: str) -> list[tuple[float, Any]]:
        """(time, element) pairs for one tag -- a figure data series."""
        return [(r.time, r.element) for r in self._records if r.tag == tag]


@dataclass(frozen=True)
class QueueMetrics:
    """Occupancy accounting of one inter-operator data queue.

    ``peak_occupancy`` is the gauge the backpressure benchmark bounds:
    with a ``capacity`` set, the runtime's pause/resume signalling keeps
    it near the high-water mark instead of letting it grow with the
    producer/consumer speed gap.

    Edges are identified structurally by ``(producer, consumer, port)``
    -- the plan-wide rollup keys entries by exactly that triple (rendered
    ``"producer->consumer[port]"``), so replicated shard edges and the
    several inputs of a join or merge always report distinct metrics even
    when the underlying queues carry hand-assigned (or colliding) names.
    """

    name: str
    capacity: int | None
    low_water: int
    peak_occupancy: int
    elements_enqueued: int
    pages_flushed: int
    producer: str = ""
    consumer: str = ""
    port: int = 0

    @property
    def edge_key(self) -> str:
        """The canonical ``producer->consumer[port]`` identifier."""
        return f"{self.producer}->{self.consumer}[{self.port}]"

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "producer": self.producer,
            "consumer": self.consumer,
            "port": self.port,
            "capacity": self.capacity,
            "low_water": self.low_water,
            "peak_occupancy": self.peak_occupancy,
            "elements_enqueued": self.elements_enqueued,
            "pages_flushed": self.pages_flushed,
        }


@dataclass(frozen=True)
class ShardLaneMetrics:
    """Rollup over one lane (replica) of a shard group.

    ``ingress`` counts every element the partitioner routed into the lane
    (tuples plus broadcast punctuation) -- the load-balance gauge; the
    remaining counters sum the lane's member-operator metrics.
    """

    lane: int
    operators: tuple[str, ...]
    ingress: int
    tuples_in: int
    tuples_out: int
    busy_time: float
    time_paused: float
    #: False when elastic rebalancing has routed every slot away from
    #: this lane (the replica is parked: built, but receiving nothing).
    active: bool = True

    def snapshot(self) -> dict[str, Any]:
        return {
            "lane": self.lane,
            "operators": list(self.operators),
            "ingress": self.ingress,
            "tuples_in": self.tuples_in,
            "tuples_out": self.tuples_out,
            "busy_time": self.busy_time,
            "time_paused": self.time_paused,
            "active": self.active,
        }


@dataclass
class ShardGroupMetrics:
    """Per-shard-group rollup: one :class:`ShardLaneMetrics` per lane."""

    name: str
    key: tuple[str, ...]
    n: int
    lanes: list[ShardLaneMetrics] = field(default_factory=list)
    regions_held: int = 0
    regions_released: int = 0
    #: Completed elastic rebalances (cut -> ack -> install round trips).
    rebalances: int = 0
    #: State entries migrated between lanes by completed rebalances.
    keys_migrated: int = 0

    def skew(self) -> float:
        """Max-over-mean lane ingress: 1.0 is perfectly balanced.

        The classic load-imbalance metric for key-partitioned
        parallelism; a heavy hitter key drives it toward ``n``.  Only
        *active* lanes count -- a replica elastic scaling parked would
        otherwise read as permanent imbalance.
        """
        loads = [lane.ingress for lane in self.lanes if lane.active]
        if not loads or not sum(loads):
            return 1.0
        return max(loads) / (sum(loads) / len(loads))

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "key": list(self.key),
            "n": self.n,
            "skew": self.skew(),
            "regions_held": self.regions_held,
            "regions_released": self.regions_released,
            "rebalances": self.rebalances,
            "keys_migrated": self.keys_migrated,
            "lanes": [lane.snapshot() for lane in self.lanes],
        }


@dataclass
class PlanMetrics:
    """Aggregated view over a finished run."""

    operator_metrics: dict[str, OperatorMetrics] = field(default_factory=dict)
    #: Per-edge rollups, keyed ``"producer->consumer[port]"`` (see
    #: :attr:`QueueMetrics.edge_key`).
    queue_metrics: dict[str, QueueMetrics] = field(default_factory=dict)
    #: Per-shard-group rollups, keyed by the group's region name.
    shard_metrics: dict[str, ShardGroupMetrics] = field(default_factory=dict)
    makespan: float = 0.0
    total_work: float = 0.0
    events_processed: int = 0
    #: Durability rollup (zero when checkpointing was off): complete
    #: epochs in the run's store, summed snapshot bytes and time.
    checkpoint_epochs: int = 0
    checkpoint_bytes: int = 0
    checkpoint_time: float = 0.0
    #: Edge keys whose lane elastic rebalancing has parked: the edge
    #: still exists (and its historical counters stand) but nothing
    #: routes through it at run end.
    inactive_edges: set[str] = field(default_factory=set)
    #: ``(what, why)`` pairs for everything elasticity skipped, exactly
    #: the optimizer's fusibility-decline convention.
    elastic_declines: list[tuple[str, str]] = field(default_factory=list)

    def peak_queue_occupancy(self) -> int:
        """The deepest any *live* data queue got during the run.

        Edges parked by a lane-count change are excluded: their peaks
        are history from before the rebalance, and a capacity-planning
        readout must reflect the topology the run ended on.
        """
        return max(
            (
                q.peak_occupancy
                for key, q in self.queue_metrics.items()
                if key not in self.inactive_edges
            ),
            default=0,
        )

    def edge(self, producer: str, consumer: str, port: int = 0) -> QueueMetrics:
        """Queue metrics for one edge, addressed structurally."""
        return self.queue_metrics[f"{producer}->{consumer}[{port}]"]

    def shard_report(self) -> str:
        """Text table of per-lane load and skew for every shard group."""
        if not self.shard_metrics:
            return "(no shard groups)"
        lines: list[str] = []
        for group in self.shard_metrics.values():
            rebalanced = (
                f", rebalances={group.rebalances}" if group.rebalances else ""
            )
            lines.append(
                f"shard {group.name!r} x{group.n} by "
                f"({', '.join(group.key)}): skew={group.skew():.3f}, "
                f"regions held/released="
                f"{group.regions_held}/{group.regions_released}"
                f"{rebalanced}"
            )
            header = (
                f"  {'lane':>4} {'ingress':>9} {'in':>9} {'out':>9} "
                f"{'busy':>10} {'paused':>8}"
            )
            lines.append(header)
            for lane in group.lanes:
                lines.append(
                    f"  {lane.lane:>4} {lane.ingress:>9} "
                    f"{lane.tuples_in:>9} {lane.tuples_out:>9} "
                    f"{lane.busy_time:>10.3f} {lane.time_paused:>8.3f}"
                    + ("" if lane.active else "  (parked)")
                )
        return "\n".join(lines)

    def work_of(self, *operators: str) -> float:
        """Summed busy time of the named operators."""
        return sum(
            self.operator_metrics[name].busy_time for name in operators
        )

    def table(self) -> str:
        """Text table of per-operator counters (debugging aid)."""
        names = sorted(self.operator_metrics)
        header = (
            f"{'operator':<18} {'in':>8} {'out':>8} {'grd_in':>7} "
            f"{'grd_out':>8} {'purged':>7} {'fb_rx':>6} {'fb_tx':>6} "
            f"{'busy':>10}"
        )
        lines = [header, "-" * len(header)]
        for name in names:
            m = self.operator_metrics[name]
            lines.append(
                f"{name:<18} {m.tuples_in:>8} {m.tuples_out:>8} "
                f"{m.input_guard_drops:>7} {m.output_guard_drops:>8} "
                f"{m.state_purged:>7} {m.feedback_received:>6} "
                f"{m.feedback_produced:>6} {m.busy_time:>10.3f}"
            )
        lines.append(
            f"total work: {self.total_work:.3f}s   makespan: "
            f"{self.makespan:.3f}s   events: {self.events_processed}"
        )
        return "\n".join(lines)
