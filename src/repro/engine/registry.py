"""Engine registry: execution engines addressable by name.

The paper's runtime (section 5) is one fixed NiagaraST deployment; the
reproduction instead treats engines as interchangeable scheduling
policies over the shared runtime core, so the same feedback semantics
can be exercised on virtual time, wall-clock threads, and the ROADMAP's
future backends.  The fluent API (``repro.api.Flow``) is engine-agnostic
*by name*, the way Beam/Flink-style builder APIs decouple pipeline
authorship from runners:
``flow.run(engine="simulated")`` looks the engine up here instead of
importing an engine class.  The ROADMAP's future backends (asyncio,
sharded, multi-process workers) plug in with one ``register_engine`` call
and every Flow/``compile_query`` call site can run on them unchanged.

An engine *factory* is any callable ``factory(plan, **options) -> engine``
where the returned engine exposes ``run() -> RunResult`` (in practice: a
:class:`~repro.engine.runtime.RuntimeCore` subclass).  Engines that also
expose ``at(time, action)`` support scheduled client actions -- both
built-in engines do -- which is what ``Flow.run``'s declarative feedback
injection rides on.

Built-in registrations:

============ ==================================================
simulated    :class:`~repro.engine.simulator.Simulator`
threaded     :class:`~repro.engine.threaded.ThreadedRuntime`
asyncio      :class:`~repro.engine.async_engine.AsyncioEngine`
multiprocess :class:`~repro.engine.multiprocess.MultiprocessEngine`
============ ==================================================
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.async_engine import AsyncioEngine
from repro.engine.multiprocess import MultiprocessEngine
from repro.engine.plan import QueryPlan
from repro.engine.runtime import RunResult
from repro.engine.simulator import Simulator
from repro.engine.threaded import ThreadedRuntime
from repro.errors import EngineError

__all__ = [
    "available_engines",
    "create_engine",
    "engine_factory",
    "register_engine",
    "run_plan",
    "unregister_engine",
]

#: Any callable building a runnable engine over a validated plan.
EngineFactory = Callable[..., Any]

_registry: dict[str, EngineFactory] = {}


def register_engine(
    name: str, factory: EngineFactory, *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    Double registration is an error unless ``replace=True`` -- silently
    shadowing an engine would redirect every ``flow.run(engine=name)``
    call site in the process.
    """
    if not name:
        raise EngineError("engine name must be non-empty")
    if not callable(factory):
        raise EngineError(
            f"engine factory for {name!r} must be callable, "
            f"got {factory!r}"
        )
    if name in _registry and not replace:
        raise EngineError(
            f"engine {name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _registry[name] = factory


def unregister_engine(name: str) -> None:
    """Remove a registered engine; unknown names are an error."""
    if name not in _registry:
        raise EngineError(f"engine {name!r} is not registered")
    del _registry[name]


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_registry))


def engine_factory(name: str) -> EngineFactory:
    """The factory registered under ``name``; raise with the known names."""
    try:
        return _registry[name]
    except KeyError:
        known = ", ".join(sorted(_registry)) or "(none)"
        raise EngineError(
            f"unknown engine {name!r}; registered engines: {known}"
        ) from None


def create_engine(name: str, plan: QueryPlan, **options: Any) -> Any:
    """Instantiate the engine ``name`` over ``plan``.

    ``options`` pass straight to the factory (``control_latency=...``,
    ``max_events=...``, ``timeout=...`` -- whatever that engine accepts).
    """
    return engine_factory(name)(plan, **options)


def run_plan(
    plan: QueryPlan, *, engine: str = "simulated", **options: Any
) -> RunResult:
    """One-shot convenience: build the named engine and run ``plan``."""
    return create_engine(engine, plan, **options).run()


register_engine("simulated", Simulator)
register_engine("threaded", ThreadedRuntime)
register_engine("asyncio", AsyncioEngine)
register_engine("multiprocess", MultiprocessEngine)
