"""Threaded runtime: the NiagaraST-faithful execution mode.

One Python thread per operator, exactly the paper's architecture (section
5): "Operators run as threads connected by inter-operator queues ...  each
operator has an object that it sleeps on when it has no work to do.  An
operator is awakened when a new data page or control message is sent to
it."

Scheduling state (control draining, completion, pause bookkeeping, page
hand-off) is serialised by a single plan lock, but **page processing runs
outside it**: each operator thread pulls a page under the lock, releases
it, processes the page -- emitting into per-queue-mutex-guarded
:class:`~repro.stream.queues.DataQueue`\\ s (see
``DataQueue.enable_thread_safety``) -- and re-acquires the lock only for
the completion/watermark bookkeeping.  Operators on disjoint data
therefore execute concurrently; with GIL-releasing work (hashing, C
extensions) or ``emulate_costs`` sleeps, the plan scales across the shard
replicas of a ``Partition``/``ShardMerge`` region (see
``BENCH_shard.json``).  Per-operator structures (guards, hash tables,
window state) need no locks: every mutation happens on the owning
operator's thread -- feedback is drained by the receiver's own thread,
and a queue has exactly one producer and one consumer thread.
Timing-sensitive experiments use the simulator; this runtime exists to
show the feedback framework is not simulator-bound and to exercise real
concurrency.

Like the simulator, this engine is a *policy* layer over
:class:`~repro.engine.runtime.RuntimeCore` (see DESIGN.md section 3): the
core owns control draining (including ``control_latency`` arrival
semantics, which this runtime honours on the wall clock), completion
bookkeeping and operator finish; this module owns the threads.  The
wake-up half of the policy -- notify hooks, deferred-control deadlines --
is the shared :class:`~repro.engine.notify.NotificationPolicy`, bound to
a :class:`~repro.stream.waiters.ThreadConditionWaiter` here and to an
``asyncio.Condition`` in the asyncio engine.  Waits are purely
notification-driven -- every state change (page flushed, queue closed,
control sent) is followed by a ``notify_all``, with page-ready and close
events announced by the :class:`~repro.stream.queues.DataQueue` waiter
seam itself -- so idle operators consume no CPU; the run-level
``timeout`` is only a watchdog on thread joins.  Operators receive whole
pages through :meth:`~repro.operators.base.Operator.process_page`, i.e.
the batch fast path, since wall-clock time needs no per-element metering.

Backpressure (``queue_capacity`` / bounded :class:`~repro.stream.queues.
DataQueue`) is honoured cooperatively: a source thread sleeps between
events while any of its output edges is paused, and an operator thread
pulls no pages while paused -- both wake when the consumer's *resume*
flow-control punctuation is drained.  See :mod:`repro.engine.runtime` for
the shared watermark/signalling mechanism and ``docs/backpressure.md``
for the deadlock-avoidance rules.

Operators' ``now()`` reports wall-clock seconds since the run started, so
sink arrival logs remain meaningful (if noisy).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.engine.notify import NotificationPolicy
from repro.engine.plan import QueryPlan
from repro.engine.runtime import RunResult, RuntimeCore
from repro.errors import EngineError
from repro.operators.base import Operator, SourceOperator
from repro.stream.clock import WallClock
from repro.stream.waiters import ThreadConditionWaiter

__all__ = ["ThreadedRuntime"]


class ThreadedRuntime(NotificationPolicy, RuntimeCore):
    """Run a plan with one thread per operator and wake-up signalling.

    Parameters
    ----------
    timeout:
        Run-level watchdog: maximum wall-clock seconds to wait for each
        operator thread to finish (worker waits themselves are untimed and
        purely notification-driven).
    control_latency:
        Wall-clock seconds between sending a control message and its
        arrival, mirroring the simulator's feedback propagation delay
        (default 0: messages are visible immediately).
    emulate_costs:
        Charge each operator's cost model (``tuple_cost`` and friends)
        on the wall clock: the summed admission cost of a page is slept
        *outside* the plan lock before the page is processed (sources
        sleep per element).  This carries the repo's methodology -- cost
        models replace the paper's fixed testbed hardware -- onto the
        threaded engine: modeled CPU cost then parallelises across
        operator threads exactly as NiagaraST's real per-operator CPU
        time would, independent of the host's core count.  Slept cost is
        recorded as ``busy_time``.
    """

    def __init__(
        self,
        plan: QueryPlan,
        *,
        timeout: float = 60.0,
        control_latency: float = 0.0,
        emulate_costs: bool = False,
        clock: WallClock | None = None,
        checkpoint_every: int | None = None,
        checkpoint_store: Any = None,
        recover_from: Any = None,
        ingestion_policy: str = "exactly-once",
        elastic: Any = None,
    ) -> None:
        # ``clock`` lets a coordinating engine share one wall-clock epoch
        # across several runtimes (the multiprocess engine constructs it
        # before forking, so every worker's timestamps are comparable).
        super().__init__(
            plan, clock if clock is not None else WallClock(),
            control_latency=control_latency,
            checkpoint_every=checkpoint_every,
            checkpoint_store=checkpoint_store,
            recover_from=recover_from,
            ingestion_policy=ingestion_policy,
            elastic=elastic,
        )
        self.timeout = timeout
        self.emulate_costs = emulate_costs
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._init_notifications(ThreadConditionWaiter(self._wakeup))
        self._actions: list[tuple[float, Callable[[], None]]] = []
        self._action_errors: list[BaseException] = []
        #: First exception raised inside an operator thread.  It aborts
        #: the whole run: every body checks the flag when it wakes, so
        #: the run fails fast instead of hanging until the watchdog.
        self._abort_error: BaseException | None = None

    def at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        owner: str | None = None,
    ) -> None:
        """Schedule a client-side action at ``time`` wall-clock seconds.

        Mirrors :meth:`Simulator.at` so callers (``Flow.run``'s feedback
        injection, tests) can schedule actions engine-agnostically.  The
        action runs on a timer thread under the plan lock, measured from
        run start; an action whose time falls after the plan has already
        drained never fires -- the same "the stream is over" rule both
        engines apply to in-flight feedback.

        ``owner`` optionally names the operator the action targets.  A
        single-process runtime ignores it (every operator is local); the
        multiprocess engine uses it to route the action to the worker
        owning that operator.
        """
        if self._started:
            raise EngineError("schedule actions before calling run()")
        self._actions.append((float(time), action))

    def _run_action(self, action: Callable[[], None]) -> None:
        # Runs on a timer thread: a raised exception would otherwise be
        # swallowed there and the run would report success with the
        # action's effect silently missing.  Capture it; run() re-raises.
        try:
            with self._lock:
                action()
                self._wakeup.notify_all()
        except BaseException as error:  # noqa: BLE001 - re-raised in run()
            with self._lock:
                self._action_errors.append(error)
                self._wakeup.notify_all()

    # The wake-up hooks (notify_control/notify_data, deferred-control
    # deadlines, _on_finished/_on_paused/_on_resumed) come from
    # NotificationPolicy, shared with the asyncio engine.

    # -- thread bodies --------------------------------------------------------------

    def _wait_for_work(self, operator: Operator) -> None:
        """Sleep until a page or control message arrives.

        Purely notification-driven; the only timed wait is the arrival
        deadline of an in-flight (deferred) control message.
        """
        self._wakeup.wait(timeout=self.wait_timeout(operator))

    def _source_body(self, source: SourceOperator) -> None:
        for _arrival, element in self.source_events(source):
            if self.emulate_costs:
                cost = source.cost_of(element)
                if cost > 0.0:
                    time.sleep(cost)  # outside the lock: sources overlap
                    source.metrics.busy_time += cost
            with self._lock:
                if self._abort_error is not None:
                    return
                self.drain_control(source)
                while self.is_paused(source):
                    # Honour backpressure: sleep until the consumer's
                    # resume arrives (every control send notifies).
                    self._wait_for_work(source)
                    if self._abort_error is not None:
                        return
                    self.drain_control(source)
                self.dispatch_source_element(source, element)
                self.check_pressure(source)
                self._wakeup.notify_all()
        with self._lock:
            if self._abort_error is not None:
                return
            # Same rule as the simulator: arrived control is delivered,
            # but feedback still in flight toward an exhausted source is
            # dropped -- the stream is over and there is nothing left to
            # exploit.
            self.drain_control(source)
            self.finish_operator(source)
            self._wakeup.notify_all()

    def _operator_body(self, operator: Operator) -> None:
        while True:
            with self._wakeup:
                if self._abort_error is not None:
                    return
                if self.drain_control(operator):
                    # Feedback handling may have emitted (partial results,
                    # flushes, a lane-stash replay); consumers must hear
                    # about it, and a replayed stash may refill a lane
                    # queue past its high-water mark.
                    self.check_pressure(operator)
                    self._wakeup.notify_all()
                if self.is_paused(operator):
                    # Transitive pressure: while paused this operator
                    # pulls no pages, so its own inputs back up and pause
                    # its producers.  Exhausted inputs may still finish
                    # it -- holding finish hostage to a resume could
                    # deadlock the tail of the stream.
                    self.check_input_completion(operator)
                    if operator.finished:
                        return
                    self._wait_for_work(operator)
                    continue
                page, port = None, None
                for candidate in operator.inputs:
                    if candidate is None:
                        continue
                    page = candidate.queue.get_page()
                    if page is not None:
                        port = candidate
                        break
                if page is None:
                    self.check_input_completion(operator)
                    if operator.finished:
                        return
                    self._wait_for_work(operator)
                    continue
                operator.set_now(self.clock.now())
            # Page processing runs OUTSIDE the plan lock: emission goes
            # into mutex-guarded queues, per-operator state is only ever
            # touched by this thread, and control for this operator waits
            # until the next loop turn (control-before-data is preserved
            # per page, exactly as before).  This is what lets shard
            # replicas -- and any operators on disjoint data -- execute
            # concurrently instead of serialising on the plan lock.
            if self.emulate_costs and operator.needs_metering:
                cost = 0.0
                for element in page:
                    cost += operator.admission_cost(port.index, element)
                if cost > 0.0:
                    time.sleep(cost)
                    operator.metrics.busy_time += cost
            operator.process_page(port.index, page)
            with self._wakeup:
                self.mark_done_ports(operator)
                self.check_relief(operator)
                self.check_pressure(operator)
                self._wakeup.notify_all()

    def _elastic_body(self, stop: threading.Event) -> None:
        """Controller ticker: observe/decide/apply every ``interval``.

        Ticks run under the plan lock -- the controller reads operator
        counters and enqueues control, both of which the operator
        threads also do under that lock -- so no new synchronisation is
        needed; the partition applies decisions from its own thread.
        """
        interval = self.elastic.config.interval
        try:
            while not stop.wait(interval):
                with self._lock:
                    if self._abort_error is not None:
                        return
                    self.elastic.tick(self.clock.now())
                    self._wakeup.notify_all()
        except BaseException as error:  # noqa: BLE001 - re-raised in run()
            with self._lock:
                if self._abort_error is None:
                    self._abort_error = error
                self._wakeup.notify_all()

    def _guard_body(
        self, body: Callable[[Operator], None], operator: Operator
    ) -> None:
        """Thread target: run ``body`` and abort the run on exception.

        Without this, a thread dying mid-page would leave the rest of the
        plan waiting on data that never comes until the watchdog fires;
        instead the first error is captured, every sleeping body is woken
        to check the abort flag, and :meth:`run` re-raises it.
        """
        try:
            body(operator)
        except BaseException as error:  # noqa: BLE001 - re-raised in run()
            with self._lock:
                if self._abort_error is None:
                    self._abort_error = error
                self._wakeup.notify_all()

    # -- run -------------------------------------------------------------------------

    def _executed_operators(self) -> list[Operator]:
        """The operators this runtime starts threads for.

        The whole plan by default; a multiprocess worker restricts this to
        its owned group (remote operators run in their owning workers).
        """
        return list(self.plan)

    def run(self) -> RunResult:
        self._begin()
        try:
            return self._run()
        except BaseException as error:
            # Fail anyone parked on an unfinished operator (an
            # AwaitableSink's waiting client coroutines).
            self._notify_run_aborted(error)
            raise

    def _run(self) -> RunResult:
        executed = self._executed_operators()
        for op in executed:
            # Producers emit outside the plan lock; serialise each
            # queue's open-page/backlog hand-off with its own mutex, and
            # let the queue itself wake consumers when a page lands (the
            # shared waiter seam -- notified outside the mutex, so the
            # lock order is always waiter-after-queue, never inverted).
            # Input queues are prepared too: in a multiprocess worker a
            # consumer's input queue may be fed by a receiver thread
            # rather than a local producer thread.
            for edge in op.outputs:
                edge.queue.enable_thread_safety()
                edge.queue.attach_waiter(self._waiter)
            for port in op.inputs:
                if port is not None:
                    port.queue.enable_thread_safety()
                    port.queue.attach_waiter(self._waiter)
        self._start_operators()
        threads: list[threading.Thread] = []
        for op in executed:
            if isinstance(op, SourceOperator):
                body, args = self._source_body, (op,)
            else:
                body, args = self._operator_body, (op,)
            thread = threading.Thread(
                target=self._guard_body, args=(body,) + args,
                name=f"op-{op.name}", daemon=True,
            )
            threads.append(thread)
        timers: list[threading.Timer] = []
        for time, action in self._actions:
            timer = threading.Timer(time, self._run_action, args=(action,))
            timer.daemon = True
            timers.append(timer)
        ticker: threading.Thread | None = None
        ticker_stop = threading.Event()
        if self.elastic is not None:
            ticker = threading.Thread(
                target=self._elastic_body, args=(ticker_stop,),
                name="elastic-controller", daemon=True,
            )
            ticker.start()
        for thread in threads:
            thread.start()
        for timer in timers:
            timer.start()
        try:
            for thread in threads:
                thread.join(self.timeout)
                if thread.is_alive():
                    raise EngineError(
                        f"operator thread {thread.name} did not finish "
                        f"within {self.timeout}s"
                    )
        finally:
            # cancel() is a no-op on a callback that is already running:
            # join the timer threads too, so a late-firing action cannot
            # mutate state concurrently with result building or report
            # its error after we checked for one.
            for timer in timers:
                timer.cancel()
            for timer in timers:
                timer.join(self.timeout)
            if ticker is not None:
                ticker_stop.set()
                ticker.join(self.timeout)
        if self._abort_error is not None:
            raise self._abort_error
        if self._action_errors:
            raise self._action_errors[0]
        return self.build_result(self.collect_metrics())
