"""Threaded runtime: the NiagaraST-faithful execution mode.

One Python thread per operator, exactly the paper's architecture (section
5): "Operators run as threads connected by inter-operator queues ...  each
operator has an object that it sleeps on when it has no work to do.  An
operator is awakened when a new data page or control message is sent to
it."

Processing is serialised by a single plan lock (CPython's GIL would
serialise compute anyway), which keeps the unmodified single-threaded
operator code safe while preserving the structure: threads, queues, wake on
arrival, control before data.  Timing-sensitive experiments use the
simulator; this runtime exists to show the feedback framework is not
simulator-bound and to exercise real concurrency in tests.

Operators' ``now()`` reports wall-clock seconds since the run started, so
sink arrival logs remain meaningful (if noisy).
"""

from __future__ import annotations

import threading

from repro.core.roles import FeedbackLog
from repro.engine.metrics import OutputLog, PlanMetrics
from repro.engine.plan import QueryPlan
from repro.engine.simulator import RunResult
from repro.errors import EngineError
from repro.operators.base import Operator, SourceOperator
from repro.stream.clock import WallClock
from repro.stream.control import ControlMessageKind

__all__ = ["ThreadedRuntime"]


class ThreadedRuntime:
    """Run a plan with one thread per operator and wake-up signalling."""

    def __init__(self, plan: QueryPlan, *, timeout: float = 60.0) -> None:
        plan.validate()
        self.plan = plan
        self.timeout = timeout
        self.clock = WallClock()
        self.feedback_log = FeedbackLog()
        self.output_log = OutputLog()
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._started = False

    # -- runtime surface seen by operators ----------------------------------------

    def now(self) -> float:
        return self.clock.now()

    def notify_control(
        self, operator: Operator, at: float | None = None
    ) -> None:
        # Wall-clock runtime: messages are visible immediately; ``at`` is a
        # virtual-time hint that only the simulator needs.
        with self._lock:
            self._wakeup.notify_all()

    def notify_data(self, operator: Operator) -> None:
        with self._lock:
            self._wakeup.notify_all()

    # -- thread bodies --------------------------------------------------------------

    def _drain_control(self, operator: Operator) -> bool:
        drained = False
        while True:
            message, from_edge = None, None
            for edge in operator.outputs:
                message = edge.control.receive_upstream()
                if message is not None:
                    from_edge = edge
                    break
            if message is None:
                for port in operator.inputs:
                    if port is None:
                        continue
                    message = port.control.receive_downstream()
                    if message is not None:
                        break
            if message is None:
                return drained
            drained = True
            operator.metrics.control_messages += 1
            operator.set_now(self.clock.now())
            if message.kind is ControlMessageKind.FEEDBACK:
                operator.receive_feedback(message.payload, from_edge=from_edge)
            elif message.kind is ControlMessageKind.RESULT_REQUEST:
                operator.on_result_request(message.payload)

    def _source_body(self, source: SourceOperator) -> None:
        for _arrival, element in source.events():
            with self._lock:
                self._drain_control(source)
                source.set_now(self.clock.now())
                if element.is_punctuation:
                    source.emit_punctuation(element)
                else:
                    source.emit(element)
                self._wakeup.notify_all()
        with self._lock:
            self._drain_control(source)
            source.finished = True
            source.on_finish()
            for edge in source.outputs:
                edge.queue.close()
            self._wakeup.notify_all()

    def _operator_body(self, operator: Operator) -> None:
        while True:
            with self._wakeup:
                self._drain_control(operator)
                page, port = None, None
                for candidate in operator.inputs:
                    if candidate is None:
                        continue
                    page = candidate.queue.get_page()
                    if page is not None:
                        port = candidate
                        break
                if page is None:
                    if self._all_inputs_done(operator):
                        self._finish(operator)
                        return
                    # Sleep until a page or control message arrives.
                    self._wakeup.wait(timeout=0.1)
                    continue
                operator.set_now(self.clock.now())
                for element in page:
                    operator.process_element(port.index, element)
                self._mark_done_ports(operator)
                self._wakeup.notify_all()

    def _all_inputs_done(self, operator: Operator) -> bool:
        self._mark_done_ports(operator)
        return all(
            port is None or port.done for port in operator.inputs
        )

    def _mark_done_ports(self, operator: Operator) -> None:
        for port in operator.inputs:
            if port is not None and not port.done and port.queue.exhausted:
                port.done = True
                operator.set_now(self.clock.now())
                operator.on_input_done(port.index)

    def _finish(self, operator: Operator) -> None:
        operator.finished = True
        operator.set_now(self.clock.now())
        operator.on_finish()
        for edge in operator.outputs:
            edge.queue.close()
        self._wakeup.notify_all()

    # -- run -------------------------------------------------------------------------

    def run(self) -> RunResult:
        if self._started:
            raise EngineError("ThreadedRuntime instances are single-use")
        self._started = True
        for op in self.plan:
            op.runtime = self
            op.set_now(0.0)
            op.on_start()
        threads: list[threading.Thread] = []
        for op in self.plan:
            if isinstance(op, SourceOperator):
                body, args = self._source_body, (op,)
            else:
                body, args = self._operator_body, (op,)
            thread = threading.Thread(
                target=body, args=args, name=f"op-{op.name}", daemon=True
            )
            threads.append(thread)
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(self.timeout)
            if thread.is_alive():
                raise EngineError(
                    f"operator thread {thread.name} did not finish within "
                    f"{self.timeout}s"
                )
        metrics = PlanMetrics()
        for op in self.plan:
            metrics.operator_metrics[op.name] = op.metrics
            metrics.total_work += op.metrics.busy_time
        metrics.makespan = self.clock.now()
        return RunResult(
            plan=self.plan,
            metrics=metrics,
            output_log=self.output_log,
            feedback_log=self.feedback_log,
        )
