"""Deterministic discrete-event simulator: the primary execution engine.

The simulator models NiagaraST's runtime (one thread per operator, pages
between operators, out-of-band control with priority) on a **virtual
clock**:

* every operator has a ``busy_until`` horizon; processing an element
  advances it by the operator's cost model;
* sources replay ``(arrival_time, element)`` timelines;
* control messages (feedback!) are delivered with a configurable latency
  and always drain **before** data pages -- NiagaraST's "control messages
  are given high priority and processed before pending tuples";
* emission times equal the virtual time at which the producing element
  finished processing, so output-pattern figures (Figures 5-6) fall out of
  the sink logs directly.

Determinism: events are ordered by ``(time, priority, seq)`` where ``seq``
is a global counter, so runs are exactly reproducible.  This engine is the
substitution for the paper's 2.8 GHz Pentium 4 testbed (see DESIGN.md):
cost *ratios* are preserved while removing host-machine noise.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.core.roles import FeedbackLog
from repro.engine.metrics import OutputLog, PlanMetrics
from repro.engine.plan import QueryPlan
from repro.errors import EngineError
from repro.operators.base import Operator, SourceOperator
from repro.stream.clock import VirtualClock
from repro.stream.control import ControlMessageKind

__all__ = ["Simulator", "RunResult"]

# Event priorities: control preempts everything at equal timestamps.
_PRIO_CONTROL = 0
_PRIO_ACTION = 1
_PRIO_SOURCE = 2
_PRIO_WORK = 3


@dataclass
class RunResult:
    """Everything a finished simulation exposes to callers."""

    plan: QueryPlan
    metrics: PlanMetrics
    output_log: OutputLog
    feedback_log: FeedbackLog

    @property
    def makespan(self) -> float:
        return self.metrics.makespan

    @property
    def total_work(self) -> float:
        return self.metrics.total_work

    def sink(self, name: str) -> Operator:
        return self.plan.operator(name)


class _SimRuntime:
    """The runtime surface operators see (clock, logs, wake-ups)."""

    def __init__(self, simulator: "Simulator") -> None:
        self._simulator = simulator
        self.feedback_log = FeedbackLog()
        self.output_log = OutputLog()

    def now(self) -> float:
        return self._simulator.clock.now()

    def notify_control(self, operator: Operator, at: float | None = None) -> None:
        self._simulator.schedule_control(operator, at=at)

    def notify_data(self, operator: Operator) -> None:
        self._simulator.schedule_work(operator)


class Simulator:
    """Run a query plan to completion on virtual time.

    Parameters
    ----------
    control_latency:
        Virtual seconds between sending a control message and its arrival
        (feedback propagation delay; default 0).
    max_events:
        Safety valve against runaway plans.
    """

    def __init__(
        self,
        plan: QueryPlan,
        *,
        control_latency: float = 0.0,
        max_events: int = 50_000_000,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.clock = VirtualClock()
        self.control_latency = float(control_latency)
        self.max_events = max_events
        self.runtime = _SimRuntime(self)
        self._events: list[tuple[float, int, int, str, Any]] = []
        self._seq = itertools.count()
        self._busy_until: dict[str, float] = {}
        self._work_scheduled: dict[str, bool] = {}
        self._source_iters: dict[str, Iterator[tuple[float, Any]]] = {}
        self._rr_port: dict[str, int] = {}
        self._events_processed = 0
        self._started = False
        self._actions: list[tuple[float, Callable[[], None]]] = []

    # ------------------------------------------------------------ scheduling

    def _push(self, time: float, priority: int, kind: str, payload: Any) -> None:
        # An event can be *requested* for the past (e.g. work on a page
        # that has been sitting ready while the consumer was busy); it is
        # processed immediately -- virtual time never rewinds.
        heapq.heappush(
            self._events,
            (max(time, self.clock.now()), priority, next(self._seq), kind,
             payload),
        )

    def schedule_control(self, operator: Operator, at: float | None = None) -> None:
        sent = self.clock.now() if at is None else max(at, self.clock.now())
        self._push(
            sent + self.control_latency,
            _PRIO_CONTROL,
            "control",
            operator,
        )

    def schedule_work(self, operator: Operator, at: float | None = None) -> None:
        if self._work_scheduled.get(operator.name):
            return
        self._work_scheduled[operator.name] = True
        arrival = self.clock.now() if at is None else at
        self._push(
            max(arrival, self._busy_until[operator.name]),
            _PRIO_WORK,
            "work",
            operator,
        )

    def at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a client-side action (poll, zoom, demand) at a time."""
        if self._started:
            raise EngineError("schedule actions before calling run()")
        self._actions.append((time, action))

    # ------------------------------------------------------------------ run

    def run(self) -> RunResult:
        if self._started:
            raise EngineError("simulator instances are single-use")
        self._started = True
        for op in self.plan:
            op.runtime = self.runtime
            self._busy_until[op.name] = 0.0
            self._work_scheduled[op.name] = False
            self._rr_port[op.name] = 0
            op.set_now(0.0)
            op.on_start()
        for source in self.plan.sources():
            iterator = iter(source.events())
            self._source_iters[source.name] = iterator
            self._schedule_next_source_event(source)
        for time, action in self._actions:
            self._push(time, _PRIO_ACTION, "action", action)

        while self._events:
            self._events_processed += 1
            if self._events_processed > self.max_events:
                raise EngineError(
                    f"exceeded max_events={self.max_events}; "
                    "plan is likely livelocked"
                )
            time, _prio, _seq, kind, payload = heapq.heappop(self._events)
            self.clock.advance_to(time)
            if kind == "source":
                self._handle_source(payload)
            elif kind == "control":
                self._handle_control(payload)
            elif kind == "action":
                payload()
            else:
                self._handle_work(payload)
        return self._finalise()

    # ------------------------------------------------------------- sources

    def _schedule_next_source_event(self, source: SourceOperator) -> None:
        iterator = self._source_iters[source.name]
        try:
            arrival, element = next(iterator)
        except StopIteration:
            self._push(self.clock.now(), _PRIO_SOURCE, "source", (source, None))
            return
        self._push(max(arrival, self.clock.now()), _PRIO_SOURCE,
                   "source", (source, element))

    def _handle_source(self, payload: tuple[SourceOperator, Any]) -> None:
        source, element = payload
        if element is None:  # exhausted: close downstream
            self._finish_operator(source)
            return
        source.set_now(self.clock.now())
        if element.is_punctuation:
            source.emit_punctuation(element)
        else:
            source.emit(element)
        self._after_activity(source, at=self.clock.now())
        self._schedule_next_source_event(source)

    # ------------------------------------------------------------- control

    def _drain_control(self, operator: Operator) -> bool:
        """Deliver pending, *arrived* control for ``operator``; True if any.

        A message arrives at ``sent_at + control_latency``; heads that have
        not arrived yet stay queued and get their own control event at the
        arrival time, preserving causality when a busy producer generated
        feedback "in the future" relative to the event-loop clock.
        """
        delivered = False
        now = self.clock.now()
        while True:
            message = None
            from_edge = None
            for edge in operator.outputs:  # feedback from consumers
                head = edge.control.peek_upstream()
                if head is None:
                    continue
                if head.sent_at + self.control_latency > now + 1e-12:
                    self._push(
                        head.sent_at + self.control_latency,
                        _PRIO_CONTROL, "control", operator,
                    )
                    continue
                message = edge.control.receive_upstream()
                from_edge = edge
                break
            if message is None:
                for port in operator.inputs:  # notices from producers
                    if port is None:
                        continue
                    head = port.control.peek_downstream()
                    if head is None:
                        continue
                    if head.sent_at + self.control_latency > now + 1e-12:
                        self._push(
                            head.sent_at + self.control_latency,
                            _PRIO_CONTROL, "control", operator,
                        )
                        continue
                    message = port.control.receive_downstream()
                    break
            if message is None:
                return delivered
            delivered = True
            operator.metrics.control_messages += 1
            cost = operator.control_cost
            busy = max(self._busy_until[operator.name], self.clock.now())
            busy += cost
            self._busy_until[operator.name] = busy
            operator.metrics.busy_time += cost
            operator.set_now(busy)
            if message.kind is ControlMessageKind.FEEDBACK:
                operator.receive_feedback(message.payload, from_edge=from_edge)
            elif message.kind is ControlMessageKind.RESULT_REQUEST:
                operator.on_result_request(message.payload)
            # END_OF_STREAM / SHUTDOWN are carried via queue closure.

    def _handle_control(self, operator: Operator) -> None:
        if operator.finished:
            # Late feedback to a finished operator is dropped; the stream
            # is over and there is nothing left to exploit.
            return
        self._drain_control(operator)
        self._after_activity(operator)
        if self._has_data_work(operator):
            self.schedule_work(operator)

    # ---------------------------------------------------------------- work

    def _has_data_work(self, operator: Operator) -> bool:
        return any(
            port is not None and port.queue.ready_pages > 0
            for port in operator.inputs
        )

    def _next_port_with_work(self, operator: Operator):
        """The port whose head page became available earliest.

        Ties break round-robin so neither input of a join can starve.
        """
        ports = [p for p in operator.inputs if p is not None]
        if not ports:
            return None
        start = self._rr_port[operator.name] % len(ports)
        best = None
        best_at = None
        for offset in range(len(ports)):
            port = ports[(start + offset) % len(ports)]
            head = port.queue.peek_page()
            if head is None:
                continue
            available = head.available_at or 0.0
            if best_at is None or available < best_at - 1e-12:
                best, best_at = port, available
        if best is not None:
            self._rr_port[operator.name] = (
                ports.index(best) + 1
            ) % max(1, len(ports))
        return best

    def _handle_work(self, operator: Operator) -> None:
        self._work_scheduled[operator.name] = False
        if operator.finished:
            return
        self._drain_control(operator)
        port = self._next_port_with_work(operator)
        if port is not None:
            page = port.queue.get_page()
            busy = max(
                self._busy_until[operator.name],
                page.available_at or 0.0,
            )
            for element in page:
                cost = operator.admission_cost(port.index, element)
                busy += cost
                operator.metrics.busy_time += cost
                self._busy_until[operator.name] = busy
                operator.set_now(busy)
                operator.process_element(port.index, element)
                self._after_activity(operator, at=busy)
        self._check_input_completion(operator)
        self._after_activity(operator, at=self._busy_until[operator.name])
        if not operator.finished and self._has_data_work(operator):
            self.schedule_work(operator, at=self._earliest_ready(operator))

    # ------------------------------------------------------------ completion

    def _check_input_completion(self, operator: Operator) -> None:
        if operator.finished or isinstance(operator, SourceOperator):
            return
        all_done = True
        for port in operator.inputs:
            if port is None:
                continue
            if not port.done and port.queue.exhausted:
                port.done = True
                operator.set_now(
                    max(self._busy_until[operator.name], self.clock.now())
                )
                operator.on_input_done(port.index)
            all_done = all_done and port.done
        if all_done and operator.inputs:
            self._finish_operator(operator)

    def _finish_operator(self, operator: Operator) -> None:
        if operator.finished:
            return
        operator.finished = True
        operator.set_now(
            max(self._busy_until[operator.name], self.clock.now())
        )
        operator.on_finish()
        for edge in operator.outputs:
            edge.queue.close()
        self._after_activity(
            operator, at=max(self._busy_until[operator.name], self.clock.now())
        )

    # -------------------------------------------------------------- plumbing

    def _after_activity(self, operator: Operator, at: float | None = None) -> None:
        """Stamp freshly flushed pages and wake the consumers."""
        stamp_time = self.clock.now() if at is None else at
        for edge in operator.outputs:
            flushed = edge.queue.stamp_ready(stamp_time)
            if flushed or edge.queue.closed:
                self.schedule_work(edge.consumer, at=stamp_time)

    def _earliest_ready(self, operator: Operator) -> float:
        """Earliest availability among the operator's pending pages."""
        earliest = None
        for port in operator.inputs:
            if port is None:
                continue
            head = port.queue.peek_page()
            if head is None:
                continue
            available = head.available_at or 0.0
            if earliest is None or available < earliest:
                earliest = available
        return self.clock.now() if earliest is None else earliest

    def _finalise(self) -> RunResult:
        metrics = PlanMetrics(events_processed=self._events_processed)
        for op in self.plan:
            metrics.operator_metrics[op.name] = op.metrics
            metrics.total_work += op.metrics.busy_time
        metrics.makespan = max(
            [self.clock.now()] + list(self._busy_until.values())
        )
        return RunResult(
            plan=self.plan,
            metrics=metrics,
            output_log=self.runtime.output_log,
            feedback_log=self.runtime.feedback_log,
        )
