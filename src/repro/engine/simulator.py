"""Deterministic discrete-event simulator: the primary execution engine.

Paper cross-reference: section 5 ("Implementation") fixes NiagaraST's
runtime as one thread per operator connected by page queues, with
control messages "given high priority and processed before pending
tuples"; sections 3-4 define the feedback semantics whose timing
(Figures 5-6, the PACE divergence bounds of section 3.2) the
experiments measure.  The simulator models that runtime on a **virtual
clock**:

* every operator has a ``busy_until`` horizon; processing an element
  advances it by the operator's cost model;
* sources replay ``(arrival_time, element)`` timelines;
* control messages (feedback!) are delivered with a configurable latency
  and always drain **before** data pages -- NiagaraST's "control messages
  are given high priority and processed before pending tuples";
* emission times equal the virtual time at which the producing element
  finished processing, so output-pattern figures (Figures 5-6) fall out of
  the sink logs directly.

Determinism: events are ordered by ``(time, priority, seq)`` where ``seq``
is a global counter, so runs are exactly reproducible.  This engine is the
substitution for the paper's 2.8 GHz Pentium 4 testbed (see DESIGN.md):
cost *ratios* are preserved while removing host-machine noise.  Because
every operator advances its own ``busy_until`` horizon, the virtual clock
models one CPU *per operator* (NiagaraST's thread-per-operator
architecture) -- so a sharded plan's makespan shrinks near-linearly with
the fanout on CPU-bound pipelines (``BENCH_shard.json``), and a
``Partition``'s stable hash keeps replica runs byte-reproducible.

Architecturally the simulator is a *policy* layer over
:class:`~repro.engine.runtime.RuntimeCore` (see DESIGN.md section 3): the
core owns control draining, completion bookkeeping and operator finish;
this module owns the event heap, the virtual clock, and the cost model.
Pages are handed to operators through
:meth:`~repro.operators.base.Operator.process_page`; zero-cost operators
take the batch fast path, costed operators get a per-element ``meter``
that charges their cost model and stamps the virtual clock exactly as the
historical per-element loop did.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator

from repro.engine.plan import QueryPlan
from repro.engine.runtime import RunResult, RuntimeCore
from repro.errors import EngineError
from repro.operators.base import InputPort, Operator, SourceOperator
from repro.stream.clock import VirtualClock

__all__ = ["Simulator", "RunResult"]

# Event priorities: control preempts everything at equal timestamps.
_PRIO_CONTROL = 0
_PRIO_ACTION = 1
_PRIO_SOURCE = 2
_PRIO_WORK = 3


class Simulator(RuntimeCore):
    """Run a query plan to completion on virtual time.

    Parameters
    ----------
    control_latency:
        Virtual seconds between sending a control message and its arrival
        (feedback propagation delay; default 0).
    max_events:
        Safety valve against runaway plans.
    """

    def __init__(
        self,
        plan: QueryPlan,
        *,
        control_latency: float = 0.0,
        max_events: int = 50_000_000,
        checkpoint_every: int | None = None,
        checkpoint_store: Any = None,
        recover_from: Any = None,
        ingestion_policy: str = "exactly-once",
        elastic: Any = None,
    ) -> None:
        super().__init__(
            plan, VirtualClock(), control_latency=control_latency,
            checkpoint_every=checkpoint_every,
            checkpoint_store=checkpoint_store,
            recover_from=recover_from,
            ingestion_policy=ingestion_policy,
            elastic=elastic,
        )
        self.max_events = max_events
        self._events: list[tuple[float, int, int, str, Any]] = []
        self._seq = itertools.count()
        self._busy_until: dict[str, float] = {}
        self._work_scheduled: dict[str, bool] = {}
        self._source_iters: dict[str, Iterator[tuple[float, Any]]] = {}
        self._rr_port: dict[str, int] = {}
        self._events_processed = 0
        self._actions: list[tuple[float, Callable[[], None]]] = []
        #: Source elements that arrived while their source was paused:
        #: exactly one per paused source (event chaining stops at the
        #: stash), replayed by ``_on_resumed``.
        self._paused_source_pending: dict[str, Any] = {}

    @property
    def runtime(self) -> "Simulator":
        """The runtime surface operators see (the simulator itself)."""
        return self

    # ------------------------------------------------------------ scheduling

    def _push(self, time: float, priority: int, kind: str, payload: Any) -> None:
        # An event can be *requested* for the past (e.g. work on a page
        # that has been sitting ready while the consumer was busy); it is
        # processed immediately -- virtual time never rewinds.
        heapq.heappush(
            self._events,
            (max(time, self.clock.now()), priority, next(self._seq), kind,
             payload),
        )

    def schedule_control(self, operator: Operator, at: float | None = None) -> None:
        sent = self.clock.now() if at is None else max(at, self.clock.now())
        self._push(
            sent + self.control_latency,
            _PRIO_CONTROL,
            "control",
            operator,
        )

    def schedule_work(self, operator: Operator, at: float | None = None) -> None:
        if self._work_scheduled.get(operator.name):
            return
        self._work_scheduled[operator.name] = True
        arrival = self.clock.now() if at is None else at
        self._push(
            max(arrival, self._busy_until[operator.name]),
            _PRIO_WORK,
            "work",
            operator,
        )

    def at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a client-side action (poll, zoom, demand) at a time."""
        if self._started:
            raise EngineError("schedule actions before calling run()")
        self._actions.append((time, action))

    # -- RuntimeCore policy hooks --------------------------------------------------

    def notify_control(self, operator: Operator, at: float | None = None) -> None:
        self.schedule_control(operator, at=at)

    def notify_data(self, operator: Operator) -> None:
        self.schedule_work(operator)

    def _activity_time(self, operator: Operator) -> float:
        return max(self._busy_until[operator.name], self.clock.now())

    def _charge_control(self, operator: Operator) -> None:
        cost = operator.control_cost
        busy = max(self._busy_until[operator.name], self.clock.now())
        busy += cost
        self._busy_until[operator.name] = busy
        operator.metrics.busy_time += cost
        operator.set_now(busy)

    def _defer_control(self, operator: Operator, arrival: float) -> None:
        self._push(arrival, _PRIO_CONTROL, "control", operator)

    def _on_finished(self, operator: Operator, at: float) -> None:
        self._after_activity(operator, at=at)

    def _on_paused(self, operator: Operator, at: float) -> None:
        # The pause flushed the operator's open output pages; stamp them
        # visible so consumers can drain to their low-water marks.
        self._after_activity(operator, at=at)

    def _on_resumed(self, operator: Operator, at: float) -> None:
        pending = self._paused_source_pending.pop(operator.name, None)
        if pending is not None:
            self._push(at, _PRIO_SOURCE, "source", (operator, pending))
        else:
            self.schedule_work(operator)

    # ------------------------------------------------------------------ run

    def run(self) -> RunResult:
        self._begin()
        try:
            return self._run()
        except BaseException as error:
            # Fail anyone parked on an unfinished operator (an
            # AwaitableSink awaited concurrently from another thread).
            self._notify_run_aborted(error)
            raise

    def _run(self) -> RunResult:
        for op in self.plan:
            self._busy_until[op.name] = 0.0
            self._work_scheduled[op.name] = False
            self._rr_port[op.name] = 0
        self._start_operators()
        for source in self.plan.sources():
            iterator = iter(self.source_events(source))
            self._source_iters[source.name] = iterator
            self._schedule_next_source_event(source)
        for time, action in self._actions:
            self._push(time, _PRIO_ACTION, "action", action)
        if self.elastic is not None:
            self._push(
                self.elastic.config.interval, _PRIO_ACTION, "elastic", None
            )

        while self._events:
            self._events_processed += 1
            if self._events_processed > self.max_events:
                raise EngineError(
                    f"exceeded max_events={self.max_events}; "
                    "plan is likely livelocked"
                )
            time, _prio, _seq, kind, payload = heapq.heappop(self._events)
            self.clock.advance_to(time)
            if kind == "source":
                self._handle_source(payload)
            elif kind == "control":
                self._handle_control(payload)
            elif kind == "action":
                payload()
            elif kind == "elastic":
                self._handle_elastic()
            else:
                self._handle_work(payload)
        return self._finalise()

    # ------------------------------------------------------------- sources

    def _schedule_next_source_event(self, source: SourceOperator) -> None:
        iterator = self._source_iters[source.name]
        try:
            arrival, element = next(iterator)
        except StopIteration:
            self._push(self.clock.now(), _PRIO_SOURCE, "source", (source, None))
            return
        self._push(max(arrival, self.clock.now()), _PRIO_SOURCE,
                   "source", (source, element))

    def _handle_source(self, payload: tuple[SourceOperator, Any]) -> None:
        source, element = payload
        if element is None:  # exhausted: close downstream
            # Finishing is legal even while paused (rule 2): the queues
            # close, consumers drain them, and the pause dies with the
            # stream -- this is what keeps a paused-at-end plan live.
            self.finish_operator(source)
            return
        if self.is_paused(source):
            # Honour the pause: stash the element and stop the event
            # chain; _on_resumed replays it when relief arrives.
            self._paused_source_pending[source.name] = element
            return
        self.dispatch_source_element(source, element)
        self._after_activity(source, at=self.clock.now())
        self._schedule_next_source_event(source)

    # ------------------------------------------------------------- control

    def _handle_control(self, operator: Operator) -> None:
        if operator.finished:
            # Late feedback to a finished operator is dropped; the stream
            # is over and there is nothing left to exploit.
            return
        self.drain_control(operator)
        self._after_activity(operator)
        if not self.is_paused(operator) and self._has_data_work(operator):
            self.schedule_work(operator)

    # -------------------------------------------------------------- elastic

    def _handle_elastic(self) -> None:
        """One controller tick on the virtual cadence, self-rescheduling.

        The chain stops when the plan has finished *or* the heap is
        empty after the tick -- an unconditional reschedule would keep
        the run alive forever, and checking the heap preserves the old
        termination semantics exactly (a quiet but unfinished plan still
        has its own events pending).
        """
        now = self.clock.now()
        self.elastic.tick(now)
        if self._events and not all(op.finished for op in self.plan):
            self._push(
                now + self.elastic.config.interval,
                _PRIO_ACTION, "elastic", None,
            )

    # ---------------------------------------------------------------- work

    def _has_data_work(self, operator: Operator) -> bool:
        return any(
            port is not None and port.queue.ready_pages > 0
            for port in operator.inputs
        )

    def _next_port_with_work(self, operator: Operator) -> InputPort | None:
        """The port whose head page became available earliest.

        Ties break round-robin so neither input of a join can starve.
        """
        ports = [p for p in operator.inputs if p is not None]
        if not ports:
            return None
        start = self._rr_port[operator.name] % len(ports)
        best = None
        best_at = None
        for offset in range(len(ports)):
            port = ports[(start + offset) % len(ports)]
            head = port.queue.peek_page()
            if head is None:
                continue
            available = head.available_at or 0.0
            if best_at is None or available < best_at - 1e-12:
                best, best_at = port, available
        if best is not None:
            self._rr_port[operator.name] = (
                ports.index(best) + 1
            ) % max(1, len(ports))
        return best

    def _make_meter(
        self, operator: Operator, port_index: int
    ) -> Callable[[Any], None]:
        """Per-element accounting hook for costed operators.

        Charges the admission cost and advances the operator's busy
        horizon before each element is dispatched; flushes produced by the
        *previous* element are stamped at that element's finish time, so
        output availability matches the historical per-element loop
        exactly.  The final element's flushes are stamped by the trailing
        ``_after_activity`` in :meth:`_handle_work`.
        """
        name = operator.name
        first = True

        def meter(element: Any) -> None:
            nonlocal first
            if not first:
                self._after_activity(operator, at=self._busy_until[name])
            first = False
            cost = operator.admission_cost(port_index, element)
            busy = self._busy_until[name] + cost
            operator.metrics.busy_time += cost
            self._busy_until[name] = busy
            operator.set_now(busy)

        return meter

    def _handle_work(self, operator: Operator) -> None:
        self._work_scheduled[operator.name] = False
        if operator.finished:
            return
        self.drain_control(operator)
        if self.is_paused(operator):
            # Transitive pressure: a paused operator processes no data,
            # so its own input queues fill and pause *its* producers.
            # Exhausted inputs may still finish it (rule 2).
            self.check_input_completion(operator)
            return
        port = self._next_port_with_work(operator)
        if port is not None:
            page = port.queue.get_page()
            busy = max(
                self._busy_until[operator.name],
                page.available_at or 0.0,
            )
            self._busy_until[operator.name] = busy
            operator.set_now(busy)
            if operator.needs_metering:
                operator.process_page(
                    port.index, page,
                    meter=self._make_meter(operator, port.index),
                )
            else:
                # Zero-cost operator: the virtual clock cannot move during
                # the page, so the batch fast path is timing-exact.
                operator.process_page(port.index, page)
            self.check_relief(
                operator, at=self._busy_until[operator.name]
            )
        self.check_input_completion(operator)
        self._after_activity(operator, at=self._busy_until[operator.name])
        if not operator.finished and self._has_data_work(operator):
            self.schedule_work(operator, at=self._earliest_ready(operator))

    # -------------------------------------------------------------- plumbing

    def _after_activity(self, operator: Operator, at: float | None = None) -> None:
        """Stamp freshly flushed pages, wake consumers, check watermarks."""
        stamp_time = self.clock.now() if at is None else at
        for edge in operator.outputs:
            flushed = edge.queue.stamp_ready(stamp_time)
            if flushed or edge.queue.closed:
                self.schedule_work(edge.consumer, at=stamp_time)
        self.check_pressure(operator, at=stamp_time)

    def _earliest_ready(self, operator: Operator) -> float:
        """Earliest availability among the operator's pending pages."""
        earliest = None
        for port in operator.inputs:
            if port is None:
                continue
            head = port.queue.peek_page()
            if head is None:
                continue
            available = head.available_at or 0.0
            if earliest is None or available < earliest:
                earliest = available
        return self.clock.now() if earliest is None else earliest

    def _finalise(self) -> RunResult:
        metrics = self.collect_metrics()
        metrics.events_processed = self._events_processed
        metrics.makespan = max(
            [self.clock.now()] + list(self._busy_until.values())
        )
        return self.build_result(metrics)
