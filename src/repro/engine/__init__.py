"""Execution engines (systems S5, S6, S9 in DESIGN.md).

The runtime architecture of the paper's section 5 (NiagaraST): operators
connected by page queues, out-of-band high-priority control, one
scheduling policy per engine over a shared mechanism core.

* :class:`QueryPlan` -- the operator DAG shared by both engines;
* :class:`RuntimeCore` -- the shared mechanism layer (control draining,
  completion bookkeeping, operator finish) every engine builds on;
* :class:`Simulator` -- deterministic discrete-event engine on virtual
  time (used by all experiments);
* :class:`ThreadedRuntime` -- thread-per-operator runtime mirroring
  NiagaraST's architecture;
* :class:`AsyncioEngine` -- coroutine-per-operator runtime on one event
  loop, for network-facing sources and sinks (``docs/engines.md``);
* :class:`MultiprocessEngine` -- worker-process-per-operator-group
  runtime with columnar page serialization at the process boundaries,
  for real CPU parallelism past the GIL (``docs/engines.md``);
* the engine registry -- engines addressable by name
  (``register_engine`` / ``create_engine``), the pluggable backend
  surface behind ``repro.api.Flow.run``;
* metrics containers shared by all of them.
"""

from repro.engine.async_engine import AsyncioEngine
from repro.engine.audit import QuiescenceReport, audit_quiescence
from repro.engine.harness import OperatorHarness
from repro.engine.multiprocess import MultiprocessEngine, fork_available
from repro.engine.metrics import (
    OperatorMetrics,
    OutputLog,
    OutputRecord,
    PlanMetrics,
    QueueMetrics,
)
from repro.engine.plan import QueryPlan, ShardGroup
from repro.engine.registry import (
    available_engines,
    create_engine,
    engine_factory,
    register_engine,
    run_plan,
    unregister_engine,
)
from repro.engine.runtime import RunResult, RuntimeCore
from repro.engine.simulator import Simulator
from repro.engine.threaded import ThreadedRuntime

__all__ = [
    "AsyncioEngine",
    "MultiprocessEngine",
    "fork_available",
    "OperatorHarness",
    "available_engines",
    "create_engine",
    "engine_factory",
    "register_engine",
    "run_plan",
    "unregister_engine",
    "QuiescenceReport",
    "audit_quiescence",
    "OperatorMetrics",
    "OutputLog",
    "OutputRecord",
    "PlanMetrics",
    "QueueMetrics",
    "QueryPlan",
    "RunResult",
    "ShardGroup",
    "RuntimeCore",
    "Simulator",
    "ThreadedRuntime",
]
